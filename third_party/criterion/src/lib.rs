//! In-tree subset of the `criterion` benchmark API.
//!
//! The build environment has no registry access, so the workspace
//! vendors the harness surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`throughput`/`sample_size`/`bench_function`/
//! `bench_with_input`/`finish`), [`Bencher`] (`iter`/`iter_custom`),
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simpler than upstream: each benchmark
//! reports the min/median/max per-iteration time over `sample_size`
//! wall-clock samples (median is robust to scheduler noise on the
//! 1-core dev container). `-- --test` runs every benchmark body once
//! and reports nothing, matching the CI smoke invocation.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(200);
const SAMPLE_TARGET: Duration = Duration::from_millis(40);

/// Benchmark registry and runner.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies CLI arguments (`--test`, optional name filter).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        let mut positional = Vec::new();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo-bench forwards that we accept and ignore.
                "--bench" | "--nocapture" | "--quiet" | "--verbose" | "-v" => {}
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" => {
                    let _ = args.next();
                }
                other => {
                    if !other.starts_with('-') {
                        positional.push(other.to_string());
                    }
                }
            }
        }
        if let Some(f) = positional.into_iter().next() {
            self.filter = Some(f);
        }
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_bench_id();
        run_one(
            &name,
            self.test_mode,
            self.sample_size,
            self.filter.as_deref(),
            None,
            &mut f,
        );
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Upstream prints aggregate output here; a no-op in this subset.
    pub fn final_summary(&mut self) {}
}

/// Per-iteration work attribution for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_bench_id());
        run_one(
            &name,
            self.criterion.test_mode,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.filter.as_deref(),
            self.throughput,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_bench_id());
        run_one(
            &name,
            self.criterion.test_mode,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.filter.as_deref(),
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Names a benchmark, optionally `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchId {
    /// The rendered name.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}
impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

/// Hands the measured closure its iteration schedule.
pub struct Bencher {
    mode: BenchMode,
    /// (iters, elapsed) samples recorded by `iter`/`iter_custom`.
    samples: Vec<(u64, Duration)>,
}

enum BenchMode {
    /// `-- --test`: run the body once, record nothing.
    Test,
    /// Timed run with this many samples.
    Measure { sample_size: usize },
}

impl Bencher {
    /// Times `routine`, called in batches sized from a warm-up.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Test => {
                black_box(routine());
            }
            BenchMode::Measure { sample_size } => {
                // Warm up and estimate per-iteration cost.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < WARMUP {
                    black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
                let batch =
                    (SAMPLE_TARGET.as_nanos() / per_iter).clamp(1, u128::from(u32::MAX)) as u64;
                for _ in 0..sample_size {
                    let t0 = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    self.samples.push((batch, t0.elapsed()));
                }
            }
        }
    }

    /// Lets the routine time itself: `routine(iters)` must return the
    /// elapsed time for exactly `iters` iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        match self.mode {
            BenchMode::Test => {
                routine(1);
            }
            BenchMode::Measure { sample_size } => {
                let warm = routine(16).max(Duration::from_nanos(1));
                let per_iter = (warm.as_nanos() / 16).max(1);
                let batch =
                    (SAMPLE_TARGET.as_nanos() / per_iter).clamp(1, u128::from(u32::MAX)) as u64;
                for _ in 0..sample_size {
                    let d = routine(batch);
                    self.samples.push((batch, d));
                }
            }
        }
    }
}

fn run_one(
    name: &str,
    test_mode: bool,
    sample_size: usize,
    filter: Option<&str>,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let mut b = Bencher {
        mode: if test_mode {
            BenchMode::Test
        } else {
            BenchMode::Measure { sample_size }
        },
        samples: Vec::new(),
    };
    f(&mut b);
    if test_mode {
        println!("{name}: test ok");
        return;
    }
    if b.samples.is_empty() {
        println!("{name}: no samples");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|(iters, d)| d.as_nanos() as f64 / *iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let min = per_iter[0];
    let med = per_iter[per_iter.len() / 2];
    let max = per_iter[per_iter.len() - 1];
    let tp = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mibs = n as f64 / (med / 1e9) / (1u64 << 20) as f64;
            format!("  thrpt: {mibs:.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (med / 1e9);
            format!("  thrpt: {:.3} Melem/s", eps / 1e6)
        }
        None => String::new(),
    };
    println!(
        "{name}\n  time: [{} {} {}]{tp}",
        fmt_ns(min),
        fmt_ns(med),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Defines a benchmark-group entry point callable from
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 20,
            filter: None,
        };
        let mut runs = 0u32;
        c.bench_function("unit/one", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_records_samples() {
        let mut c = Criterion {
            test_mode: false,
            sample_size: 3,
            filter: None,
        };
        let mut g = c.benchmark_group("unit");
        g.throughput(Throughput::Elements(1));
        g.bench_function("spin", |b| b.iter(|| black_box(2u64.pow(10))));
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).into_bench_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").into_bench_id(), "x");
    }
}
