//! In-tree subset of `crossbeam`: the `channel` module with an
//! unbounded MPMC channel.
//!
//! The build environment has no registry access, so the workspace
//! vendors the channel surface it uses (`unbounded`, `Sender`,
//! `Receiver`, `TryRecvError`, `RecvTimeoutError`). Implemented as a
//! `Mutex<VecDeque>` + `Condvar` — both ends are `Clone + Send + Sync`
//! like crossbeam's, and disconnect semantics (send/recv erroring once
//! the other side is fully dropped) are preserved.

pub mod channel {
    //! Multi-producer, multi-consumer unbounded FIFO channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error for [`Sender::send`] on a channel with no receivers.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().expect("channel lock");
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // the disconnect instead of sleeping forever.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().expect("channel lock");
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeues, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .expect("channel lock");
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.shared.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_fails_with_no_receiver() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
