//! In-tree subset of the `bytes` crate: cheaply cloneable immutable
//! [`Bytes`] buffers with zero-copy slicing, a growable [`BytesMut`],
//! and the [`Buf`]/[`BufMut`] cursor traits.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of the `bytes` API it actually uses. Semantics
//! match the upstream crate for that subset: `Bytes` hands out
//! reference-counted views (`clone`/`slice`/`split_to` never copy the
//! payload), `BytesMut` is a `Vec<u8>`-backed builder whose capacity
//! survives `clear()` for allocation-free reuse, and `Buf` is
//! implemented for `&[u8]`, [`Bytes`] and [`BytesMut`].

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, reference-counted byte buffer.
///
/// Clones and sub-slices share one allocation; `slice`/`split_to`
/// adjust `[start, end)` bounds over the shared storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wraps a static slice without copying.
    pub fn from_static(data: &'static [u8]) -> Self {
        // One Arc allocation for the header; the payload is referenced
        // in place would require a vtable — copying once here keeps the
        // implementation small, and from_static is never on a hot path.
        Bytes::copy_from_slice(data)
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same storage (no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`
    /// past them. Both halves share the original storage.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to {at} > len {}", self.len());
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.as_slice().to_vec()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer: build with [`BufMut`] methods, then
/// [`freeze`](BytesMut::freeze) into an immutable [`Bytes`].
///
/// `clear()` keeps the capacity, so a long-lived scratch `BytesMut`
/// reaches a steady state with zero allocations per frame.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of initialized bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Clears contents; keeps capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Shortens the buffer to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Resizes to `len`, filling new bytes with `value`.
    pub fn resize(&mut self, len: usize, value: u8) {
        self.inner.resize(len, value);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to {at} > len {}", self.len());
        let tail = self.inner.split_off(at);
        let head = std::mem::replace(&mut self.inner, tail);
        BytesMut { inner: head }
    }

    /// Converts into an immutable [`Bytes`] (one copy into shared
    /// storage; freeze is not on any steady-state path).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { inner: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Read cursor over a byte source (little-endian accessors only — the
/// NVMe wire format is LE throughout).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }
    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }
    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance {cnt} > len {}", self.len());
        self.start += cnt;
    }
}

/// Write cursor onto a growable byte sink (little-endian only).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.inner.resize(self.inner.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_zero_copy_views() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[3, 4, 5, 6]);
        let tail = b.slice(4..);
        assert_eq!(&tail[..], &[5, 6, 7, 8]);
        let mut c = b.clone();
        let head = c.split_to(3);
        assert_eq!(&head[..], &[1, 2, 3]);
        assert_eq!(&c[..], &[4, 5, 6, 7, 8]);
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn bytesmut_builder_roundtrip() {
        let mut m = BytesMut::with_capacity(64);
        m.put_u8(0xAB);
        m.put_u16_le(0x1234);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u64_le(0x0102_0304_0506_0708);
        m.put_bytes(0, 3);
        let frozen = m.freeze();
        let mut r = &frozen[..];
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn buf_for_bytes_advances() {
        let mut b = Bytes::from(vec![9u8, 8, 7, 6]);
        assert_eq!(b.get_u16_le(), u16::from_le_bytes([9, 8]));
        assert_eq!(b.remaining(), 2);
        let rest = b.split_to(2);
        assert_eq!(&rest[..], &[7, 6]);
    }
}
