//! In-tree subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace
//! vendors the two primitives it uses: [`Mutex`] and [`RwLock`] with
//! `parking_lot`'s poison-free signatures (`lock()` returns the guard
//! directly). Poisoning is absorbed by taking the inner value — a
//! panicking holder does not wedge every later locker.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub mod probe {
    //! Opt-in lock-acquisition counting, for tests that assert a code
    //! path is lock-free (the sharded runtime's "no lock crosses cores
    //! on the data path" contract). Counting is two-keyed: a thread
    //! opts in with [`arm_thread`], and acquisitions count only while
    //! the global phase gate ([`set_counting`]) is also open — so a
    //! harness can warm up freely and then measure only steady state.
    //! Both default off; production code never pays more than one TLS
    //! read plus one relaxed atomic load per acquisition.

    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    static COUNTING: AtomicBool = AtomicBool::new(false);
    static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static ARMED: Cell<bool> = const { Cell::new(false) };
    }

    /// Opts the calling thread into acquisition counting.
    pub fn arm_thread() {
        ARMED.with(|c| c.set(true));
    }

    /// Opens (`true`) or closes (`false`) the global counting phase.
    pub fn set_counting(on: bool) {
        COUNTING.store(on, Ordering::SeqCst);
    }

    /// Lock acquisitions observed on armed threads while counting.
    pub fn acquisitions() -> u64 {
        ACQUISITIONS.load(Ordering::SeqCst)
    }

    /// Clears the acquisition count.
    pub fn reset() {
        ACQUISITIONS.store(0, Ordering::SeqCst);
    }

    pub(crate) fn note() {
        // try_with: a lock can be taken during TLS teardown.
        if COUNTING.load(Ordering::Relaxed) && ARMED.try_with(Cell::get).unwrap_or(false) {
            ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Poison-free mutual exclusion over `std::sync::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        probe::note();
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => {
                probe::note();
                Some(g)
            }
            Err(sync::TryLockError::Poisoned(p)) => {
                probe::note();
                Some(p.into_inner())
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves unique).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Poison-free reader-writer lock over `std::sync::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        probe::note();
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        probe::note();
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
