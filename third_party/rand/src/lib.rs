//! In-tree subset of the `rand` crate API.
//!
//! The build environment has no registry access, so the workspace
//! vendors the surface it uses: [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension (`gen`, `gen_range`, `gen_bool`, `fill_bytes`),
//! and [`rngs::SmallRng`] — here xoshiro256++ seeded via splitmix64,
//! the same family upstream `SmallRng` uses on 64-bit targets.
//! Deterministic for a given seed, not cryptographically secure.

use std::ops::Range;

/// Core random-number source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Seed material type.
    type Seed;

    /// Constructs from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; the tiny modulo bias
                // is irrelevant for workloads and tests.
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start + v
            }
        }
    )+};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` uniformly over its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, seedable RNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                s[0] = 1; // xoshiro must not start from all-zero state
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
