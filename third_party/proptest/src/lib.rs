//! In-tree subset of the `proptest` API: random-generation property
//! testing without shrinking.
//!
//! The build environment has no registry access, so the workspace
//! vendors the strategy combinators its property tests use:
//! [`Strategy`] with `prop_map`/`prop_flat_map`, `any::<T>()`, `Just`,
//! integer/float range strategies, tuple strategies, weighted
//! [`prop_oneof!`], [`collection::vec`], [`option::of`], and the
//! [`proptest!`] test macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports its case index and seed;
//!   re-running is deterministic, so the exact inputs reproduce.
//! - **Deterministic seeding.** Cases derive from a fixed seed (or
//!   `PROPTEST_SEED`), so CI runs are reproducible by default. The
//!   case count comes from `PROPTEST_CASES` (default 64).

use std::fmt::Debug;
use std::ops::Range;

/// The per-test random source handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (used by [`prop_oneof!`] to mix arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker for types with a whole-domain uniform strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Whole-domain strategy for `T` — `any::<u32>()` etc.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )+};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Weighted choice between boxed arms; built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug> Union<V> {
    /// Builds from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Union { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum checked in Union::new")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy generating `Some` about 3/4 of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner`'s values in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// A property-test failure, as produced by `prop_assert!` or
/// returned early from a test body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Base seed for case derivation (`PROPTEST_SEED`, default fixed).
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x0AF_5EED)
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy, TestCaseError,
        TestRng,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each runs [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::cases();
            let base = $crate::base_seed();
            for case in 0..cases {
                let mut rng = $crate::TestRng::new(
                    base ^ (case.wrapping_mul(0xA076_1D64_78BD_642F)),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || -> Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                if let Err(msg) = run() {
                    panic!(
                        "property failed at case {case}/{cases} (seed {base:#x}): {msg}"
                    );
                }
            }
        }
    )+};
}

/// Asserts inside [`proptest!`] bodies; reports the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Weighted (`w => strat`) or uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Kind {
        A(u8),
        B,
    }

    fn kind() -> impl Strategy<Value = Kind> {
        prop_oneof![
            3 => (0u8..10).prop_map(Kind::A),
            1 => Just(Kind::B),
        ]
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u64..50, f in 0.0f64..1.0, n in 1usize..9) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn flat_map_and_tuples(pair in (1u32..100, 1u32..100).prop_flat_map(|(a, b)| {
            Just((a.min(b), a.max(b)))
        })) {
            prop_assert!(pair.0 <= pair.1);
        }

        #[test]
        fn oneof_hits_all_arms(ks in crate::collection::vec(kind(), 64..65)) {
            // With 64 draws at 3:1 weighting both arms appear with
            // overwhelming probability; this is a smoke check that the
            // union dispatches, not a statistical test.
            prop_assert!(ks.iter().any(|k| matches!(k, Kind::A(_))));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec(any::<u64>(), 3..10);
        let a = s.generate(&mut TestRng::new(99));
        let b = s.generate(&mut TestRng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn option_of_generates_both() {
        let s = crate::option::of(0u32..5);
        let mut rng = TestRng::new(1);
        let draws: Vec<_> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|d| d.is_none()));
        assert!(draws.iter().any(|d| d.is_some()));
    }
}
