//! Scale-out experiment demo (the paper's §5.7.2): sweep the fraction of
//! co-located client/target pairs and watch the aggregate bandwidth
//! respond, using the discrete-event fabric models.
//!
//! ```text
//! cargo run --release --example scaleout -- [nodes] [io_kib]
//! cargo run --release --example scaleout -- 4 1024
//! ```

use nvme_oaf::oaf::sim::{run, ExperimentSpec, FabricKind, SimParams, StreamConfig, WorkloadSpec};
use nvme_oaf::simnet::time::SimDuration;

fn spec(nodes: usize, local: usize, io: u64, read_fraction: f64) -> ExperimentSpec {
    // Case-2 topology: each pair on its own node with its own NIC.
    let streams = (0..nodes)
        .map(|i| StreamConfig {
            fabric: FabricKind::Adaptive {
                local: i < local,
                tcp_gbps: 25.0,
            },
            client_vm: 2 * i,
            target_vm: 2 * i + 1,
            wire: i,
        })
        .collect();
    ExperimentSpec {
        streams,
        workload: WorkloadSpec::new(io, read_fraction).with_duration(SimDuration::from_millis(400)),
        params: SimParams::paper_testbed(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let nodes: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let io_kib: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1024);

    println!("scale-out: {nodes} nodes, {io_kib} KiB sequential I/O, QD128, TCP-25G fallback\n");
    println!(
        "{:>10} {:>16} {:>16}",
        "SHM share", "write MiB/s", "read MiB/s"
    );
    for local in 0..=nodes {
        let w = run(&spec(nodes, local, io_kib * 1024, 0.0)).bandwidth_mib();
        let r = run(&spec(nodes, local, io_kib * 1024, 1.0)).bandwidth_mib();
        println!("{:>9}% {:>16.0} {:>16.0}", local * 100 / nodes, w, r);
    }
    println!(
        "\nEvery co-located pair the scheduler achieves converts that stream's\n\
         traffic from the 25G wire to the shared-memory channel (§5.7.2)."
    );
}
