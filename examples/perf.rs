//! `perf` — an SPDK-perf-style load generator for the real NVMe-oAF
//! runtime (the paper uses SPDK's `perf` as its microbenchmark client,
//! §5.1).
//!
//! ```text
//! cargo run --release --example perf -- [--shards N] [--backend ram|file:<path>] [--cache BLOCKS] [--fua] [--sync-offload] [io_size_kib] [queue_depth] [read_pct] [seconds] [local|remote]
//! cargo run --release --example perf -- 128 32 100 2 local
//! cargo run --release --example perf -- --shards 4 16 32 100 2 local
//! cargo run --release --example perf -- --backend file:/tmp/oaf.img 16 32 0 2 local
//! cargo run --release --example perf -- --backend file:/tmp/oaf.img --cache 4096 16 32 0 2 local
//! ```
//!
//! With `--shards N` the storage service runs the thread-per-core
//! sharded runtime: N reactor threads, N clients (one per shard,
//! round-robin steering), the queue depth split evenly across them. The
//! summary then includes the per-shard ops split.
//!
//! With `--backend file:<path>` the namespace is served by the durable
//! log-structured store instead of RAM: every write is journaled to the
//! backing file, and an existing file is *opened* (journal replayed) so
//! back-to-back runs measure cold-cache vs warm-restart behavior. The
//! summary then includes the store's journal/fsync accounting, the
//! block-cache hit/miss split, group-commit coalescing, and TRIM
//! space-reclaim gauges. `--cache BLOCKS` puts a segmented-LRU
//! write-back cache of that many blocks in front of the data region
//! (0 = uncached, the default).

use std::sync::Arc;
use std::time::{Duration, Instant};

use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::{launch, launch_many_sharded, AfClient};
use oaf_telemetry::Reporter;
use rand::{Rng, SeedableRng};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--shards N` is stripped before the positional arguments so it can
    // appear anywhere.
    let mut shards: Option<usize> = None;
    if let Some(pos) = args.iter().position(|a| a == "--shards") {
        let n = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--shards takes a shard count");
        assert!(n >= 1, "--shards takes a positive shard count");
        shards = Some(n);
        args.drain(pos..=pos + 1);
    }
    // `--backend ram` (default) or `--backend file:<path>`, also
    // position-independent.
    let mut backend_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--backend") {
        let b = args
            .get(pos + 1)
            .cloned()
            .expect("--backend takes `ram` or `file:<path>`");
        args.drain(pos..=pos + 1);
        match b.as_str() {
            "ram" => {}
            other => {
                let path = other
                    .strip_prefix("file:")
                    .expect("--backend takes `ram` or `file:<path>`");
                backend_path = Some(path.to_string());
            }
        }
    }
    // `--cache BLOCKS`: block-cache capacity for the file backend.
    let mut cache_blocks: usize = 0;
    if let Some(pos) = args.iter().position(|a| a == "--cache") {
        cache_blocks = args
            .get(pos + 1)
            .and_then(|s| s.parse().ok())
            .expect("--cache takes a block count");
        args.drain(pos..=pos + 1);
    }
    // `--fua`: every write carries Force Unit Access — a durability
    // barrier per write, the workload group commit coalesces.
    let mut fua = false;
    if let Some(pos) = args.iter().position(|a| a == "--fua") {
        fua = true;
        args.drain(pos..=pos);
    }
    // `--sync-offload`: attach the async sync worker to the file
    // backend — barriers park on tickets instead of running `fdatasync`
    // on the reactor thread.
    let mut sync_offload = false;
    if let Some(pos) = args.iter().position(|a| a == "--sync-offload") {
        sync_offload = true;
        args.drain(pos..=pos);
    }
    let io_kib: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(128);
    let qd: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let read_pct: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seconds: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);
    let local = args.get(4).map(|s| s != "remote").unwrap_or(true);

    let block_size = 4096u64;
    let io_bytes = io_kib * 1024;
    let nlb = (io_bytes / block_size) as u32;
    assert!(nlb >= 1, "io size must be >= 4 KiB");
    let capacity_blocks = 64 * 1024; // 256 MiB namespace

    let mut controller = Controller::new();
    match &backend_path {
        None => controller.add_namespace(Namespace::new(1, block_size as u32, capacity_blocks)),
        Some(path) => {
            // Reuse an existing store file (journal replay on open) so a
            // second run measures the warm-restart path; create fresh
            // otherwise.
            let disk = if std::path::Path::new(path).exists() {
                let t0 = Instant::now();
                let d = nvme_oaf::store::FileDisk::open(path).expect("open backing file");
                println!(
                    "store: opened {path} in {:.1}ms ({} journaled ops replayed)",
                    t0.elapsed().as_secs_f64() * 1e3,
                    d.metrics().replay_ops.get()
                );
                d
            } else {
                nvme_oaf::store::FileDisk::create(path, block_size as u32, capacity_blocks)
                    .expect("create backing file")
            };
            let disk = disk.with_cache(cache_blocks).expect("configure cache");
            if cache_blocks > 0 {
                println!(
                    "store: {cache_blocks}-block segmented-LRU write-back cache \
                     ({} MiB)",
                    (cache_blocks as u64 * block_size) >> 20
                );
            }
            if sync_offload {
                // The worker syncs through a second handle onto the
                // same file (syncing either fd flushes the inode), so
                // the disk lock is never held across the syscall.
                let sync_vfs = nvme_oaf::store::vfs::RealVfs::open(std::path::Path::new(path))
                    .expect("reopen backing file for the sync worker");
                let shared = disk.into_shared().with_sync_worker(Box::new(sync_vfs));
                println!(
                    "store: async sync worker attached (barriers park, never block the reactor)"
                );
                controller.add_namespace(Namespace::with_shared_file(1, shared));
            } else {
                controller.add_namespace(Namespace::with_file(1, disk));
            }
        }
    }

    if let Some(shards) = shards {
        run_sharded(
            controller,
            shards,
            io_kib,
            qd,
            read_pct,
            seconds,
            local,
            nlb,
            capacity_blocks,
            fua,
        );
        return;
    }

    let registry = Arc::new(HostRegistry::new());
    let target_host = if local { 1 } else { 2 };
    let settings = FabricSettings {
        depth: qd.max(8),
        slot_size: io_bytes as usize,
        ..FabricSettings::default()
    };
    let mut pair = launch(
        &registry,
        (ProcessId(1), 1),
        (ProcessId(2), target_host),
        controller,
        settings,
    )
    .expect("fabric establishment");

    println!(
        "perf: {io_kib}KiB, QD{qd}, {read_pct}% reads, {seconds}s, fabric = {}",
        if pair.client.shm_active() {
            "shared-memory (oAF)"
        } else {
            "TCP"
        }
    );

    // Periodic telemetry: once a second, print the per-interval delta
    // straight from the runtime's registry — completions, inflight
    // depth, and the initiator's read-latency p99 — without touching
    // the I/O loop below.
    let io_bytes_f = io_bytes as f64;
    let reporter = Reporter::spawn(
        pair.telemetry.clone(),
        Duration::from_secs(1),
        move |cum, delta| {
            let ios = delta.counter("client", "completions");
            let inflight = cum.gauge("client", "inflight").map(|(v, _)| v).unwrap_or(0);
            let p99_us = delta
                .histo("client", "lat_read_ns")
                .or_else(|| delta.histo("client", "lat_write_ns"))
                .map(|h| h.p99() as f64 / 1e3)
                .unwrap_or(0.0);
            eprintln!(
                "[telemetry] {ios} IOPS, {:.0} MiB/s, inflight {inflight}, p99 ~{p99_us:.0}us",
                ios as f64 * io_bytes_f / (1u64 << 20) as f64
            );
        },
    );

    // Pre-write the LBA range so reads return real data.
    let span_ios = 64u64.min(capacity_blocks / u64::from(nlb));
    for i in 0..span_ios {
        let mut buf = pair.client.alloc(io_bytes as usize).expect("buffer");
        buf.fill((i % 251) as u8);
        pair.client
            .write(1, i * u64::from(nlb), nlb, buf, Duration::from_secs(10))
            .expect("prefill write");
    }

    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let t0 = Instant::now();
    let mut completed: u64 = 0;
    let mut lat_sum = Duration::ZERO;
    let mut lats_us: Vec<f64> = Vec::with_capacity(1 << 20);
    let mut submit_times: std::collections::HashMap<u16, Instant> =
        std::collections::HashMap::new();

    let submit = |client: &mut nvme_oaf::oaf::runtime::AfClient,
                  rng: &mut rand::rngs::SmallRng,
                  submit_times: &mut std::collections::HashMap<u16, Instant>| {
        let slot = rng.gen_range(0..span_ios);
        let lba = slot * u64::from(nlb);
        let cid = if rng.gen_range(0..100u32) < read_pct {
            client
                .submit_read(1, lba, nlb, io_bytes as usize)
                .expect("submit read")
        } else {
            let mut buf = client.alloc(io_bytes as usize).expect("buffer");
            buf.fill((slot % 251) as u8);
            if fua {
                client
                    .submit_write_fua(1, lba, nlb, buf)
                    .expect("submit fua write")
            } else {
                client.submit_write(1, lba, nlb, buf).expect("submit write")
            }
        };
        submit_times.insert(cid, Instant::now());
    };

    for _ in 0..qd {
        submit(&mut pair.client, &mut rng, &mut submit_times);
    }
    while Instant::now() < deadline {
        for done in pair.client.poll().expect("poll") {
            assert!(done.status.is_ok(), "I/O failed: {:?}", done.status);
            if let Some(t) = submit_times.remove(&done.cid) {
                let d = t.elapsed();
                lat_sum += d;
                lats_us.push(d.as_secs_f64() * 1e6);
            }
            completed += 1;
            submit(&mut pair.client, &mut rng, &mut submit_times);
        }
        std::hint::spin_loop();
    }
    // Drain.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while !submit_times.is_empty() && Instant::now() < drain_deadline {
        for done in pair.client.poll().expect("poll") {
            submit_times.remove(&done.cid);
            completed += 1;
        }
    }

    let elapsed = t0.elapsed().as_secs_f64();
    let mib = completed as f64 * io_bytes as f64 / (1u64 << 20) as f64 / elapsed;
    let iops = completed as f64 / elapsed;
    let avg_lat_us = if completed > 0 {
        lat_sum.as_secs_f64() * 1e6 / completed as f64
    } else {
        0.0
    };
    println!("{completed} IOs in {elapsed:.2}s: {mib:.0} MiB/s, {iops:.0} IOPS, avg latency {avg_lat_us:.1}us");
    if !lats_us.is_empty() {
        lats_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| lats_us[((lats_us.len() - 1) as f64 * p) as usize];
        println!(
            "latency percentiles: p50 {:.1}us  p90 {:.1}us  p99 {:.1}us  p99.9 {:.1}us  max {:.1}us",
            q(0.50), q(0.90), q(0.99), q(0.999), lats_us[lats_us.len() - 1]
        );
    }
    let stats = pair.client.stats();
    println!(
        "client stats: {} writes ({}% zero-copy), {} reads, {} errors",
        stats.writes,
        (stats.zero_copy_fraction() * 100.0) as u32,
        stats.reads,
        stats.errors
    );
    reporter.stop();
    // Final registry view: transport-level frame accounting for the run.
    let snap = pair.telemetry.snapshot();
    println!(
        "transport: {} frames sent / {} received, {} ring-full events",
        snap.counter("transport_client", "frames_sent"),
        snap.counter("transport_client", "frames_received"),
        snap.counter("transport_client", "ring_full"),
    );
    print_store_report(&snap);

    pair.client.disconnect().expect("disconnect");
    pair.target.shutdown().expect("shutdown");
}

/// Durable-store accounting: journal/fsync, group-commit coalescing,
/// block-cache hit split and TRIM space reclaim. A no-op for the RAM
/// backend (no `store_ns1` scope in the snapshot).
fn print_store_report(snap: &oaf_telemetry::Snapshot) {
    let scope = "store_ns1";
    let Some(fsync) = snap.histo(scope, "fsync_ns") else {
        return;
    };
    println!(
        "store: {} journal appends ({} MiB), {} fsyncs (p99 {:.0}us), \
         {} trims, {} checkpoints",
        snap.counter(scope, "log_appends"),
        snap.counter(scope, "log_bytes") >> 20,
        snap.counter(scope, "fsyncs"),
        fsync.p99() as f64 / 1e3,
        snap.counter(scope, "trims"),
        snap.counter(scope, "checkpoints"),
    );
    let led = snap.counter(scope, "fsyncs");
    let coalesced = snap.counter(scope, "fsyncs_coalesced");
    if coalesced > 0 {
        println!(
            "store: group commit retired {} barriers with {led} fsyncs \
             ({coalesced} coalesced, mean batch {:.1})",
            led + coalesced,
            (led + coalesced) as f64 / led.max(1) as f64,
        );
    }
    let hits = snap.counter(scope, "cache_hits");
    let misses = snap.counter(scope, "cache_misses");
    if hits + misses > 0 {
        println!(
            "store: cache {hits} hits / {misses} misses ({:.0}% hit rate), \
             {} writebacks, {} evictions",
            hits as f64 * 100.0 / (hits + misses) as f64,
            snap.counter(scope, "cache_writebacks"),
            snap.counter(scope, "cache_evictions"),
        );
    }
    if let Some((live, _)) = snap.gauge(scope, "live_bytes") {
        println!(
            "store: {} MiB live data, {} MiB reclaimed by TRIM",
            live >> 20,
            snap.counter(scope, "bytes_reclaimed") >> 20,
        );
    }
}

/// The sharded load loop: N clients round-robined onto N reactor
/// shards, queue depth split evenly, disjoint LBA ranges per client.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    controller: Controller,
    shards: usize,
    io_kib: u64,
    qd: usize,
    read_pct: u32,
    seconds: u64,
    local: bool,
    nlb: u32,
    capacity_blocks: u64,
    fua: bool,
) {
    let io_bytes = io_kib * 1024;
    let registry = Arc::new(HostRegistry::new());
    let target_host = if local { 1 } else { 2 };
    let clients: Vec<(ProcessId, u64)> =
        (0..shards as u64).map(|i| (ProcessId(10 + i), 1)).collect();
    let per_client_qd = (qd / shards).max(1);
    let settings = FabricSettings {
        depth: per_client_qd.max(8),
        slot_size: io_bytes as usize,
        ..FabricSettings::default()
    };
    let mut group = launch_many_sharded(
        &registry,
        &clients,
        (ProcessId(2), target_host),
        controller,
        settings,
        shards,
    )
    .expect("sharded fabric establishment");

    println!(
        "perf: {io_kib}KiB, QD{qd} ({per_client_qd}/client), {read_pct}% reads, {seconds}s, \
         {shards} shards x 1 client, fabric = {}",
        if group.clients[0].shm_active() {
            "shared-memory (oAF)"
        } else {
            "TCP"
        }
    );

    // Disjoint per-client LBA ranges, prefilled so reads return data.
    let span_ios = 64u64.min(capacity_blocks / u64::from(nlb) / shards as u64);
    let base_io = |c: usize| c as u64 * span_ios;
    for (c, client) in group.clients.iter_mut().enumerate() {
        for i in 0..span_ios {
            let mut buf = client.alloc(io_bytes as usize).expect("buffer");
            buf.fill((i % 251) as u8);
            client
                .write(
                    1,
                    (base_io(c) + i) * u64::from(nlb),
                    nlb,
                    buf,
                    Duration::from_secs(10),
                )
                .expect("prefill write");
        }
    }

    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let ops_before = group.target.ops_per_shard();
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let t0 = Instant::now();
    let mut completed: u64 = 0;
    let mut lats_us: Vec<f64> = Vec::with_capacity(1 << 20);
    let mut submit_times: Vec<std::collections::HashMap<u16, Instant>> = (0..shards)
        .map(|_| std::collections::HashMap::new())
        .collect();

    let submit = |c: usize,
                  client: &mut AfClient,
                  rng: &mut rand::rngs::SmallRng,
                  submit_times: &mut std::collections::HashMap<u16, Instant>| {
        let slot = base_io(c) + rng.gen_range(0..span_ios);
        let lba = slot * u64::from(nlb);
        let cid = if rng.gen_range(0..100u32) < read_pct {
            client
                .submit_read(1, lba, nlb, io_bytes as usize)
                .expect("submit read")
        } else {
            let mut buf = client.alloc(io_bytes as usize).expect("buffer");
            buf.fill((slot % 251) as u8);
            if fua {
                client
                    .submit_write_fua(1, lba, nlb, buf)
                    .expect("submit fua write")
            } else {
                client.submit_write(1, lba, nlb, buf).expect("submit write")
            }
        };
        submit_times.insert(cid, Instant::now());
    };

    for (c, client) in group.clients.iter_mut().enumerate() {
        for _ in 0..per_client_qd {
            submit(c, client, &mut rng, &mut submit_times[c]);
        }
    }
    while Instant::now() < deadline {
        for (c, client) in group.clients.iter_mut().enumerate() {
            for done in client.poll().expect("poll") {
                assert!(done.status.is_ok(), "I/O failed: {:?}", done.status);
                if let Some(t) = submit_times[c].remove(&done.cid) {
                    lats_us.push(t.elapsed().as_secs_f64() * 1e6);
                }
                completed += 1;
                submit(c, client, &mut rng, &mut submit_times[c]);
            }
        }
        std::hint::spin_loop();
    }
    // Drain.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while submit_times.iter().any(|m| !m.is_empty()) && Instant::now() < drain_deadline {
        for (c, client) in group.clients.iter_mut().enumerate() {
            for done in client.poll().expect("poll") {
                submit_times[c].remove(&done.cid);
                completed += 1;
            }
        }
    }

    let elapsed = t0.elapsed().as_secs_f64();
    let mib = completed as f64 * io_bytes as f64 / (1u64 << 20) as f64 / elapsed;
    let iops = completed as f64 / elapsed;
    println!("{completed} IOs in {elapsed:.2}s: {mib:.0} MiB/s, {iops:.0} IOPS");
    if !lats_us.is_empty() {
        lats_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| lats_us[((lats_us.len() - 1) as f64 * p) as usize];
        println!(
            "latency percentiles: p50 {:.1}us  p90 {:.1}us  p99 {:.1}us  p99.9 {:.1}us  max {:.1}us",
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999),
            lats_us[lats_us.len() - 1]
        );
    }
    // Per-shard split: the load-balance witness for the scale table.
    let ops_after = group.target.ops_per_shard();
    let per_shard: Vec<u64> = ops_after
        .iter()
        .zip(&ops_before)
        .map(|(a, b)| a - b)
        .collect();
    let max = *per_shard.iter().max().unwrap_or(&0);
    let min = *per_shard.iter().min().unwrap_or(&0);
    println!(
        "per-shard ops: {per_shard:?} (max/min {:.2})",
        if min > 0 {
            max as f64 / min as f64
        } else {
            f64::NAN
        }
    );
    // Group commit shows up here: N shards share one journal, so
    // concurrent barriers coalesce onto one fdatasync.
    print_store_report(&group.telemetry.snapshot());

    for c in &mut group.clients {
        c.disconnect().expect("disconnect");
    }
    group.target.shutdown().expect("shutdown");
}
