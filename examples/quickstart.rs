//! Quickstart: bring up an NVMe-oAF target and client in one process and
//! do zero-copy I/O over the adaptive fabric.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::time::Duration;

use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::{launch, DEFAULT_TIMEOUT};

fn main() {
    // 1. A storage service exposing one namespace: 4 KiB blocks, 64 MiB.
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, 4096, 16 * 1024));

    // 2. The helper process (the cluster resource manager in the paper):
    //    both processes register; co-location triggers the shared-memory
    //    hot-plug.
    let registry = Arc::new(HostRegistry::new());
    let host = 42; // same physical host for client and target
    let mut pair = launch(
        &registry,
        (ProcessId(1), host),
        (ProcessId(2), host),
        controller,
        FabricSettings::default(),
    )
    .expect("fabric establishment");

    println!(
        "connected; shared-memory channel active: {}",
        pair.client.shm_active()
    );

    // 3. Zero-copy write: the buffer the application fills *is* a slot in
    //    the shared region (§4.4.3 of the paper).
    let message = b"hello, adaptive fabric!";
    let mut buf = pair.client.alloc(4096).expect("buffer");
    println!("buffer is zero-copy: {}", buf.is_zero_copy());
    buf[..message.len()].copy_from_slice(message);
    pair.client
        .write(1, 0, 1, buf, DEFAULT_TIMEOUT)
        .expect("write");

    // 4. Read it back over the same fabric.
    let back = pair
        .client
        .read(1, 0, 1, 4096, Duration::from_secs(5))
        .expect("read");
    println!(
        "read back: {:?}",
        std::str::from_utf8(&back[..message.len()]).expect("utf8")
    );
    assert_eq!(&back[..message.len()], message);

    // 5. Tear down.
    pair.client.disconnect().expect("disconnect");
    pair.target.shutdown().expect("target shutdown");
    println!("done.");
}
