//! Remote-path quickstart: a real NVMe/TCP initiator↔target link over
//! `127.0.0.1` (paper §4.5) — vectored framing, runtime-selected write
//! chunking, and workload-adaptive busy polling, all live.
//!
//! ```text
//! cargo run --release --example tcp_remote
//! ```
//!
//! The target listens on an ephemeral loopback port; the initiator
//! dials it like it would dial a remote host. Swap the address for a
//! real one and the two halves run on separate machines unchanged.

use std::net::TcpListener;
use std::time::Duration;

use bytes::Bytes;
use nvme_oaf::nvmeof::initiator::{Initiator, InitiatorOptions};
use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::nvmeof::target::{spawn_target, TargetConfig};
use nvme_oaf::nvmeof::tcp::{TcpConfig, TcpTransport};
use nvme_oaf::nvmeof::tune::{ChunkCostModel, ChunkSelector, PollClass, KIB, MIB};
use nvme_oaf::telemetry::Registry;

const TIMEOUT: Duration = Duration::from_secs(10);

fn main() {
    // 1. Target side: listen, accept one connection, serve a namespace
    //    (4 KiB blocks, 16 MiB) from a polled reactor thread.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accept = std::thread::spawn(move || {
        TcpTransport::accept_from(&listener, TcpConfig::default()).expect("accept")
    });

    // 2. Initiator side: dial the target's address over plain TCP.
    let ct = TcpTransport::connect(addr, TcpConfig::default()).expect("connect");
    let tt = accept.join().expect("accept thread");
    println!("NVMe/TCP link up on {addr}");

    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, 4096, 4096));
    let handle = spawn_target(tt, controller, TargetConfig::default(), None);

    // 3. Pick the H2C write chunk at runtime from the link cost model
    //    (Fig. 9): for 25 Gb/s and a mixed large-I/O profile this lands
    //    on 512 KiB, the paper's optimum.
    let selector = ChunkSelector::new(ChunkCostModel::for_link_gbps(25.0));
    let write_chunk = selector.select(&[128 * KIB, 256 * KIB, 512 * KIB, MIB]) as usize;
    println!("selected write chunk: {} KiB", write_chunk / 1024);

    let registry = Registry::new();
    let mut ini = Initiator::connect(
        ct,
        InitiatorOptions {
            write_chunk,
            ..InitiatorOptions::default()
        },
        None,
        TIMEOUT,
    )
    .expect("NVMe-oF connect");
    ini.metrics().register(&registry.scope("client"));

    // 4. Mixed workload: 1 MiB writes stream as chunked H2CData sub-PDUs
    //    behind one R2T grant; 4 KiB reads stay latency-bound. Every
    //    blocking wait feeds the per-direction busy-poll EWMA (Fig. 10).
    const IO: usize = 1024 * 1024;
    let payload: Vec<u8> = (0..IO).map(|i| i as u8).collect();
    for round in 0..8u64 {
        ini.write_blocking(
            1,
            0,
            (IO / 4096) as u32,
            Bytes::from(payload.clone()),
            TIMEOUT,
        )
        .expect("1 MiB write");
        for lba in 0..16 {
            ini.read_blocking(1, lba, 1, 4096, TIMEOUT)
                .expect("4 KiB read");
        }
        let _ = round;
    }
    let back = ini
        .read_blocking(1, 0, (IO / 4096) as u32, IO, TIMEOUT)
        .expect("1 MiB read-back");
    assert_eq!(&back[..], &payload[..], "payload survived the wire");

    // 5. What the adaptive machinery settled on.
    let snap = registry.snapshot();
    println!(
        "h2c chunks: {} ({} per write)",
        snap.counter("client", "h2c_chunks"),
        IO / write_chunk,
    );
    println!(
        "busy-poll budgets: read {:?}, write {:?}",
        ini.busy_poll_budget(PollClass::Read),
        ini.busy_poll_budget(PollClass::Write),
    );

    ini.disconnect().expect("disconnect");
    handle.shutdown().expect("target shutdown");
    println!("done.");
}
