//! h5bench over the real NVMe-oAF runtime: the paper's co-design
//! demonstration (§5.7.1) end to end — an HDF5-like container on an
//! NVMe-oAF block device, written and verified by the h5bench kernels.
//!
//! ```text
//! cargo run --release --example h5bench_demo -- [particles_k] [datasets]
//! cargo run --release --example h5bench_demo -- 512 8
//! ```

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use nvme_oaf::h5::kernel::{run_read, run_write, KernelConfig};
use nvme_oaf::h5::vol::{BlockExtent, H5Vol};
use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::launch;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let particles_k: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(256);
    let datasets: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);

    let cfg = KernelConfig {
        datasets,
        particles: particles_k * 1024,
        dtype_size: 4,
        h5d_buffer: 256 * 1024,
        timesteps: 1,
    };
    println!(
        "h5bench demo: {} datasets x {}K particles = {} MiB",
        cfg.datasets,
        particles_k,
        cfg.total_bytes() >> 20
    );

    // Namespace sized for the container (+ metadata).
    let blocks = (cfg.total_bytes() + (1 << 20)).div_ceil(4096);
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, 4096, blocks));

    let registry = Arc::new(HostRegistry::new());
    let pair = launch(
        &registry,
        (ProcessId(10), 7),
        (ProcessId(20), 7), // co-located: the VOL rides shared memory
        controller,
        FabricSettings::default(),
    )
    .expect("fabric establishment");
    println!("fabric: shared memory = {}", pair.client.shm_active());

    // The VOL connector: HDF5-like container on the oAF block device.
    let extent = BlockExtent::new(pair.client, 1).expect("block extent");
    let mut vol = H5Vol::create(extent).expect("container");
    let hint = Rc::new(Cell::new(1usize));

    let w = run_write(&mut vol, &cfg, &hint).expect("write kernel");
    println!(
        "write kernel: {} MiB in {:.2?} = {:.0} MiB/s",
        w.bytes >> 20,
        w.elapsed,
        w.bandwidth_mib()
    );

    let r = run_read(&mut vol, &cfg, &hint, true).expect("read kernel (verified)");
    println!(
        "read kernel:  {} MiB in {:.2?} = {:.0} MiB/s (contents verified)",
        r.bytes >> 20,
        r.elapsed,
        r.bandwidth_mib()
    );

    pair.target.shutdown().expect("shutdown");
    println!("done.");
}
