//! The paper's Fig. 1 architecture live: one storage service, several
//! client applications with mixed locality — co-located clients ride
//! their own isolated shared-memory channels, the remote one falls back
//! to TCP, all against the same namespaces.
//!
//! ```text
//! cargo run --release --example storage_service
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::launch_many;

fn main() {
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, 4096, 16 * 1024));

    let registry = Arc::new(HostRegistry::new());
    let target_host = 1u64;
    let clients = [
        (ProcessId(1), target_host), // co-located
        (ProcessId(2), target_host), // co-located
        (ProcessId(3), 2u64),        // remote
    ];
    let mut group = launch_many(
        &registry,
        &clients,
        (ProcessId(100), target_host),
        controller,
        FabricSettings::default(),
    )
    .expect("service establishment");

    println!("storage service up; clients:");
    for (i, c) in group.clients.iter().enumerate() {
        println!(
            "  client {i}: channel = {}",
            if c.shm_active() {
                "shared memory (isolated region)"
            } else {
                "TCP fallback"
            }
        );
    }

    // Every client hammers its own LBA range for a moment.
    let timeout = Duration::from_secs(10);
    let io = 128 * 1024usize;
    let nlb = (io / 4096) as u32;
    for (i, client) in group.clients.iter_mut().enumerate() {
        let base = (i as u64) * 1024;
        let t0 = Instant::now();
        let rounds = 256u64;
        for k in 0..rounds {
            let mut buf = client.alloc(io).expect("buffer");
            buf.fill((k % 251) as u8);
            client
                .write(1, base + k * u64::from(nlb), nlb, buf, timeout)
                .expect("write");
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "  client {i}: {} MiB written at {:.0} MiB/s",
            (rounds as usize * io) >> 20,
            rounds as f64 * io as f64 / (1 << 20) as f64 / secs
        );
    }

    // Shared storage: client 2 (remote) verifies client 0's data.
    let back = group.clients[2]
        .read(1, 0, nlb, io, timeout)
        .expect("cross read");
    assert!(back.iter().all(|&b| b == 0));
    println!("cross-client read verified: the service is one shared store");

    for c in &mut group.clients {
        c.disconnect().expect("disconnect");
    }
    group.target.shutdown().expect("shutdown");
    println!("done.");
}
