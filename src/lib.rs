//! NVMe-oAF — NVMe over Adaptive Fabric.
//!
//! Umbrella crate re-exporting the workspace: a Rust reproduction of
//! *NVMe-oAF: Towards Adaptive NVMe-oF for IO-Intensive Workloads on HPC
//! Cloud* (Kashyap & Lu, HPDC '22).
//!
//! * [`simnet`] — discrete-event engine and TCP/RDMA link models
//! * [`ssd`] — NVMe-SSD device model
//! * [`store`] — durable log-structured file-backed block device
//! * [`shmem`] — real lock-free shared-memory channel substrate
//! * [`nvmeof`] — NVMe + NVMe-oF protocol, target and initiator
//! * [`oaf`] — the adaptive fabric itself (the paper's contribution)
//! * [`h5`] — HDF5-like container, h5bench kernels, NFS baseline
//! * [`chaos`] — deterministic fault injection for the fabric
//! * [`telemetry`] — zero-allocation runtime observability
//!
//! See `examples/quickstart.rs` for a five-minute tour of the
//! co-located path, and `examples/tcp_remote.rs` for the real-socket
//! NVMe/TCP path.

pub use oaf_chaos as chaos;
pub use oaf_core as oaf;
pub use oaf_h5 as h5;
pub use oaf_nvmeof as nvmeof;
pub use oaf_shmem as shmem;
pub use oaf_simnet as simnet;
pub use oaf_ssd as ssd;
pub use oaf_store as store;
pub use oaf_telemetry as telemetry;
