//! The NFS baseline model (§5.7.1).
//!
//! The paper compares h5bench over NVMe-oAF against an *async-mounted*
//! NFS export. Two properties of that setup drive Figs. 16–17:
//!
//! * **write-behind** — the client page cache absorbs writes at memory
//!   speed and drains them in the background over wsize-chunked RPCs,
//!   which is why NFS wins against a synchronous I/O pattern (config-2
//!   before coalescing);
//! * **bounded server throughput** — sustained transfers are limited by
//!   the RPC path and the server's filesystem/disk, far below the
//!   adaptive fabric's shared-memory path — why oAF wins big whenever it
//!   can stream (config-1, and config-2 after coalescing).

use oaf_simnet::time::SimDuration;
use oaf_simnet::units::Rate;

use crate::trace::{IoKind, IoTrace};

/// NFS client/server model parameters.
#[derive(Clone, Copy, Debug)]
pub struct NfsParams {
    /// Write RPC chunk size (`wsize`).
    pub wsize: u64,
    /// Read RPC chunk size (`rsize`).
    pub rsize: u64,
    /// Per-RPC overhead (client stack + server dispatch).
    pub rpc_overhead: SimDuration,
    /// Network goodput of the mount.
    pub wire: Rate,
    /// Server-side sustained rate (filesystem + export disk).
    pub server_rate: Rate,
    /// Client page-cache absorb rate (memory speed).
    pub absorb_rate: Rate,
    /// Dirty-page limit before writers are throttled to the drain rate.
    pub dirty_limit: u64,
    /// Bytes between COMMIT barriers on sustained writes.
    pub commit_interval: u64,
    /// Cost of one COMMIT (server-side stable-storage flush).
    pub commit_cost: SimDuration,
    /// Read-ahead depth in RPCs.
    pub readahead: usize,
}

impl NfsParams {
    /// An async NFSv4 mount over the paper's 25 Gbps network with a
    /// mid-range export server.
    pub fn paper_mount() -> Self {
        NfsParams {
            wsize: 64 * 1024,
            rsize: 64 * 1024,
            rpc_overhead: SimDuration::from_micros(30),
            wire: Rate::gbps(25.0).scaled(0.94),
            server_rate: Rate::gib_per_sec(0.85),
            absorb_rate: Rate::gib_per_sec(8.0),
            dirty_limit: 48 << 20,
            commit_interval: 16 << 20,
            commit_cost: SimDuration::from_millis(5),
            readahead: 8,
        }
    }

    /// Sustained background drain rate: RPC-pipelined wire vs. server.
    pub fn drain_rate(&self) -> f64 {
        // Per-wsize RPC cost on the wire plus server service; the client
        // keeps many write RPCs outstanding, so throughput is the
        // slower of the two stages.
        let wire_rate = self.wsize as f64
            / (self.wire.transfer_secs(self.wsize) + self.rpc_overhead.as_secs_f64() * 0.1);
        wire_rate.min(self.server_rate.as_bytes_per_sec())
    }
}

/// Outcome of replaying a trace against the NFS model.
#[derive(Clone, Copy, Debug)]
pub struct NfsOutcome {
    /// Total payload bytes.
    pub bytes: u64,
    /// Modelled elapsed time.
    pub elapsed: SimDuration,
}

impl NfsOutcome {
    /// Bandwidth in MiB/s.
    pub fn bandwidth_mib(&self) -> f64 {
        self.bytes as f64 / (1u64 << 20) as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Replays a write trace: absorb into the page cache, drain in the
/// background, final sync at close (h5bench closes the file).
///
/// Fluid model: writers run at memory speed until the dirty limit, then
/// are throttled to the drain rate; at close the remaining dirty pages
/// flush and a COMMIT lands every `commit_interval` bytes plus once at
/// close.
pub fn replay_write(trace: &IoTrace, p: &NfsParams) -> NfsOutcome {
    let drain = p.drain_rate();
    let bytes: u64 = trace
        .records()
        .iter()
        .filter(|r| r.kind == IoKind::Write)
        .map(|r| r.len)
        .sum();
    if bytes == 0 {
        return NfsOutcome {
            bytes: 0,
            elapsed: SimDuration::ZERO,
        };
    }
    let absorb = p.absorb_rate.as_bytes_per_sec();
    let (write_phase, dirty_at_close) = if bytes <= p.dirty_limit {
        let t = bytes as f64 / absorb;
        let drained = (t * drain) as u64;
        (t, bytes.saturating_sub(drained))
    } else {
        // Cache fills at memory speed, then the writer is throttled to
        // the drain rate for the remainder.
        let fill = p.dirty_limit as f64 / absorb;
        let throttled = (bytes - p.dirty_limit) as f64 / drain;
        (fill + throttled, p.dirty_limit)
    };
    let commits = 1 + bytes / p.commit_interval;
    let elapsed =
        write_phase + dirty_at_close as f64 / drain + commits as f64 * p.commit_cost.as_secs_f64();
    NfsOutcome {
        bytes,
        elapsed: SimDuration::from_secs_f64(elapsed),
    }
}

/// Replays a read trace: cold cache, rsize RPCs with bounded read-ahead.
pub fn replay_read(trace: &IoTrace, p: &NfsParams) -> NfsOutcome {
    // Per-RPC round trip: request + server read + data transfer.
    let rpc_time = p.rpc_overhead.as_secs_f64()
        + p.server_rate.transfer_secs(p.rsize)
        + p.wire.transfer_secs(p.rsize);
    // Read-ahead keeps `readahead` RPCs in flight: steady-state rate.
    let pipelined = p.readahead as f64 * p.rsize as f64 / rpc_time;
    let rate = pipelined
        .min(p.server_rate.as_bytes_per_sec())
        .min(p.wire.as_bytes_per_sec());
    let mut bytes = 0u64;
    let mut elapsed = 0.0;
    for rec in trace.records() {
        if rec.kind != IoKind::Read {
            continue;
        }
        bytes += rec.len;
        // First-byte latency per discontiguous record + streaming time.
        elapsed += rpc_time + rec.len as f64 / rate;
    }
    NfsOutcome {
        bytes,
        elapsed: SimDuration::from_secs_f64(elapsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{IoRecord, IoTrace};

    fn write_trace(pieces: u64, len: u64) -> IoTrace {
        let mut t = IoTrace::new();
        for i in 0..pieces {
            t.push(IoRecord {
                kind: IoKind::Write,
                offset: i * len,
                len,
                depth: 1,
            });
        }
        t
    }

    fn read_trace(pieces: u64, len: u64) -> IoTrace {
        let mut t = IoTrace::new();
        for i in 0..pieces {
            t.push(IoRecord {
                kind: IoKind::Read,
                offset: i * len,
                len,
                depth: 1,
            });
        }
        t
    }

    #[test]
    fn sustained_writes_are_drain_limited() {
        let p = NfsParams::paper_mount();
        // 1 GiB of writes: far beyond the dirty limit.
        let out = replay_write(&write_trace(512, 2 << 20), &p);
        let mibs = out.bandwidth_mib();
        let drain_mibs = p.drain_rate() / (1u64 << 20) as f64;
        assert!(mibs < drain_mibs * 1.05, "bw {mibs} vs drain {drain_mibs}");
        assert!(mibs > drain_mibs * 0.6, "bw {mibs} vs drain {drain_mibs}");
    }

    #[test]
    fn small_bursts_absorb_at_memory_speed() {
        let p = NfsParams::paper_mount();
        // 16 MiB burst: fits in the dirty limit; only the close-flush
        // costs drain time.
        let burst = replay_write(&write_trace(8, 2 << 20), &p);
        let sustained = replay_write(&write_trace(512, 2 << 20), &p);
        // The burst's *absorption* is memory-speed; its elapsed time is
        // dominated by the close-flush + commit, and per-byte it stays in
        // the same regime as sustained streaming (no throttling phase).
        assert!(burst.bandwidth_mib() >= sustained.bandwidth_mib() * 0.7);
        let absorb_secs = (16u64 << 20) as f64 / p.absorb_rate.as_bytes_per_sec();
        assert!(burst.elapsed.as_secs_f64() > 5.0 * absorb_secs);
    }

    #[test]
    fn reads_are_server_or_pipeline_limited() {
        let p = NfsParams::paper_mount();
        let out = replay_read(&read_trace(128, 2 << 20), &p);
        let mibs = out.bandwidth_mib();
        assert!(mibs < 1100.0, "NFS cold read too fast: {mibs}");
        assert!(mibs > 300.0, "NFS cold read too slow: {mibs}");
    }

    #[test]
    fn writes_ignore_read_records_and_vice_versa() {
        let p = NfsParams::paper_mount();
        let r = replay_write(&read_trace(4, 1 << 20), &p);
        assert_eq!(r.bytes, 0);
        let w = replay_read(&write_trace(4, 1 << 20), &p);
        assert_eq!(w.bytes, 0);
    }
}
