//! I/O traces and the coalescing optimization (§5.7.1).
//!
//! A trace is the sequence of storage I/Os an HDF5 kernel emits through
//! the VOL. Each record carries a *pipeline depth* hint: how many
//! requests the runtime may keep in flight while executing it. One large
//! contiguous `H5Dwrite` streams at the full queue depth; the
//! interleaved multi-dataset pattern of config-2 degenerates into
//! synchronous bursts — exactly the behaviour the paper's coalescing
//! optimization repairs "in an application agnostic manner".

use crate::H5Error;

/// Direction of one record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// Write to storage.
    Write,
    /// Read from storage.
    Read,
}

/// One storage I/O.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoRecord {
    /// Direction.
    pub kind: IoKind,
    /// Absolute byte offset in the container.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// How many requests may be in flight while this record executes
    /// (1 = synchronous metadata/interleaved access).
    pub depth: usize,
}

/// An ordered I/O trace.
#[derive(Clone, Debug, Default)]
pub struct IoTrace {
    records: Vec<IoRecord>,
}

impl IoTrace {
    /// An empty trace.
    pub fn new() -> Self {
        IoTrace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, rec: IoRecord) {
        assert!(rec.len > 0, "zero-length record");
        assert!(rec.depth > 0, "zero depth");
        self.records.push(rec);
    }

    /// The records in order.
    pub fn records(&self) -> &[IoRecord] {
        &self.records
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len).sum()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The paper's application-agnostic I/O coalescing (§5.7.1): merges
    /// *adjacent-in-file, same-direction* consecutive records into
    /// batches of up to `max_batch` bytes, and lifts the batch to the
    /// full pipeline depth `depth` — buffered data no longer has to be
    /// issued synchronously.
    pub fn coalesce(&self, max_batch: u64, depth: usize) -> IoTrace {
        assert!(max_batch > 0 && depth > 0);
        let mut out = IoTrace::new();
        let mut pending: Option<IoRecord> = None;
        for &rec in &self.records {
            match pending {
                Some(ref mut p)
                    if p.kind == rec.kind
                        && p.offset + p.len == rec.offset
                        && p.len + rec.len <= max_batch =>
                {
                    p.len += rec.len;
                }
                Some(p) => {
                    out.push(IoRecord { depth, ..p });
                    pending = Some(rec);
                }
                None => pending = Some(rec),
            }
        }
        if let Some(p) = pending {
            out.push(IoRecord { depth, ..p });
        }
        out
    }

    /// Validates the trace against a container size.
    pub fn validate(&self, capacity: u64) -> Result<(), H5Error> {
        for r in &self.records {
            if r.offset + r.len > capacity {
                return Err(H5Error::Storage(format!(
                    "record [{}, {}) beyond capacity {capacity}",
                    r.offset,
                    r.offset + r.len
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(offset: u64, len: u64, depth: usize) -> IoRecord {
        IoRecord {
            kind: IoKind::Write,
            offset,
            len,
            depth,
        }
    }

    #[test]
    fn totals() {
        let mut t = IoTrace::new();
        t.push(w(0, 100, 1));
        t.push(w(100, 50, 1));
        assert_eq!(t.total_bytes(), 150);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn coalesce_merges_adjacent_writes() {
        let mut t = IoTrace::new();
        for i in 0..8u64 {
            t.push(w(i * 1024, 1024, 1));
        }
        let c = t.coalesce(4096, 32);
        assert_eq!(c.len(), 2);
        assert_eq!(c.records()[0], w(0, 4096, 32));
        assert_eq!(c.records()[1], w(4096, 4096, 32));
        assert_eq!(c.total_bytes(), t.total_bytes());
    }

    #[test]
    fn coalesce_respects_gaps_and_direction() {
        let mut t = IoTrace::new();
        t.push(w(0, 100, 1));
        t.push(w(200, 100, 1)); // gap
        t.push(IoRecord {
            kind: IoKind::Read,
            offset: 300,
            len: 100,
            depth: 1,
        }); // direction change
        let c = t.coalesce(1 << 20, 16);
        assert_eq!(c.len(), 3);
        assert!(c.records().iter().all(|r| r.depth == 16));
    }

    #[test]
    fn coalesce_respects_batch_cap() {
        let mut t = IoTrace::new();
        for i in 0..4u64 {
            t.push(w(i * 1000, 1000, 1));
        }
        let c = t.coalesce(2500, 8);
        // 1000+1000 fits, +1000 exceeds 2500 → batches of 2.
        assert_eq!(c.len(), 2);
        assert_eq!(c.records()[0].len, 2000);
    }

    #[test]
    fn validate_catches_overflow() {
        let mut t = IoTrace::new();
        t.push(w(0, 100, 1));
        assert!(t.validate(100).is_ok());
        t.push(w(90, 20, 1));
        assert!(t.validate(100).is_err());
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_len_rejected() {
        IoTrace::new().push(w(0, 0, 1));
    }
}
