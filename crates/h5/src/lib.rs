//! HDF5-like storage runtime, h5bench-style kernels, and the NFS baseline.
//!
//! The paper's application-level evaluation (§5.7) co-designs h5bench —
//! a suite of representative HDF5 I/O kernels — with NVMe-oAF through the
//! HDF5 Virtual Object Layer (VOL), and compares against NFS. This crate
//! provides every piece of that substitution:
//!
//! * [`mod@format`] — a minimal HDF5-like container: superblock, dataset
//!   table, contiguous 1-D datasets, readable and writable over any
//!   byte-extent storage;
//! * [`vol`] — the VOL-connector abstraction: the same kernel code runs
//!   against the real NVMe-oAF runtime ([`vol::BlockExtent`] under [`vol::H5Vol`]), an in-memory
//!   connector for tests, or a trace recorder for the simulation;
//! * [`kernel`] — h5bench-style write/read kernels with the paper's two
//!   configurations (config-1: 16M particles × 1 dataset; config-2:
//!   8M particles × 8 datasets, §5.7.1);
//! * [`trace`] — I/O traces and the application-agnostic I/O coalescing
//!   optimization (§5.7.1);
//! * [`nfs`] — an NFS client/server model (async mount: write-behind
//!   caching, rsize/wsize-chunked RPCs, commit barriers) for the Figs.
//!   16–17 baseline;
//! * [`replay`] — replays kernel traces through the `oaf-core` simulation
//!   to produce the Figs. 16–17 bandwidth numbers.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod format;
pub mod kernel;
pub mod nfs;
pub mod replay;
pub mod trace;
pub mod vol;

pub use format::{DatasetInfo, H5File};
pub use kernel::{KernelConfig, KernelReport};
pub use trace::{IoKind, IoRecord, IoTrace};
pub use vol::VolConnector;

/// Errors surfaced by the HDF5-like runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H5Error {
    /// The container bytes are not a valid file.
    Corrupt(String),
    /// A dataset name was not found.
    NoSuchDataset(String),
    /// A dataset name already exists.
    DuplicateDataset(String),
    /// An access fell outside a dataset's extent.
    OutOfBounds {
        /// Dataset name.
        dataset: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Dataset size.
        size: u64,
    },
    /// The backing storage failed.
    Storage(String),
}

impl std::fmt::Display for H5Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            H5Error::Corrupt(m) => write!(f, "corrupt container: {m}"),
            H5Error::NoSuchDataset(n) => write!(f, "no such dataset: {n}"),
            H5Error::DuplicateDataset(n) => write!(f, "duplicate dataset: {n}"),
            H5Error::OutOfBounds {
                dataset,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) out of bounds for dataset '{dataset}' of {size} bytes"
            ),
            H5Error::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for H5Error {}
