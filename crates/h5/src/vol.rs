//! The Virtual-Object-Layer shim (§5.7.1).
//!
//! The paper intercepts HDF5 API calls with a VOL connector and routes
//! storage through NVMe-oAF's Connection Manager, Locality Awareness and
//! Buffer Manager. Here the same role is played by [`VolConnector`]
//! implementations over the [`crate::format::Extent`] abstraction:
//!
//! * [`H5Vol`]`<MemExtent>` — in-memory, for tests;
//! * [`H5Vol`]`<BlockExtent>` — the real co-design: the container lives
//!   on an NVMe-oAF block device and every dataset access becomes real
//!   NVMe-oF I/O through the adaptive fabric;
//! * [`H5Vol`]`<TracingExtent<…>>` — records the I/O trace the kernels
//!   emit, for replay through the simulation (Figs. 16–19).

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use oaf_core::runtime::AfClient;

use crate::format::{DatasetInfo, Extent, H5File};
use crate::trace::{IoKind, IoRecord, IoTrace};
use crate::H5Error;

/// The VOL-connector interface the kernels program against.
pub trait VolConnector {
    /// Creates a 1-D dataset.
    fn create_dataset(
        &mut self,
        name: &str,
        dtype_size: u32,
        dim0: u64,
    ) -> Result<DatasetInfo, H5Error>;
    /// Writes bytes into a dataset.
    fn dataset_write(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<(), H5Error>;
    /// Reads bytes from a dataset.
    fn dataset_read(&mut self, name: &str, offset: u64, buf: &mut [u8]) -> Result<(), H5Error>;
    /// Lists datasets.
    fn datasets(&self) -> Vec<DatasetInfo>;
}

/// A VOL connector: the container format over any extent.
pub struct H5Vol<E: Extent> {
    file: H5File,
    ext: E,
}

impl<E: Extent> H5Vol<E> {
    /// Creates a fresh container on `ext`.
    pub fn create(mut ext: E) -> Result<Self, H5Error> {
        let file = H5File::create(&mut ext)?;
        Ok(H5Vol { file, ext })
    }

    /// Opens an existing container on `ext`.
    pub fn open(mut ext: E) -> Result<Self, H5Error> {
        let file = H5File::open(&mut ext)?;
        Ok(H5Vol { file, ext })
    }

    /// The underlying extent (e.g. to pull a recorded trace).
    pub fn extent(&self) -> &E {
        &self.ext
    }

    /// Consumes the connector, returning the extent (e.g. to reopen the
    /// container from the same device).
    pub fn into_extent(self) -> E {
        self.ext
    }
}

impl<E: Extent> VolConnector for H5Vol<E> {
    fn create_dataset(
        &mut self,
        name: &str,
        dtype_size: u32,
        dim0: u64,
    ) -> Result<DatasetInfo, H5Error> {
        self.file
            .create_dataset(&mut self.ext, name, dtype_size, dim0)
    }

    fn dataset_write(&mut self, name: &str, offset: u64, data: &[u8]) -> Result<(), H5Error> {
        self.file.write(&mut self.ext, name, offset, data)
    }

    fn dataset_read(&mut self, name: &str, offset: u64, buf: &mut [u8]) -> Result<(), H5Error> {
        self.file.read(&mut self.ext, name, offset, buf)
    }

    fn datasets(&self) -> Vec<DatasetInfo> {
        self.file.datasets().to_vec()
    }
}

/// Byte-extent adapter over a real NVMe-oAF block device: the actual
/// co-design path. Unaligned accesses do read-modify-write at block
/// granularity, like a filesystem buffer cache would.
pub struct BlockExtent {
    client: AfClient,
    nsid: u32,
    block_size: u64,
    capacity: u64,
    timeout: Duration,
}

impl BlockExtent {
    /// Wraps namespace `nsid` of a connected client.
    pub fn new(mut client: AfClient, nsid: u32) -> Result<Self, H5Error> {
        let info = client
            .identify(nsid)
            .map_err(|e| H5Error::Storage(e.to_string()))?;
        Ok(BlockExtent {
            client,
            nsid,
            block_size: u64::from(info.block_size),
            capacity: info.capacity_blocks * u64::from(info.block_size),
            timeout: Duration::from_secs(10),
        })
    }

    fn block_range(&self, offset: u64, len: u64) -> (u64, u32) {
        let first = offset / self.block_size;
        let last = (offset + len).div_ceil(self.block_size);
        (first, (last - first) as u32)
    }
}

impl Extent for BlockExtent {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), H5Error> {
        if buf.is_empty() {
            return Ok(());
        }
        let (lba, count) = self.block_range(offset, buf.len() as u64);
        let raw = self
            .client
            .read(
                self.nsid,
                lba,
                count,
                count as usize * self.block_size as usize,
                self.timeout,
            )
            .map_err(|e| H5Error::Storage(e.to_string()))?;
        let skip = (offset - lba * self.block_size) as usize;
        buf.copy_from_slice(&raw[skip..skip + buf.len()]);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), H5Error> {
        if data.is_empty() {
            return Ok(());
        }
        // Split writes whose block span exceeds the buffer manager's
        // largest buffer (read-modify-write needs the whole span).
        let max_span = self.client.max_buffer() as u64 / self.block_size * self.block_size;
        debug_assert!(max_span >= 2 * self.block_size, "pool buffers too small");
        let end = offset + data.len() as u64;
        let first_span_end = (offset / self.block_size) * self.block_size + max_span;
        if end > first_span_end {
            let head = (first_span_end - offset) as usize;
            self.write_at(offset, &data[..head])?;
            return self.write_at(first_span_end, &data[head..]);
        }
        let (lba, count) = self.block_range(offset, data.len() as u64);
        let span = count as usize * self.block_size as usize;
        let skip = (offset - lba * self.block_size) as usize;
        // Read-modify-write when the span is not fully covered.
        let mut raw = if skip == 0 && data.len() == span {
            Vec::new()
        } else {
            self.client
                .read(self.nsid, lba, count, span, self.timeout)
                .map_err(|e| H5Error::Storage(e.to_string()))?
        };
        let payload: &[u8] = if raw.is_empty() {
            data
        } else {
            raw[skip..skip + data.len()].copy_from_slice(data);
            &raw
        };
        // Allocate through the Buffer Manager: zero-copy when local.
        let mut io = self
            .client
            .alloc(payload.len())
            .map_err(|e| H5Error::Storage(e.to_string()))?;
        io.copy_from_slice(payload);
        self.client
            .write(self.nsid, lba, count, io, self.timeout)
            .map_err(|e| H5Error::Storage(e.to_string()))
    }
}

/// An extent wrapper that records every access as an [`IoRecord`], with a
/// caller-controlled pipeline-depth hint. Wraps a real extent so the
/// format layer still functions (metadata reads must return real bytes).
pub struct TracingExtent<E: Extent> {
    inner: E,
    trace: IoTrace,
    depth: Rc<Cell<usize>>,
}

impl<E: Extent> TracingExtent<E> {
    /// Wraps `inner`; `depth` is read at every access (the kernel flips
    /// it between data and metadata phases).
    pub fn new(inner: E, depth: Rc<Cell<usize>>) -> Self {
        TracingExtent {
            inner,
            trace: IoTrace::new(),
            depth,
        }
    }

    /// The recorded trace.
    pub fn trace(&self) -> &IoTrace {
        &self.trace
    }
}

impl<E: Extent> Extent for TracingExtent<E> {
    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), H5Error> {
        self.trace.push(IoRecord {
            kind: IoKind::Read,
            offset,
            len: buf.len() as u64,
            depth: self.depth.get(),
        });
        self.inner.read_at(offset, buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<(), H5Error> {
        self.trace.push(IoRecord {
            kind: IoKind::Write,
            offset,
            len: data.len() as u64,
            depth: self.depth.get(),
        });
        self.inner.write_at(offset, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::MemExtent;

    #[test]
    fn mem_vol_roundtrip() {
        let mut vol = H5Vol::create(MemExtent::new(1 << 20)).unwrap();
        vol.create_dataset("p", 4, 256).unwrap();
        vol.dataset_write("p", 0, &[7u8; 1024]).unwrap();
        let mut out = vec![0u8; 1024];
        vol.dataset_read("p", 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 7));
        assert_eq!(vol.datasets().len(), 1);
    }

    #[test]
    fn tracing_extent_records_and_passes_through() {
        let depth = Rc::new(Cell::new(1));
        let mut vol =
            H5Vol::create(TracingExtent::new(MemExtent::new(1 << 20), depth.clone())).unwrap();
        vol.create_dataset("p", 4, 256).unwrap();
        depth.set(64);
        vol.dataset_write("p", 0, &[1u8; 512]).unwrap();
        depth.set(1);
        let mut out = vec![0u8; 512];
        vol.dataset_read("p", 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 1), "pass-through broken");
        let trace = vol.extent().trace();
        // superblock + entry + superblock (metadata, depth 1) then the
        // data write at depth 64 and the read at depth 1.
        let data_recs: Vec<_> = trace.records().iter().filter(|r| r.len == 512).collect();
        assert_eq!(data_recs.len(), 2);
        assert_eq!(data_recs[0].depth, 64);
        assert_eq!(data_recs[1].depth, 1);
        assert!(trace.len() >= 5);
    }
}
