//! h5bench-style I/O kernels (§5.7.1).
//!
//! The write kernel stores 1-D particle arrays of a basic datatype with a
//! contiguous memory and file layout; the read kernel performs a full
//! read of what was written. The paper's two configurations:
//!
//! * **config-1** — 16×1024×1024 particles in one dataset: a single
//!   large `H5Dwrite` the runtime can stream at full queue depth;
//! * **config-2** — 8×1024×1024 particles in each of 8 datasets: the
//!   library alternates between dataset extents, flushing its conversion
//!   buffer and updating metadata at each switch, which collapses the
//!   effective pipeline to nearly synchronous I/O — the pattern whose
//!   bandwidth the paper recovers with application-agnostic I/O
//!   coalescing (Fig. 17).

use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

use crate::vol::VolConnector;
use crate::H5Error;

/// Pipeline depth of a fully-streamed dataset write/read.
pub const STREAM_DEPTH: usize = 128;
/// Effective depth of the interleaved multi-dataset pattern.
pub const INTERLEAVED_DEPTH: usize = 1;

/// An h5bench kernel configuration.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Number of datasets.
    pub datasets: usize,
    /// Particles per dataset *per timestep*.
    pub particles: u64,
    /// Bytes per particle (h5bench's basic datatype: 4-byte float).
    pub dtype_size: u32,
    /// The library's internal conversion-buffer size: dataset I/O is
    /// issued in pieces of at most this many bytes.
    pub h5d_buffer: u64,
    /// Timesteps (the paper's Figs. 16–17 use one; h5bench supports
    /// many — each appends another particle block to every dataset).
    pub timesteps: u64,
}

impl KernelConfig {
    /// config-1: 16M particles, one dataset, one timestep (§5.7.1).
    pub fn config1() -> Self {
        KernelConfig {
            datasets: 1,
            particles: 16 * 1024 * 1024,
            dtype_size: 4,
            h5d_buffer: 2 * 1024 * 1024,
            timesteps: 1,
        }
    }

    /// config-2: 8M particles in each of 8 datasets (§5.7.1). The
    /// library's conversion-buffer pool is shared across open datasets,
    /// so the per-dataset piece shrinks to 2 MiB / 8.
    pub fn config2() -> Self {
        KernelConfig {
            datasets: 8,
            particles: 8 * 1024 * 1024,
            dtype_size: 4,
            h5d_buffer: 256 * 1024,
            timesteps: 1,
        }
    }

    /// Builder: number of timesteps.
    pub fn with_timesteps(mut self, t: u64) -> Self {
        assert!(t >= 1);
        self.timesteps = t;
        self
    }

    /// Total payload bytes across all timesteps.
    pub fn total_bytes(&self) -> u64 {
        self.datasets as u64 * self.dataset_bytes()
    }

    /// Bytes per dataset (all timesteps).
    pub fn dataset_bytes(&self) -> u64 {
        self.timesteps * self.particles * u64::from(self.dtype_size)
    }

    /// Bytes per dataset per timestep.
    pub fn timestep_bytes(&self) -> u64 {
        self.particles * u64::from(self.dtype_size)
    }

    /// Pipeline depth the runtime achieves for this configuration's data
    /// phase.
    pub fn data_depth(&self) -> usize {
        if self.datasets == 1 {
            STREAM_DEPTH
        } else {
            INTERLEAVED_DEPTH
        }
    }

    /// Dataset name for index `i`.
    pub fn dataset_name(i: usize) -> String {
        format!("particles_{i}")
    }
}

/// Result of one kernel run.
#[derive(Clone, Copy, Debug)]
pub struct KernelReport {
    /// Payload bytes moved.
    pub bytes: u64,
    /// Wall-clock elapsed (meaningful for real-runtime VOLs only).
    pub elapsed: std::time::Duration,
}

impl KernelReport {
    /// Wall-clock bandwidth in MiB/s (real-runtime VOLs).
    pub fn bandwidth_mib(&self) -> f64 {
        self.bytes as f64 / (1u64 << 20) as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn particle_pattern(piece_index: u64, len: usize) -> Vec<u8> {
    // Deterministic, cheap, verifiable fill.
    let seed = (piece_index % 251) as u8;
    vec![seed.wrapping_add(1); len]
}

/// Runs the write kernel: creates the datasets, then writes every
/// particle. `depth_hint` is flipped between metadata (1) and data
/// phases so tracing VOLs capture the achievable pipeline depth.
pub fn run_write<V: VolConnector>(
    vol: &mut V,
    cfg: &KernelConfig,
    depth_hint: &Rc<Cell<usize>>,
) -> Result<KernelReport, H5Error> {
    let t0 = Instant::now();
    depth_hint.set(1);
    // Datasets are sized for the whole run: OAF5 extents are fixed at
    // creation, so a multi-timestep run pre-allocates timesteps × particles.
    for d in 0..cfg.datasets {
        vol.create_dataset(
            &KernelConfig::dataset_name(d),
            cfg.dtype_size,
            cfg.timesteps * cfg.particles,
        )?;
    }
    depth_hint.set(cfg.data_depth());
    let ts_bytes = cfg.timestep_bytes();
    let pieces = ts_bytes.div_ceil(cfg.h5d_buffer);
    // h5bench writes a timestep as one pass over all datasets; with
    // several datasets the pass alternates between extents piece by
    // piece (the interleaving that defeats write-behind).
    for ts in 0..cfg.timesteps {
        for piece in 0..pieces {
            let ts_base = ts * ts_bytes;
            let offset = piece * cfg.h5d_buffer;
            let len = (ts_bytes - offset).min(cfg.h5d_buffer) as usize;
            for d in 0..cfg.datasets {
                let data =
                    particle_pattern((ts * pieces + piece) * cfg.datasets as u64 + d as u64, len);
                vol.dataset_write(&KernelConfig::dataset_name(d), ts_base + offset, &data)?;
            }
        }
    }
    depth_hint.set(1);
    Ok(KernelReport {
        bytes: cfg.total_bytes(),
        elapsed: t0.elapsed(),
    })
}

/// Runs the read kernel: a full read of every dataset previously written
/// (h5bench's "full read of the datasets written by the write kernel").
/// Returns an error if contents do not match the write kernel's pattern.
pub fn run_read<V: VolConnector>(
    vol: &mut V,
    cfg: &KernelConfig,
    depth_hint: &Rc<Cell<usize>>,
    verify: bool,
) -> Result<KernelReport, H5Error> {
    let t0 = Instant::now();
    depth_hint.set(cfg.data_depth());
    let ts_bytes = cfg.timestep_bytes();
    let pieces = ts_bytes.div_ceil(cfg.h5d_buffer);
    let mut buf = vec![0u8; cfg.h5d_buffer as usize];
    for ts in 0..cfg.timesteps {
        for piece in 0..pieces {
            let ts_base = ts * ts_bytes;
            let offset = piece * cfg.h5d_buffer;
            let len = (ts_bytes - offset).min(cfg.h5d_buffer) as usize;
            for d in 0..cfg.datasets {
                vol.dataset_read(
                    &KernelConfig::dataset_name(d),
                    ts_base + offset,
                    &mut buf[..len],
                )?;
                if verify {
                    let expected = particle_pattern(
                        (ts * pieces + piece) * cfg.datasets as u64 + d as u64,
                        len,
                    );
                    if buf[..len] != expected[..] {
                        return Err(H5Error::Corrupt(format!(
                            "dataset {d} ts {ts} piece {piece} contents mismatch"
                        )));
                    }
                }
            }
        }
    }
    depth_hint.set(1);
    Ok(KernelReport {
        bytes: cfg.total_bytes(),
        elapsed: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::MemExtent;
    use crate::vol::H5Vol;

    fn tiny(datasets: usize) -> KernelConfig {
        KernelConfig {
            datasets,
            particles: 64 * 1024,
            dtype_size: 4,
            h5d_buffer: 64 * 1024,
            timesteps: 1,
        }
    }

    #[test]
    fn configs_match_paper() {
        let c1 = KernelConfig::config1();
        assert_eq!(c1.total_bytes(), 64 << 20); // 16M x 4B
        assert_eq!(c1.data_depth(), STREAM_DEPTH);
        let c2 = KernelConfig::config2();
        assert_eq!(c2.total_bytes(), 256 << 20); // 8 x 8M x 4B
        assert_eq!(c2.data_depth(), INTERLEAVED_DEPTH);
    }

    #[test]
    fn write_then_read_verifies() {
        let cfg = tiny(2);
        let mut vol = H5Vol::create(MemExtent::new(4 << 20)).unwrap();
        let hint = Rc::new(Cell::new(1));
        let w = run_write(&mut vol, &cfg, &hint).unwrap();
        assert_eq!(w.bytes, cfg.total_bytes());
        let r = run_read(&mut vol, &cfg, &hint, true).unwrap();
        assert_eq!(r.bytes, cfg.total_bytes());
    }

    #[test]
    fn corruption_is_detected() {
        let cfg = tiny(1);
        let mut vol = H5Vol::create(MemExtent::new(4 << 20)).unwrap();
        let hint = Rc::new(Cell::new(1));
        run_write(&mut vol, &cfg, &hint).unwrap();
        vol.dataset_write("particles_0", 100, &[0xff; 8]).unwrap();
        assert!(matches!(
            run_read(&mut vol, &cfg, &hint, true),
            Err(H5Error::Corrupt(_))
        ));
    }

    #[test]
    fn multi_timestep_roundtrip() {
        let cfg = tiny(2).with_timesteps(3);
        assert_eq!(cfg.total_bytes(), 3 * 2 * 64 * 1024 * 4);
        let mut vol = H5Vol::create(MemExtent::new(8 << 20)).unwrap();
        let hint = Rc::new(Cell::new(1));
        let w = run_write(&mut vol, &cfg, &hint).unwrap();
        assert_eq!(w.bytes, cfg.total_bytes());
        run_read(&mut vol, &cfg, &hint, true).unwrap();
    }

    #[test]
    fn trace_capture_has_expected_shape() {
        use crate::vol::TracingExtent;
        let cfg = tiny(2);
        let hint = Rc::new(Cell::new(1));
        let mut vol =
            H5Vol::create(TracingExtent::new(MemExtent::new(4 << 20), hint.clone())).unwrap();
        run_write(&mut vol, &cfg, &hint).unwrap();
        let trace = vol.extent().trace();
        let data: Vec<_> = trace
            .records()
            .iter()
            .filter(|r| r.len == 64 * 1024)
            .collect();
        // 2 datasets x 4 pieces of 64K each.
        assert_eq!(data.len(), 8);
        assert!(data.iter().all(|r| r.depth == INTERLEAVED_DEPTH));
        // Interleaved: consecutive data records are in different extents.
        assert_ne!(data[0].offset + data[0].len, data[1].offset);
    }
}
