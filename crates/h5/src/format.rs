//! The minimal HDF5-like container format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! superblock (64 B):  magic "OAF5" | version u32 | dataset_count u32 |
//!                     table_offset u64 | data_end u64 | pad
//! dataset table:      count × entry (96 B):
//!                     name (64 B, NUL-padded) | offset u64 | nbytes u64 |
//!                     dtype_size u32 | rank u32 | dim0 u64
//! data:               contiguous extents
//! ```
//!
//! The container is format logic only: it reads and writes through the
//! [`Extent`] trait, so the same code runs over a RAM image (tests), the
//! real NVMe-oAF block device (via `vol::OafVol`'s adapter), or nothing
//! at all (trace capture).

use crate::H5Error;

/// Byte-extent storage the container lives on.
pub trait Extent {
    /// Total capacity in bytes.
    fn capacity(&self) -> u64;
    /// Reads `buf.len()` bytes at `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), H5Error>;
    /// Writes `buf` at `offset`.
    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<(), H5Error>;
}

/// A RAM-backed extent for tests and examples.
pub struct MemExtent {
    data: Vec<u8>,
}

impl MemExtent {
    /// A zeroed extent of `len` bytes.
    pub fn new(len: usize) -> Self {
        MemExtent { data: vec![0; len] }
    }
}

impl Extent for MemExtent {
    fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), H5Error> {
        let end = offset as usize + buf.len();
        if end > self.data.len() {
            return Err(H5Error::Storage(format!("read past extent end {end}")));
        }
        buf.copy_from_slice(&self.data[offset as usize..end]);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> Result<(), H5Error> {
        let end = offset as usize + buf.len();
        if end > self.data.len() {
            return Err(H5Error::Storage(format!("write past extent end {end}")));
        }
        self.data[offset as usize..end].copy_from_slice(buf);
        Ok(())
    }
}

const MAGIC: &[u8; 4] = b"OAF5";
const VERSION: u32 = 1;
const SUPERBLOCK_LEN: u64 = 64;
const ENTRY_LEN: u64 = 96;
const NAME_LEN: usize = 64;
/// Maximum datasets per container (sizes the table region).
pub const MAX_DATASETS: u32 = 256;

/// Metadata of one dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name (≤ 63 bytes).
    pub name: String,
    /// Byte offset of the contiguous extent.
    pub offset: u64,
    /// Extent length in bytes.
    pub nbytes: u64,
    /// Element size in bytes (e.g. 4 for `f32` particles).
    pub dtype_size: u32,
    /// Number of elements (1-D arrays in h5bench's contiguous pattern).
    pub dim0: u64,
}

/// An open HDF5-like container.
///
/// ```
/// use oaf_h5::format::{H5File, MemExtent};
///
/// let mut ext = MemExtent::new(1 << 20);
/// let mut f = H5File::create(&mut ext).unwrap();
/// f.create_dataset(&mut ext, "particles", 4, 1024).unwrap();
/// f.write(&mut ext, "particles", 0, &[7u8; 4096]).unwrap();
///
/// // The container is self-describing: reopen from the same bytes.
/// let mut f = H5File::open(&mut ext).unwrap();
/// let mut out = vec![0u8; 4096];
/// f.read(&mut ext, "particles", 0, &mut out).unwrap();
/// assert!(out.iter().all(|&b| b == 7));
/// ```
pub struct H5File {
    datasets: Vec<DatasetInfo>,
    data_end: u64,
}

impl H5File {
    fn table_offset() -> u64 {
        SUPERBLOCK_LEN
    }

    fn data_start() -> u64 {
        SUPERBLOCK_LEN + u64::from(MAX_DATASETS) * ENTRY_LEN
    }

    /// Creates an empty container on `ext` (writes the superblock).
    pub fn create<E: Extent>(ext: &mut E) -> Result<H5File, H5Error> {
        let file = H5File {
            datasets: Vec::new(),
            data_end: Self::data_start(),
        };
        file.write_superblock(ext)?;
        Ok(file)
    }

    /// Opens an existing container from `ext`.
    pub fn open<E: Extent>(ext: &mut E) -> Result<H5File, H5Error> {
        let mut sb = [0u8; SUPERBLOCK_LEN as usize];
        ext.read_at(0, &mut sb)?;
        if &sb[0..4] != MAGIC {
            return Err(H5Error::Corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(sb[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(H5Error::Corrupt(format!("unsupported version {version}")));
        }
        let count = u32::from_le_bytes(sb[8..12].try_into().expect("4 bytes"));
        if count > MAX_DATASETS {
            return Err(H5Error::Corrupt(format!("dataset count {count} too large")));
        }
        let data_end = u64::from_le_bytes(sb[24..32].try_into().expect("8 bytes"));
        let mut datasets = Vec::with_capacity(count as usize);
        for i in 0..count {
            let mut entry = [0u8; ENTRY_LEN as usize];
            ext.read_at(Self::table_offset() + u64::from(i) * ENTRY_LEN, &mut entry)?;
            let name_end = entry[..NAME_LEN]
                .iter()
                .position(|&b| b == 0)
                .unwrap_or(NAME_LEN);
            let name = String::from_utf8(entry[..name_end].to_vec())
                .map_err(|_| H5Error::Corrupt(format!("dataset {i} name not UTF-8")))?;
            datasets.push(DatasetInfo {
                name,
                offset: u64::from_le_bytes(entry[64..72].try_into().expect("8")),
                nbytes: u64::from_le_bytes(entry[72..80].try_into().expect("8")),
                dtype_size: u32::from_le_bytes(entry[80..84].try_into().expect("4")),
                dim0: u64::from_le_bytes(entry[88..96].try_into().expect("8")),
            });
        }
        Ok(H5File { datasets, data_end })
    }

    fn write_superblock<E: Extent>(&self, ext: &mut E) -> Result<(), H5Error> {
        let mut sb = [0u8; SUPERBLOCK_LEN as usize];
        sb[0..4].copy_from_slice(MAGIC);
        sb[4..8].copy_from_slice(&VERSION.to_le_bytes());
        sb[8..12].copy_from_slice(&(self.datasets.len() as u32).to_le_bytes());
        sb[16..24].copy_from_slice(&Self::table_offset().to_le_bytes());
        sb[24..32].copy_from_slice(&self.data_end.to_le_bytes());
        ext.write_at(0, &sb)
    }

    fn write_entry<E: Extent>(&self, ext: &mut E, idx: usize) -> Result<(), H5Error> {
        let ds = &self.datasets[idx];
        let mut entry = [0u8; ENTRY_LEN as usize];
        let name = ds.name.as_bytes();
        entry[..name.len()].copy_from_slice(name);
        entry[64..72].copy_from_slice(&ds.offset.to_le_bytes());
        entry[72..80].copy_from_slice(&ds.nbytes.to_le_bytes());
        entry[80..84].copy_from_slice(&ds.dtype_size.to_le_bytes());
        entry[84..88].copy_from_slice(&1u32.to_le_bytes()); // rank
        entry[88..96].copy_from_slice(&ds.dim0.to_le_bytes());
        ext.write_at(Self::table_offset() + idx as u64 * ENTRY_LEN, &entry)
    }

    /// Creates a 1-D dataset of `dim0` elements of `dtype_size` bytes,
    /// allocating a contiguous extent at end-of-data.
    pub fn create_dataset<E: Extent>(
        &mut self,
        ext: &mut E,
        name: &str,
        dtype_size: u32,
        dim0: u64,
    ) -> Result<DatasetInfo, H5Error> {
        if name.len() >= NAME_LEN {
            return Err(H5Error::Corrupt(format!("name '{name}' too long")));
        }
        if self.datasets.iter().any(|d| d.name == name) {
            return Err(H5Error::DuplicateDataset(name.into()));
        }
        if self.datasets.len() as u32 >= MAX_DATASETS {
            return Err(H5Error::Corrupt("dataset table full".into()));
        }
        let nbytes = u64::from(dtype_size) * dim0;
        if self.data_end + nbytes > ext.capacity() {
            return Err(H5Error::Storage(format!(
                "extent full: need {nbytes} past {}",
                self.data_end
            )));
        }
        let info = DatasetInfo {
            name: name.into(),
            offset: self.data_end,
            nbytes,
            dtype_size,
            dim0,
        };
        self.data_end += nbytes;
        self.datasets.push(info.clone());
        self.write_entry(ext, self.datasets.len() - 1)?;
        self.write_superblock(ext)?;
        Ok(info)
    }

    /// Looks a dataset up by name.
    pub fn dataset(&self, name: &str) -> Result<&DatasetInfo, H5Error> {
        self.datasets
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| H5Error::NoSuchDataset(name.into()))
    }

    /// All datasets in creation order.
    pub fn datasets(&self) -> &[DatasetInfo] {
        &self.datasets
    }

    fn check_range(&self, name: &str, offset: u64, len: u64) -> Result<u64, H5Error> {
        let ds = self.dataset(name)?;
        if offset + len > ds.nbytes {
            return Err(H5Error::OutOfBounds {
                dataset: name.into(),
                offset,
                len,
                size: ds.nbytes,
            });
        }
        Ok(ds.offset + offset)
    }

    /// Writes `data` at byte `offset` within dataset `name`.
    pub fn write<E: Extent>(
        &mut self,
        ext: &mut E,
        name: &str,
        offset: u64,
        data: &[u8],
    ) -> Result<(), H5Error> {
        let abs = self.check_range(name, offset, data.len() as u64)?;
        ext.write_at(abs, data)
    }

    /// Reads `buf.len()` bytes at byte `offset` within dataset `name`.
    pub fn read<E: Extent>(
        &mut self,
        ext: &mut E,
        name: &str,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), H5Error> {
        let abs = self.check_range(name, offset, buf.len() as u64)?;
        ext.read_at(abs, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read_roundtrip() {
        let mut ext = MemExtent::new(1 << 20);
        let mut f = H5File::create(&mut ext).unwrap();
        f.create_dataset(&mut ext, "x", 4, 1000).unwrap();
        let data: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        f.write(&mut ext, "x", 0, &data).unwrap();
        let mut out = vec![0u8; 4000];
        f.read(&mut ext, "x", 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn reopen_preserves_datasets_and_contents() {
        let mut ext = MemExtent::new(1 << 20);
        {
            let mut f = H5File::create(&mut ext).unwrap();
            f.create_dataset(&mut ext, "a", 4, 100).unwrap();
            f.create_dataset(&mut ext, "b", 8, 50).unwrap();
            f.write(&mut ext, "b", 16, &[9u8; 64]).unwrap();
        }
        let mut f = H5File::open(&mut ext).unwrap();
        assert_eq!(f.datasets().len(), 2);
        let b = f.dataset("b").unwrap().clone();
        assert_eq!(b.dtype_size, 8);
        assert_eq!(b.dim0, 50);
        let mut out = vec![0u8; 64];
        f.read(&mut ext, "b", 16, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 9));
    }

    #[test]
    fn datasets_do_not_overlap() {
        let mut ext = MemExtent::new(1 << 20);
        let mut f = H5File::create(&mut ext).unwrap();
        let a = f.create_dataset(&mut ext, "a", 4, 1000).unwrap();
        let b = f.create_dataset(&mut ext, "b", 4, 1000).unwrap();
        assert!(a.offset + a.nbytes <= b.offset);
        // Writing one must not disturb the other.
        f.write(&mut ext, "a", 0, &vec![1u8; 4000]).unwrap();
        f.write(&mut ext, "b", 0, &vec![2u8; 4000]).unwrap();
        let mut out = vec![0u8; 4000];
        f.read(&mut ext, "a", 0, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 1));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut ext = MemExtent::new(1 << 20);
        let mut f = H5File::create(&mut ext).unwrap();
        f.create_dataset(&mut ext, "x", 4, 10).unwrap();
        assert!(matches!(
            f.write(&mut ext, "x", 38, &[0u8; 4]),
            Err(H5Error::OutOfBounds { .. })
        ));
        assert!(matches!(
            f.read(&mut ext, "nope", 0, &mut [0u8; 1]),
            Err(H5Error::NoSuchDataset(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ext = MemExtent::new(1 << 20);
        let mut f = H5File::create(&mut ext).unwrap();
        f.create_dataset(&mut ext, "x", 4, 10).unwrap();
        assert!(matches!(
            f.create_dataset(&mut ext, "x", 4, 10),
            Err(H5Error::DuplicateDataset(_))
        ));
    }

    #[test]
    fn garbage_rejected_on_open() {
        let mut ext = MemExtent::new(4096);
        ext.write_at(0, b"JUNKJUNK").unwrap();
        assert!(matches!(H5File::open(&mut ext), Err(H5Error::Corrupt(_))));
    }

    #[test]
    fn extent_capacity_enforced() {
        let mut ext = MemExtent::new(SUPERBLOCK_LEN as usize + 96 * MAX_DATASETS as usize + 100);
        let mut f = H5File::create(&mut ext).unwrap();
        assert!(f.create_dataset(&mut ext, "big", 4, 1_000_000).is_err());
        assert!(f.create_dataset(&mut ext, "small", 4, 25).is_ok());
    }
}
