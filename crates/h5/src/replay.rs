//! Replays h5bench traces through the fabric simulation (Figs. 16–17).
//!
//! Each trace record becomes one (or, for records larger than the
//! library buffer, several) simulated I/O on the chosen fabric. The
//! record's `depth` bounds how many requests stay in flight — a streamed
//! dataset keeps the fabric's queue full, while the interleaved
//! config-2 pattern degenerates to synchronous I/O with a durability
//! barrier per piece (the "queuing delay incurred by large-sized I/Os"
//! plus metadata flushes the paper blames for Fig. 17's pre-coalescing
//! result).

use oaf_core::sim::fabric::{simulate_io, StreamRes};
use oaf_core::sim::{
    build_world, ExperimentSpec, FabricKind, SimParams, StreamConfig, WorkloadSpec,
};
use oaf_simnet::time::{SimDuration, SimTime};
use oaf_ssd::IoOp;

use crate::trace::{IoKind, IoTrace};

/// Barrier cost charged after each *synchronous* (depth-1) access: the
/// dataset-switch overhead of the interleaved multi-dataset pattern —
/// the VOL drains and re-arms its lease pipeline and flushes metadata
/// when the kernel hops to another dataset's extent.
pub const SYNC_BARRIER: SimDuration = SimDuration::from_micros(300);

/// Outcome of a trace replay.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOutcome {
    /// Payload bytes moved.
    pub bytes: u64,
    /// Virtual elapsed time.
    pub elapsed: SimDuration,
    /// Number of simulated I/Os.
    pub ios: u64,
}

impl ReplayOutcome {
    /// Bandwidth in MiB/s.
    pub fn bandwidth_mib(&self) -> f64 {
        self.bytes as f64 / (1u64 << 20) as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Replays `trace` on `fabric`, splitting records at `max_io` bytes (the
/// fabric's slot/buffer size).
pub fn replay(trace: &IoTrace, fabric: FabricKind, max_io: u64) -> ReplayOutcome {
    assert!(max_io > 0);
    // A single-stream world; the workload object only seeds RNGs here.
    let spec = ExperimentSpec {
        streams: vec![StreamConfig {
            fabric,
            client_vm: 0,
            target_vm: 1,
            wire: 0,
        }],
        workload: WorkloadSpec::new(max_io, 1.0),
        params: SimParams::paper_testbed(),
    };
    let mut world = build_world(&spec);
    let res = StreamRes {
        client_vm: 0,
        target_vm: 1,
        core: 0,
        wire: 0,
        stream: 0,
    };

    let mut inflight: std::collections::VecDeque<SimTime> = std::collections::VecDeque::new();
    let mut cursor = SimTime::ZERO;
    let mut last = SimTime::ZERO;
    let mut bytes = 0u64;
    let mut ios = 0u64;

    for rec in trace.records() {
        let op = match rec.kind {
            IoKind::Write => IoOp::Write,
            IoKind::Read => IoOp::Read,
        };
        let mut remaining = rec.len;
        while remaining > 0 {
            let piece = remaining.min(max_io);
            remaining -= piece;
            // Respect the record's pipeline depth.
            while inflight.len() >= rec.depth {
                let done = inflight.pop_front().expect("non-empty");
                cursor = cursor.max(done);
            }
            let outcome = simulate_io(
                &mut world,
                fabric,
                res,
                op,
                piece,
                oaf_core::sim::Pattern::Sequential,
                cursor,
            );
            let mut done = outcome.done;
            if rec.depth == 1 {
                done += SYNC_BARRIER;
            }
            inflight.push_back(done);
            last = last.max(done);
            bytes += piece;
            ios += 1;
        }
    }
    ReplayOutcome {
        bytes,
        elapsed: last.saturating_since(SimTime::ZERO),
        ios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{IoRecord, IoTrace};
    use oaf_core::sim::ShmVariant;

    fn trace(pieces: u64, len: u64, depth: usize, kind: IoKind) -> IoTrace {
        let mut t = IoTrace::new();
        for i in 0..pieces {
            t.push(IoRecord {
                kind,
                offset: i * len,
                len,
                depth,
            });
        }
        t
    }

    const OAF: FabricKind = FabricKind::Shm {
        variant: ShmVariant::ZeroCopy,
    };

    #[test]
    fn replay_moves_all_bytes() {
        let t = trace(16, 2 << 20, 128, IoKind::Write);
        let out = replay(&t, OAF, 128 * 1024);
        assert_eq!(out.bytes, 32 << 20);
        assert_eq!(out.ios, 16 * 16); // 2 MiB split into 128K pieces
        assert!(out.bandwidth_mib() > 0.0);
    }

    #[test]
    fn pipelined_beats_synchronous() {
        let streamed = replay(&trace(32, 2 << 20, 128, IoKind::Write), OAF, 128 * 1024);
        let sync = replay(&trace(32, 2 << 20, 1, IoKind::Write), OAF, 128 * 1024);
        assert!(
            streamed.bandwidth_mib() > 3.0 * sync.bandwidth_mib(),
            "streamed {:.0} vs sync {:.0}",
            streamed.bandwidth_mib(),
            sync.bandwidth_mib()
        );
    }

    #[test]
    fn oaf_beats_tcp_for_streamed_writes() {
        let t = trace(32, 2 << 20, 128, IoKind::Write);
        let shm = replay(&t, OAF, 128 * 1024);
        let tcp = replay(&t, FabricKind::TcpStock { gbps: 25.0 }, 128 * 1024);
        assert!(shm.bandwidth_mib() > 1.5 * tcp.bandwidth_mib());
    }

    #[test]
    fn reads_replay_too() {
        let t = trace(16, 2 << 20, 128, IoKind::Read);
        let out = replay(&t, OAF, 128 * 1024);
        assert_eq!(out.bytes, 32 << 20);
        assert!(out.bandwidth_mib() > 1000.0);
    }
}
