//! Scalar metrics: relaxed-atomic counters and gauges.
//!
//! Both are cheap clonable handles over an `Arc`'d atomic cell, so the
//! same metric can live inside a hot-path struct *and* inside a
//! [`Registry`](crate::Registry) scope at the same time. All updates use
//! `Ordering::Relaxed`: metrics are monotonic or last-writer-wins
//! aggregates, never synchronization points.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing event count.
#[derive(Clone, Default, Debug)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }

    /// True when `other` is a handle to the same underlying cell.
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[derive(Default, Debug)]
struct GaugeCell {
    value: AtomicI64,
    hwm: AtomicI64,
}

/// Instantaneous level (queue depth, occupancy) with a built-in
/// high-water mark. `set`/`add`/`sub` update the level; the high-water
/// mark ratchets up via `fetch_max` and is never reset by deltas — it is
/// a lifetime maximum.
#[derive(Clone, Default, Debug)]
pub struct Gauge {
    inner: Arc<GaugeCell>,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.inner.value.store(v, Ordering::Relaxed);
        self.inner.hwm.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        let now = self.inner.value.fetch_add(d, Ordering::Relaxed) + d;
        self.inner.hwm.fetch_max(now, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, d: i64) {
        self.inner.value.fetch_sub(d, Ordering::Relaxed);
    }

    /// Ratchet the high-water mark only, leaving the level untouched.
    /// Used for occupancy sampling where the instantaneous level is
    /// also interesting: call `set` instead to track both.
    #[inline]
    pub fn observe_max(&self, v: i64) {
        self.inner.hwm.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.inner.value.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn hwm(&self) -> i64 {
        self.inner.hwm.load(Ordering::Relaxed)
    }

    pub fn same_as(&self, other: &Gauge) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shared_handle() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert!(c.same_as(&c2));
        assert!(!c.same_as(&Counter::new()));
    }

    #[test]
    fn gauge_tracks_level_and_hwm() {
        let g = Gauge::new();
        g.add(3);
        g.add(4);
        g.sub(5);
        assert_eq!(g.get(), 2);
        assert_eq!(g.hwm(), 7);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.hwm(), 7);
        g.observe_max(40);
        assert_eq!(g.get(), 1);
        assert_eq!(g.hwm(), 40);
    }

    #[test]
    fn gauge_sub_below_zero() {
        let g = Gauge::new();
        g.sub(2);
        assert_eq!(g.get(), -2);
        assert_eq!(g.hwm(), 0);
    }
}
