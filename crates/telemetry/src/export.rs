//! Snapshot exporters: Prometheus text format and JSON.
//!
//! Both formats are lossless for [`Snapshot`] data and ship with
//! parsers (`from_prometheus_text`, `from_json`) so round-tripping is
//! testable and scrape output can be consumed by the repo's own
//! tooling without third-party deps. Metric full names are
//! `oaf_<scope>__<name>`: scope and metric names are sanitized to
//! `[a-z0-9_]` with no doubled underscores (see
//! [`crate::registry::sanitize`]), so splitting on the last `__`
//! recovers the pair exactly.
//!
//! Gauge high-water marks and histogram maxima are emitted as companion
//! gauges with an `_hwm` suffix; histograms use standard cumulative
//! `_bucket{le="..."}` lines plus `_sum`/`_count`.

use crate::histo::{bucket_upper, HistoSnapshot, HISTO_BUCKETS};
use crate::registry::{MetricSnapshot, MetricValue, ScopeSnapshot, Snapshot};
use std::fmt::Write as _;

const PREFIX: &str = "oaf_";
const SEP: &str = "__";
const HWM: &str = "_hwm";

fn full_name(scope: &str, name: &str) -> String {
    format!("{PREFIX}{scope}{SEP}{name}")
}

/// Render a snapshot in Prometheus text exposition format.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for scope in &snap.scopes {
        for m in &scope.metrics {
            let fname = full_name(&scope.name, &m.name);
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {fname} counter");
                    let _ = writeln!(out, "{fname} {v}");
                }
                MetricValue::Gauge { value, max } => {
                    let _ = writeln!(out, "# TYPE {fname} gauge");
                    let _ = writeln!(out, "{fname} {value}");
                    let _ = writeln!(out, "# TYPE {fname}{HWM} gauge");
                    let _ = writeln!(out, "{fname}{HWM} {max}");
                }
                MetricValue::Histo(h) => {
                    let _ = writeln!(out, "# TYPE {fname} histogram");
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let _ = writeln!(out, "{fname}_bucket{{le=\"{}\"}} {cum}", bucket_upper(i));
                    }
                    let _ = writeln!(out, "{fname}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{fname}_sum {}", h.sum);
                    let _ = writeln!(out, "{fname}_count {}", h.count);
                    let _ = writeln!(out, "# TYPE {fname}{HWM} gauge");
                    let _ = writeln!(out, "{fname}{HWM} {}", h.max);
                }
            }
        }
    }
    out
}

/// Parse error for either text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "telemetry parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Split `oaf_<scope>__<name>` back into `(scope, name)`.
fn split_full(fname: &str) -> Result<(String, String), ParseError> {
    let body = match fname.strip_prefix(PREFIX) {
        Some(b) => b,
        None => return err(format!("metric without {PREFIX} prefix: {fname}")),
    };
    match body.rfind(SEP) {
        Some(pos) => Ok((body[..pos].to_string(), body[pos + SEP.len()..].to_string())),
        None => err(format!("metric without scope separator: {fname}")),
    }
}

fn bucket_index_for_upper(upper: u64) -> Result<usize, ParseError> {
    if upper == 0 {
        return Ok(0);
    }
    if upper == u64::MAX {
        return Ok(64);
    }
    let i = (upper + 1).trailing_zeros() as usize;
    if bucket_upper(i) == upper {
        Ok(i)
    } else {
        err(format!("le={upper} is not a log2 bucket bound"))
    }
}

/// Parse Prometheus text previously produced by [`prometheus_text`].
///
/// `_hwm` companion gauges fold back into the preceding gauge or
/// histogram they annotate; cumulative buckets de-cumulate.
pub fn from_prometheus_text(text: &str) -> Result<Snapshot, ParseError> {
    enum Kind {
        Counter,
        Gauge,
        Histogram,
    }
    let mut snap = Snapshot::default();
    let mut kinds: Vec<(String, Kind)> = Vec::new();
    fn kind_of<'v>(kinds: &'v [(String, Kind)], fname: &str) -> Option<&'v Kind> {
        kinds.iter().rev().find(|(n, _)| n == fname).map(|(_, k)| k)
    }

    // Helper to get (create) the scope slot.
    fn scope_mut<'a>(snap: &'a mut Snapshot, name: &str) -> &'a mut ScopeSnapshot {
        if let Some(pos) = snap.scopes.iter().position(|s| s.name == name) {
            return &mut snap.scopes[pos];
        }
        snap.scopes.push(ScopeSnapshot {
            name: name.to_string(),
            metrics: Vec::new(),
        });
        snap.scopes.last_mut().unwrap()
    }

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = match (it.next(), it.next()) {
                (Some(n), Some(k)) => (n, k),
                _ => return err(format!("malformed TYPE line: {line}")),
            };
            let kind = match kind {
                "counter" => Kind::Counter,
                "gauge" => Kind::Gauge,
                "histogram" => Kind::Histogram,
                other => return err(format!("unknown metric type {other}")),
            };
            kinds.push((name.to_string(), kind));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        // Sample line: `<name>[{le="x"}] <value>`.
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return err(format!("malformed sample line: {line}")),
        };

        // Histogram component lines.
        if let Some(bucket_head) = name_part
            .strip_suffix('}')
            .and_then(|s| s.split_once("_bucket{le=\""))
        {
            let (base, le) = bucket_head;
            let le = le.trim_end_matches('"');
            let (scope, name) = split_full(base)?;
            let cum: u64 = value_part
                .parse()
                .map_err(|_| ParseError(format!("bad bucket count: {line}")))?;
            let slot = histo_slot(scope_mut(&mut snap, &scope), &name)?;
            if le == "+Inf" {
                // Cumulative total — redundant with `_count`, ignore.
                continue;
            }
            let upper: u64 = le
                .parse()
                .map_err(|_| ParseError(format!("bad le bound: {line}")))?;
            let idx = bucket_index_for_upper(upper)?;
            // De-cumulate against everything recorded so far.
            let seen: u64 = slot.buckets.iter().sum();
            slot.buckets[idx] = cum.saturating_sub(seen);
            continue;
        }
        if let Some(base) = name_part.strip_suffix("_sum") {
            if matches!(kind_of(&kinds, base), Some(Kind::Histogram)) {
                let (scope, name) = split_full(base)?;
                let v: u64 = value_part
                    .parse()
                    .map_err(|_| ParseError(format!("bad sum: {line}")))?;
                histo_slot(scope_mut(&mut snap, &scope), &name)?.sum = v;
                continue;
            }
        }
        if let Some(base) = name_part.strip_suffix("_count") {
            if matches!(kind_of(&kinds, base), Some(Kind::Histogram)) {
                let (scope, name) = split_full(base)?;
                let v: u64 = value_part
                    .parse()
                    .map_err(|_| ParseError(format!("bad count: {line}")))?;
                histo_slot(scope_mut(&mut snap, &scope), &name)?.count = v;
                continue;
            }
        }

        // `_hwm` companions fold into the metric they annotate.
        if let Some(base) = name_part.strip_suffix(HWM) {
            let folded = match kind_of(&kinds, base) {
                Some(Kind::Gauge) | Some(Kind::Histogram) => {
                    let (scope, name) = split_full(base)?;
                    let scope = scope_mut(&mut snap, &scope);
                    match scope.metrics.iter_mut().find(|m| m.name == name) {
                        Some(MetricSnapshot {
                            value: MetricValue::Gauge { max, .. },
                            ..
                        }) => {
                            *max = value_part
                                .parse()
                                .map_err(|_| ParseError(format!("bad hwm: {line}")))?;
                            true
                        }
                        Some(MetricSnapshot {
                            value: MetricValue::Histo(h),
                            ..
                        }) => {
                            h.max = value_part
                                .parse()
                                .map_err(|_| ParseError(format!("bad hwm: {line}")))?;
                            true
                        }
                        _ => false,
                    }
                }
                _ => false,
            };
            if folded {
                continue;
            }
        }

        // Plain counter / gauge sample.
        let (scope, name) = split_full(name_part)?;
        let value = match kind_of(&kinds, name_part) {
            Some(Kind::Counter) => MetricValue::Counter(
                value_part
                    .parse()
                    .map_err(|_| ParseError(format!("bad counter: {line}")))?,
            ),
            Some(Kind::Gauge) => MetricValue::Gauge {
                value: value_part
                    .parse()
                    .map_err(|_| ParseError(format!("bad gauge: {line}")))?,
                max: 0,
            },
            Some(Kind::Histogram) => {
                return err(format!("bare sample for histogram metric: {line}"))
            }
            None => return err(format!("sample without TYPE declaration: {line}")),
        };
        let scope = scope_mut(&mut snap, &scope);
        match scope.metrics.iter_mut().find(|m| m.name == name) {
            Some(slot) => slot.value = value,
            None => scope.metrics.push(MetricSnapshot { name, value }),
        }
    }
    Ok(snap)
}

fn histo_slot<'a>(
    scope: &'a mut ScopeSnapshot,
    name: &str,
) -> Result<&'a mut HistoSnapshot, ParseError> {
    if !scope.metrics.iter().any(|m| m.name == name) {
        scope.metrics.push(MetricSnapshot {
            name: name.to_string(),
            value: MetricValue::Histo(HistoSnapshot::default()),
        });
    }
    match scope
        .metrics
        .iter_mut()
        .find(|m| m.name == name)
        .map(|m| &mut m.value)
    {
        Some(MetricValue::Histo(h)) => Ok(h),
        _ => err(format!("metric {name} is not a histogram")),
    }
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render a snapshot as a single-line JSON document. Histogram buckets
/// are sparse `[index, count]` pairs.
pub fn json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"scopes\":[");
    for (si, scope) in snap.scopes.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        json_escape(&scope.name, &mut out);
        out.push_str("\",\"metrics\":[");
        for (mi, m) in scope.metrics.iter().enumerate() {
            if mi > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            json_escape(&m.name, &mut out);
            out.push('"');
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"kind\":\"counter\",\"value\":{v}");
                }
                MetricValue::Gauge { value, max } => {
                    let _ = write!(out, ",\"kind\":\"gauge\",\"value\":{value},\"max\":{max}");
                }
                MetricValue::Histo(h) => {
                    let _ = write!(
                        out,
                        ",\"kind\":\"histo\",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                        h.count, h.sum, h.max
                    );
                    let mut first = true;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let _ = write!(out, "[{i},{c}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Minimal JSON value model — just enough to parse [`json`] output.
#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Object(Vec<(String, JsonVal)>),
    Array(Vec<JsonVal>),
    Str(String),
    Num(i128),
}

impl JsonVal {
    fn field<'a>(&'a self, key: &str) -> Result<&'a JsonVal, ParseError> {
        match self {
            JsonVal::Object(kv) => kv
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ParseError(format!("missing field {key}"))),
            _ => err("expected object"),
        }
    }

    fn str(&self) -> Result<&str, ParseError> {
        match self {
            JsonVal::Str(s) => Ok(s),
            _ => err("expected string"),
        }
    }

    fn u64(&self) -> Result<u64, ParseError> {
        match self {
            JsonVal::Num(n) if *n >= 0 && *n <= u64::MAX as i128 => Ok(*n as u64),
            _ => err("expected u64"),
        }
    }

    fn i64(&self) -> Result<i64, ParseError> {
        match self {
            JsonVal::Num(n) if *n >= i64::MIN as i128 && *n <= i64::MAX as i128 => Ok(*n as i64),
            _ => err("expected i64"),
        }
    }

    fn array(&self) -> Result<&[JsonVal], ParseError> {
        match self {
            JsonVal::Array(v) => Ok(v),
            _ => err("expected array"),
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, ParseError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| ParseError("unexpected end of JSON".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonVal, ParseError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.arr(),
            b'"' => Ok(JsonVal::Str(self.string()?)),
            b'-' | b'0'..=b'9' => self.number(),
            other => err(format!("unexpected byte '{}' in JSON", other as char)),
        }
    }

    fn object(&mut self) -> Result<JsonVal, ParseError> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonVal::Object(kv));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            kv.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonVal::Object(kv));
                }
                other => return err(format!("bad object separator '{}'", other as char)),
            }
        }
    }

    fn arr(&mut self) -> Result<JsonVal, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonVal::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonVal::Array(items));
                }
                other => return err(format!("bad array separator '{}'", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| ParseError("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| ParseError("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| ParseError("short \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| ParseError("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| ParseError("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| ParseError("bad \\u codepoint".into()))?,
                            );
                        }
                        other => return err(format!("unknown escape \\{}", other as char)),
                    }
                }
                other => {
                    // Collect the full UTF-8 sequence starting here.
                    let width = match other {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| ParseError("truncated UTF-8".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| ParseError("invalid UTF-8".into()))?,
                    );
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonVal, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError("bad number".into()))?;
        text.parse::<i128>()
            .map(JsonVal::Num)
            .map_err(|_| ParseError(format!("bad number: {text}")))
    }
}

/// Parse JSON previously produced by [`json`].
pub fn from_json(text: &str) -> Result<Snapshot, ParseError> {
    let mut p = JsonParser::new(text);
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return err("trailing bytes after JSON document");
    }
    let mut snap = Snapshot::default();
    for scope in root.field("scopes")?.array()? {
        let mut out = ScopeSnapshot {
            name: scope.field("name")?.str()?.to_string(),
            metrics: Vec::new(),
        };
        for m in scope.field("metrics")?.array()? {
            let name = m.field("name")?.str()?.to_string();
            let value = match m.field("kind")?.str()? {
                "counter" => MetricValue::Counter(m.field("value")?.u64()?),
                "gauge" => MetricValue::Gauge {
                    value: m.field("value")?.i64()?,
                    max: m.field("max")?.i64()?,
                },
                "histo" => {
                    let mut h = HistoSnapshot {
                        count: m.field("count")?.u64()?,
                        sum: m.field("sum")?.u64()?,
                        max: m.field("max")?.u64()?,
                        ..Default::default()
                    };
                    for pair in m.field("buckets")?.array()? {
                        let pair = pair.array()?;
                        if pair.len() != 2 {
                            return err("bucket pair must be [index, count]");
                        }
                        let idx = pair[0].u64()? as usize;
                        if idx >= HISTO_BUCKETS {
                            return err(format!("bucket index {idx} out of range"));
                        }
                        h.buckets[idx] = pair[1].u64()?;
                    }
                    MetricValue::Histo(h)
                }
                other => return err(format!("unknown metric kind {other}")),
            };
            out.metrics.push(MetricSnapshot { name, value });
        }
        snap.scopes.push(out);
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        let s = r.scope("transport.shm.client");
        s.counter("frames_sent").add(1234);
        let g = s.gauge("inflight");
        g.add(9);
        g.sub(7);
        let h = s.histo("lat_write");
        for v in [0u64, 1, 3, 900, 70_000, u64::MAX] {
            h.record(v);
        }
        let t = r.scope("target");
        t.counter("ops").add(42);
        r.snapshot()
    }

    #[test]
    fn prometheus_round_trip() {
        let snap = sample_snapshot();
        let text = prometheus_text(&snap);
        let parsed = from_prometheus_text(&text).expect("parse own output");
        assert_eq!(parsed, snap);
        // Idempotent at the text level too.
        assert_eq!(prometheus_text(&parsed), text);
    }

    #[test]
    fn json_round_trip() {
        let snap = sample_snapshot();
        let text = json(&snap);
        let parsed = from_json(&text).expect("parse own output");
        assert_eq!(parsed, snap);
        assert_eq!(json(&parsed), text);
    }

    #[test]
    fn prometheus_shape() {
        let snap = sample_snapshot();
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE oaf_transport_shm_client__frames_sent counter"));
        assert!(text.contains("oaf_transport_shm_client__frames_sent 1234"));
        assert!(text.contains("oaf_transport_shm_client__inflight 2"));
        assert!(text.contains("oaf_transport_shm_client__inflight_hwm 9"));
        assert!(text.contains("oaf_transport_shm_client__lat_write_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("oaf_transport_shm_client__lat_write_count 6"));
        assert!(text.contains("oaf_target__ops 42"));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("{\"scopes\":").is_err());
        assert!(from_json("[]").is_err());
        assert!(from_json("{\"scopes\":[]} x").is_err());
    }

    #[test]
    fn prometheus_rejects_garbage() {
        assert!(from_prometheus_text("no_prefix 1").is_err());
        assert!(from_prometheus_text("oaf_a__b 1").is_err()); // no TYPE line
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(from_prometheus_text(&prometheus_text(&snap)).unwrap(), snap);
        assert_eq!(from_json(&json(&snap)).unwrap(), snap);
    }
}
