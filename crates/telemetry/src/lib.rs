//! # oaf-telemetry — zero-allocation runtime observability
//!
//! The paper's adaptivity (workload-adaptive busy-polling, chunk-size
//! tuning) presupposes a runtime that can observe itself. This crate is
//! that substrate: metrics cheap enough to leave enabled on the data
//! plane permanently.
//!
//! Design rules:
//!
//! - **Record path: no heap, no locks.** [`Counter`]/[`Gauge`] are one
//!   or two relaxed atomic RMWs; [`Histo`] (65 fixed log2 buckets) is
//!   four. Handles are `Arc`-backed clones, so the same cell can live
//!   in a hot-path struct and a [`Registry`] scope simultaneously.
//! - **Registration is rare and locked; recording never is.** A
//!   [`Registry`] maps `scope -> name -> metric`; subsystems create
//!   their metric structs detached and `adopt_*` them into a scope at
//!   wiring time.
//! - **Snapshots are plain data.** [`Snapshot`] supports `delta`,
//!   quantiles ([`HistoSnapshot::p50`]/`p95`/`p99`, max), and lossless
//!   [`export`] to Prometheus text or JSON — both with parsers, so
//!   round-trips are testable without third-party deps.
//! - **A [`Reporter`] thread** turns a registry into a periodic
//!   cumulative + delta feed for logs or scrapes.
//!
//! ```
//! use oaf_telemetry::{Registry, export};
//!
//! let registry = Registry::new();
//! let scope = registry.scope("transport_shm_client");
//! let frames = scope.counter("frames_sent");
//! let lat = scope.histo("lat_write_ns");
//! frames.inc();            // hot path: one relaxed fetch_add
//! lat.record(1_250);       // hot path: four relaxed RMWs
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("transport_shm_client", "frames_sent"), 1);
//! let text = export::prometheus_text(&snap);
//! assert_eq!(export::from_prometheus_text(&text).unwrap(), snap);
//! ```

pub mod export;
mod histo;
mod metric;
mod registry;
mod reporter;

pub use histo::{bucket_index, bucket_upper, Histo, HistoSnapshot, LatencyHisto, HISTO_BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::{
    sanitize, Metric, MetricSnapshot, MetricValue, Registry, Scope, ScopeSnapshot, Snapshot,
};
pub use reporter::Reporter;
