//! Named metric registry.
//!
//! A [`Registry`] is a flat list of [`Scope`]s (one per subsystem /
//! connection), each holding named metrics. Registration takes a lock;
//! *recording* never does — handles returned by (or adopted into) a
//! scope are the same `Arc`-backed cells the hot path updates, so the
//! registry only matters at snapshot/export time.
//!
//! Names are sanitized to `[a-z0-9_]` at registration so that both
//! exporters round-trip losslessly (`scope__name` must split back
//! unambiguously on the *last* double underscore, see
//! [`crate::export`]).

use crate::histo::{Histo, HistoSnapshot};
use crate::metric::{Counter, Gauge};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Lowercase and map anything outside `[a-z0-9_]` to `_`, then collapse
/// runs of `_` so `__` stays reserved as the scope/name separator in
/// exported text.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut prev_us = false;
    for ch in name.chars() {
        let ch = if ch.is_ascii_alphanumeric() {
            ch.to_ascii_lowercase()
        } else {
            '_'
        };
        if ch == '_' {
            if prev_us {
                continue;
            }
            prev_us = true;
        } else {
            prev_us = false;
        }
        out.push(ch);
    }
    let trimmed = out.trim_matches('_');
    if trimmed.is_empty() {
        "unnamed".to_string()
    } else {
        trimmed.to_string()
    }
}

/// A registered metric handle.
#[derive(Clone, Debug)]
pub enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

struct ScopeCell {
    name: String,
    metrics: Mutex<Vec<(String, Metric)>>,
}

/// Clonable handle to one named scope inside a registry.
#[derive(Clone)]
pub struct Scope {
    inner: Arc<ScopeCell>,
}

impl Scope {
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    fn find(&self, name: &str) -> Option<Metric> {
        lock(&self.inner.metrics)
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m.clone())
    }

    fn insert(&self, name: String, metric: Metric) {
        let mut metrics = lock(&self.inner.metrics);
        if let Some(slot) = metrics.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = metric;
        } else {
            metrics.push((name, metric));
        }
    }

    /// Find-or-create a counter under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let name = sanitize(name);
        if let Some(Metric::Counter(c)) = self.find(&name) {
            return c;
        }
        let c = Counter::new();
        self.insert(name, Metric::Counter(c.clone()));
        c
    }

    /// Find-or-create a gauge under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let name = sanitize(name);
        if let Some(Metric::Gauge(g)) = self.find(&name) {
            return g;
        }
        let g = Gauge::new();
        self.insert(name, Metric::Gauge(g.clone()));
        g
    }

    /// Find-or-create a histogram under `name`.
    pub fn histo(&self, name: &str) -> Histo {
        let name = sanitize(name);
        if let Some(Metric::Histo(h)) = self.find(&name) {
            return h;
        }
        let h = Histo::new();
        self.insert(name, Metric::Histo(h.clone()));
        h
    }

    /// Adopt an existing (possibly detached) handle under `name`. Used
    /// by subsystems that create their metric structs before any
    /// registry exists, then publish them at wiring time.
    pub fn adopt_counter(&self, name: &str, c: &Counter) {
        self.insert(sanitize(name), Metric::Counter(c.clone()));
    }

    pub fn adopt_gauge(&self, name: &str, g: &Gauge) {
        self.insert(sanitize(name), Metric::Gauge(g.clone()));
    }

    pub fn adopt_histo(&self, name: &str, h: &Histo) {
        self.insert(sanitize(name), Metric::Histo(h.clone()));
    }

    fn snapshot(&self) -> ScopeSnapshot {
        let metrics = lock(&self.inner.metrics);
        ScopeSnapshot {
            name: self.inner.name.clone(),
            metrics: metrics
                .iter()
                .map(|(n, m)| MetricSnapshot {
                    name: n.clone(),
                    value: match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge {
                            value: g.get(),
                            max: g.hwm(),
                        },
                        Metric::Histo(h) => MetricValue::Histo(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// Top-level metric registry. Cheap to share via `Arc<Registry>`.
#[derive(Default)]
pub struct Registry {
    scopes: Mutex<Vec<Scope>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Find-or-create the scope named `name` (sanitized).
    pub fn scope(&self, name: &str) -> Scope {
        let name = sanitize(name);
        let mut scopes = lock(&self.scopes);
        if let Some(s) = scopes.iter().find(|s| s.inner.name == name) {
            return s.clone();
        }
        let s = Scope {
            inner: Arc::new(ScopeCell {
                name,
                metrics: Mutex::new(Vec::new()),
            }),
        };
        scopes.push(s.clone());
        s
    }

    /// Adopts every metric of `other` into this registry under
    /// `{prefix}.{scope}` scopes (sanitized, so `shard0.target_conn1`
    /// becomes `shard0_target_conn1`).
    ///
    /// The *handles* are adopted, not the values: after a merge the
    /// parent registry's snapshots observe everything the other
    /// registry's threads keep recording, with no further
    /// synchronization. This is how a sharded runtime exposes one
    /// merged view over its per-shard registries — each shard records
    /// into its own registry (no cross-shard locks), the parent merges
    /// once at wiring time. Scopes `other` creates *after* the merge
    /// are not seen; merge again to pick them up.
    pub fn merge(&self, prefix: &str, other: &Registry) {
        let src_scopes: Vec<Scope> = lock(&other.scopes).clone();
        for src in src_scopes {
            let dst = self.scope(&format!("{prefix}.{}", src.name()));
            let metrics: Vec<(String, Metric)> = lock(&src.inner.metrics).clone();
            for (name, metric) in metrics {
                // Names were sanitized when `other` registered them.
                dst.insert(name, metric);
            }
        }
    }

    pub fn scope_names(&self) -> Vec<String> {
        lock(&self.scopes)
            .iter()
            .map(|s| s.inner.name.clone())
            .collect()
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let scopes = lock(&self.scopes);
        Snapshot {
            scopes: scopes.iter().map(|s| s.snapshot()).collect(),
        }
    }
}

/// Exported value of one metric.
///
/// Histogram snapshots dominate the size, but snapshots live on the
/// read side only (one short-lived `Vec` per scrape), so flat storage
/// beats a per-histogram box.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge { value: i64, max: i64 },
    Histo(HistoSnapshot),
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    pub name: String,
    pub value: MetricValue,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScopeSnapshot {
    pub name: String,
    pub metrics: Vec<MetricSnapshot>,
}

/// Point-in-time copy of a whole registry — plain data, safe to ship
/// across threads, diff, or export.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub scopes: Vec<ScopeSnapshot>,
}

impl Snapshot {
    /// Look up one metric by scope and name.
    pub fn get(&self, scope: &str, name: &str) -> Option<&MetricValue> {
        self.scopes
            .iter()
            .find(|s| s.name == scope)?
            .metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// Counter value, or 0 when absent / not a counter. Convenient in
    /// tests and reports.
    pub fn counter(&self, scope: &str, name: &str) -> u64 {
        match self.get(scope, name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    pub fn gauge(&self, scope: &str, name: &str) -> Option<(i64, i64)> {
        match self.get(scope, name) {
            Some(MetricValue::Gauge { value, max }) => Some((*value, *max)),
            _ => None,
        }
    }

    pub fn histo(&self, scope: &str, name: &str) -> Option<&HistoSnapshot> {
        match self.get(scope, name) {
            Some(MetricValue::Histo(h)) => Some(h),
            _ => None,
        }
    }

    /// Change since `earlier`, matched by scope/metric name. Counters
    /// and histograms subtract; gauges keep their current value and
    /// lifetime high-water mark. Metrics absent from `earlier` pass
    /// through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            scopes: self
                .scopes
                .iter()
                .map(|s| {
                    let old = earlier.scopes.iter().find(|o| o.name == s.name);
                    ScopeSnapshot {
                        name: s.name.clone(),
                        metrics: s
                            .metrics
                            .iter()
                            .map(|m| {
                                let prev =
                                    old.and_then(|o| o.metrics.iter().find(|p| p.name == m.name));
                                MetricSnapshot {
                                    name: m.name.clone(),
                                    value: delta_value(&m.value, prev.map(|p| &p.value)),
                                }
                            })
                            .collect(),
                    }
                })
                .collect(),
        }
    }
}

fn delta_value(now: &MetricValue, prev: Option<&MetricValue>) -> MetricValue {
    match (now, prev) {
        (MetricValue::Counter(n), Some(MetricValue::Counter(p))) => {
            MetricValue::Counter(n.saturating_sub(*p))
        }
        (MetricValue::Histo(n), Some(MetricValue::Histo(p))) => MetricValue::Histo(n.delta(p)),
        _ => now.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("transport.shm.client"), "transport_shm_client");
        assert_eq!(sanitize("Frames Sent"), "frames_sent");
        assert_eq!(sanitize("a__b"), "a_b");
        assert_eq!(sanitize("__"), "unnamed");
        assert_eq!(sanitize("ok_name"), "ok_name");
    }

    #[test]
    fn scope_find_or_create() {
        let r = Registry::new();
        let c1 = r.scope("client").counter("ops");
        let c2 = r.scope("client").counter("ops");
        assert!(c1.same_as(&c2));
        c1.inc();
        assert_eq!(r.snapshot().counter("client", "ops"), 1);
    }

    #[test]
    fn adopt_links_detached_handle() {
        let detached = Counter::new();
        detached.add(7);
        let r = Registry::new();
        r.scope("ring").adopt_counter("full_events", &detached);
        detached.inc();
        assert_eq!(r.snapshot().counter("ring", "full_events"), 8);
    }

    #[test]
    fn snapshot_delta() {
        let r = Registry::new();
        let s = r.scope("s");
        let c = s.counter("c");
        let g = s.gauge("g");
        let h = s.histo("h");
        c.add(10);
        g.set(5);
        h.record(3);
        let first = r.snapshot();
        c.add(2);
        g.set(1);
        h.record(9);
        let d = r.snapshot().delta(&first);
        assert_eq!(d.counter("s", "c"), 2);
        assert_eq!(d.gauge("s", "g"), Some((1, 5)));
        let hd = d.histo("s", "h").unwrap();
        assert_eq!(hd.count, 1);
        assert_eq!(hd.sum, 9);
        assert_eq!(hd.max, 9);
    }

    #[test]
    fn merge_adopts_live_handles_under_prefix() {
        let parent = Registry::new();
        let shard = Registry::new();
        let ops = shard.scope("target_conn0").counter("ops");
        let depth = shard.scope("target_conn0").gauge("queue_depth");
        let lat = shard.scope("client").histo("lat");
        ops.add(3);
        parent.merge("shard0", &shard);
        // Values recorded *after* the merge flow through: the handles
        // are shared, not copied.
        ops.add(4);
        depth.set(2);
        lat.record(17);
        let snap = parent.snapshot();
        assert_eq!(snap.counter("shard0_target_conn0", "ops"), 7);
        assert_eq!(
            snap.gauge("shard0_target_conn0", "queue_depth"),
            Some((2, 2))
        );
        assert_eq!(snap.histo("shard0_client", "lat").unwrap().count, 1);
        // The shard's own view is untouched.
        assert_eq!(shard.snapshot().counter("target_conn0", "ops"), 7);
    }

    #[test]
    fn merge_two_shards_stay_distinct() {
        let parent = Registry::new();
        let s0 = Registry::new();
        let s1 = Registry::new();
        s0.scope("t").counter("ops").add(10);
        s1.scope("t").counter("ops").add(20);
        parent.merge("shard0", &s0);
        parent.merge("shard1", &s1);
        let snap = parent.snapshot();
        assert_eq!(snap.counter("shard0_t", "ops"), 10);
        assert_eq!(snap.counter("shard1_t", "ops"), 20);
    }

    #[test]
    fn merged_snapshot_round_trips_through_prometheus() {
        // Satellite check: the merged (prefixed) view must survive the
        // text exporter losslessly — prefixing cannot produce names the
        // parser mis-splits.
        let parent = Registry::new();
        for n in 0..2 {
            let shard = Registry::new();
            let s = shard.scope(format!("target_conn{n}").as_str());
            s.counter("ops").add(100 + n);
            s.gauge("inflight").set(n as i64);
            s.histo("lat").record(7 * (n + 1));
            parent.merge(&format!("shard{n}"), &shard);
        }
        let snap = parent.snapshot();
        let text = crate::export::prometheus_text(&snap);
        let parsed = crate::export::from_prometheus_text(&text).expect("parse own output");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn scope_names_ordered() {
        let r = Registry::new();
        r.scope("b");
        r.scope("a");
        r.scope("b");
        assert_eq!(r.scope_names(), vec!["b".to_string(), "a".to_string()]);
    }
}
