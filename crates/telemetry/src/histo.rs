//! Fixed-bucket log2 latency histogram.
//!
//! 65 power-of-two buckets cover the full `u64` range with no heap and
//! no locks: bucket 0 holds the value 0, bucket `i >= 1` holds values in
//! `[2^(i-1), 2^i - 1]`. Recording is four relaxed atomic RMWs (bucket,
//! count, sum, max) — no allocation, no branching beyond the bucket
//! index computation, safe from any thread.
//!
//! Quantiles are estimated from a [`HistoSnapshot`] as the *upper bound*
//! of the bucket containing the requested rank, clamped to the observed
//! maximum. For a true quantile value `t >= 1` the estimate `e`
//! therefore satisfies `t <= e < 2t`: the log2 scheme trades at most 2x
//! relative error for a record path cheap enough to leave enabled in
//! production.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: value 0, plus one bucket per power of two.
pub const HISTO_BUCKETS: usize = 65;

/// Bucket index for a recorded value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

#[derive(Debug)]
struct HistoCell {
    buckets: [AtomicU64; HISTO_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Lock-free log2 histogram handle. Clones share the same cells, so a
/// histogram can be recorded into from a hot path while a registry
/// snapshot reads it from another thread.
#[derive(Clone, Debug)]
pub struct Histo {
    inner: Arc<HistoCell>,
}

/// The paper-facing alias: every latency distribution in the runtime is
/// one of these.
pub type LatencyHisto = Histo;

impl Default for Histo {
    fn default() -> Self {
        Histo {
            inner: Arc::new(HistoCell {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. Zero allocations, relaxed atomics only.
    #[inline]
    pub fn record(&self, v: u64) {
        let cell = &*self.inner;
        cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
        cell.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_nanos(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn same_as(&self, other: &Histo) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Consistent-enough point-in-time copy. Concurrent recorders may
    /// leave `count`/`sum`/buckets skewed by in-flight updates; the skew
    /// is bounded by the number of racing `record` calls, which is the
    /// usual statistical-counter contract.
    pub fn snapshot(&self) -> HistoSnapshot {
        let cell = &*self.inner;
        HistoSnapshot {
            buckets: std::array::from_fn(|i| cell.buckets[i].load(Ordering::Relaxed)),
            count: cell.count.load(Ordering::Relaxed),
            sum: cell.sum.load(Ordering::Relaxed),
            max: cell.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a histogram, used for quantile math, deltas, and
/// export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistoSnapshot {
    pub buckets: [u64; HISTO_BUCKETS],
    pub count: u64,
    pub sum: u64,
    /// Lifetime maximum — never reset by `delta`.
    pub max: u64,
}

impl Default for HistoSnapshot {
    fn default() -> Self {
        HistoSnapshot {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistoSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound quantile estimate (see module docs for the bracket
    /// guarantee). `p` is clamped to `[0, 1]`; an empty histogram
    /// returns 0.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the order statistic a sorted-vec reference would
        // return: index floor(p * (n - 1)), i.e. 1-based rank + 1.
        let rank = (p.clamp(0.0, 1.0) * (self.count - 1) as f64).floor() as u64 + 1;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Observations since `earlier`. Buckets, count and sum subtract;
    /// `max` stays the lifetime maximum (a high-water mark cannot be
    /// un-observed).
    pub fn delta(&self, earlier: &HistoSnapshot) -> HistoSnapshot {
        HistoSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTO_BUCKETS {
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(hi), i, "upper bound stays in bucket {i}");
            if i > 0 {
                assert_eq!(bucket_index(bucket_upper(i - 1).wrapping_add(1)), i);
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histo::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        // p100 clamps to the observed max, not the bucket bound (1023).
        assert_eq!(s.quantile(1.0), 1000);
        // p50 -> rank 3 -> value 3 lives in bucket [2,3] -> estimate 3.
        assert_eq!(s.p50(), 3);
        assert_eq!(s.mean(), 1106.0 / 5.0);
    }

    #[test]
    fn empty_histogram() {
        let s = Histo::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn delta_subtracts_but_keeps_max() {
        let h = Histo::new();
        h.record(8);
        let first = h.snapshot();
        h.record(2);
        let d = h.snapshot().delta(&first);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 2);
        assert_eq!(d.max, 8);
        assert_eq!(d.buckets[bucket_index(2)], 1);
        assert_eq!(d.buckets[bucket_index(8)], 0);
    }

    #[test]
    fn zero_values_count() {
        let h = Histo::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.buckets[0], 2);
    }
}
