//! Periodic background reporter.
//!
//! Snapshots a shared [`Registry`] on a fixed interval and hands the
//! caller both the cumulative snapshot and the delta since the previous
//! tick. The sink runs on the reporter thread, so it may format/print
//! freely without perturbing the data plane.

use crate::registry::{Registry, Snapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Handle to a running reporter thread. Stops (and joins) on `stop()`
/// or drop.
pub struct Reporter {
    stop: Arc<AtomicBool>,
    join: Option<thread::JoinHandle<()>>,
}

impl Reporter {
    /// Spawn a reporter that calls `sink(cumulative, delta)` every
    /// `interval`. The first tick's delta equals the cumulative
    /// snapshot. The interval is polled in small slices so `stop()`
    /// returns promptly even for long intervals.
    pub fn spawn<F>(registry: Arc<Registry>, interval: Duration, mut sink: F) -> Reporter
    where
        F: FnMut(&Snapshot, &Snapshot) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let join = thread::Builder::new()
            .name("oaf-telemetry-reporter".into())
            .spawn(move || {
                let slice = interval
                    .min(Duration::from_millis(20))
                    .max(Duration::from_millis(1));
                let mut prev = Snapshot::default();
                let mut elapsed = Duration::ZERO;
                loop {
                    if stop_flag.load(Ordering::Acquire) {
                        return;
                    }
                    thread::sleep(slice);
                    elapsed += slice;
                    if elapsed < interval {
                        continue;
                    }
                    elapsed = Duration::ZERO;
                    let now = registry.snapshot();
                    let delta = now.delta(&prev);
                    sink(&now, &delta);
                    prev = now;
                }
            })
            .expect("spawn telemetry reporter");
        Reporter {
            stop,
            join: Some(join),
        }
    }

    /// Signal the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn reporter_ticks_and_stops() {
        let registry = Arc::new(Registry::new());
        let c = registry.scope("s").counter("ticks");
        let seen: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let rep = Reporter::spawn(
            registry.clone(),
            Duration::from_millis(5),
            move |cum, delta| {
                sink_seen
                    .lock()
                    .unwrap()
                    .push((cum.counter("s", "ticks"), delta.counter("s", "ticks")));
            },
        );
        for _ in 0..50 {
            c.inc();
            thread::sleep(Duration::from_millis(1));
        }
        rep.stop();
        let seen = seen.lock().unwrap();
        assert!(!seen.is_empty(), "reporter never ticked");
        // Deltas must sum to the last cumulative value observed.
        let total: u64 = seen.iter().map(|(_, d)| d).sum();
        let last = seen.last().unwrap().0;
        assert_eq!(total, last);
    }

    #[test]
    fn drop_stops_thread() {
        let registry = Arc::new(Registry::new());
        let rep = Reporter::spawn(registry, Duration::from_millis(1), |_, _| {});
        thread::sleep(Duration::from_millis(5));
        drop(rep); // must not hang
    }
}
