//! Concurrency soundness: many threads hammering the same metric handles
//! must lose no updates — the whole point of the relaxed-atomic design.

use oaf_telemetry::{Counter, Gauge, Histo, Registry};

const THREADS: usize = 8;
const PER_THREAD: u64 = 50_000;

#[test]
fn counter_and_histo_lose_nothing_under_contention() {
    let counter = Counter::new();
    let histo = Histo::new();
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = counter.clone();
            let histo = histo.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    // Values spread across many buckets so bucket counts,
                    // count, sum, and max all see real contention.
                    histo.record((t as u64 + 1) * (i + 1));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), total);
    let snap = histo.snapshot();
    assert_eq!(snap.count, total);
    assert_eq!(snap.buckets.iter().sum::<u64>(), total);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (t + 1) * (1..=PER_THREAD).sum::<u64>())
        .sum();
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.max, THREADS as u64 * PER_THREAD);
}

#[test]
fn gauge_hwm_is_monotone_under_contention() {
    let gauge = Gauge::new();
    let threads: Vec<_> = (0..THREADS)
        .map(|_| {
            let gauge = gauge.clone();
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    gauge.add(1);
                    gauge.sub(1);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(gauge.get(), 0);
    let hwm = gauge.hwm();
    assert!(
        hwm >= 1 && hwm <= THREADS as i64,
        "high-water {hwm} outside [1, {THREADS}]"
    );
}

#[test]
fn snapshots_taken_mid_flight_are_internally_sane() {
    let registry = Registry::new();
    let scope = registry.scope("hammer");
    let counter = scope.counter("ops");
    let histo = scope.histo("lat");
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    let writers: Vec<_> = (0..4)
        .map(|_| {
            let counter = counter.clone();
            let histo = histo.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    counter.inc();
                    histo.record(n % 1024);
                    n += 1;
                }
                n
            })
        })
        .collect();

    // Snapshot repeatedly while the writers run; each snapshot must be
    // monotone in count vs. the previous one and never see a histogram
    // whose bucket total exceeds its count-at-or-after read.
    let mut last = 0u64;
    for _ in 0..200 {
        let snap = registry.snapshot();
        let ops = snap.counter("hammer", "ops");
        assert!(ops >= last, "counter went backwards: {ops} < {last}");
        last = ops;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("hammer", "ops"), total);
    assert_eq!(snap.histo("hammer", "lat").unwrap().count, total);
}
