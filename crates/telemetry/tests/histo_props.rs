//! Property tests for the log2 latency histogram.
//!
//! The histogram trades per-value precision for a fixed footprint and a
//! lock-free record path; the contract it keeps is the *bracket
//! property*: every quantile estimate `q` for a true (sorted-vec)
//! quantile `t` satisfies `t <= q <= 2t` — the estimate never
//! understates and overstates by at most one power of two.

use oaf_telemetry::LatencyHisto;
use proptest::prelude::*;

/// Reference quantile: nearest-rank on a sorted copy, with the same rank
/// convention the histogram uses (`floor(p * (n-1))`, 0-based).
fn reference_quantile(sorted: &[u64], p: f64) -> u64 {
    let idx = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).floor() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

proptest! {
    #[test]
    fn quantiles_bracket_sorted_vec_reference(
        values in proptest::collection::vec(0u64..2_000_000_000, 1..400),
        p in 0.0f64..1.0,
    ) {
        let h = LatencyHisto::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);

        let t = reference_quantile(&sorted, p);
        let q = snap.quantile(p);
        prop_assert!(q >= t, "estimate {} understates true quantile {}", q, t);
        prop_assert!(
            q <= t.saturating_mul(2).max(1),
            "estimate {} more than 2x true quantile {}",
            q,
            t
        );

        // The named quantiles obey the same bracket.
        for (est, pp) in [(snap.p50(), 0.50), (snap.p95(), 0.95), (snap.p99(), 0.99)] {
            let t = reference_quantile(&sorted, pp);
            prop_assert!(est >= t && est <= t.saturating_mul(2).max(1));
        }
    }

    #[test]
    fn extremes_are_exactly_bracketed(
        // Range chosen so even 100 maximal values cannot overflow the
        // exact `sum` check below.
        values in proptest::collection::vec(1u64..u64::MAX / 256, 1..100),
    ) {
        let h = LatencyHisto::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        // quantile(1.0) is clamped to the exact observed maximum.
        prop_assert_eq!(snap.quantile(1.0), *values.iter().max().unwrap());
        // sum and mean are exact, not bucketed.
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
    }
}
