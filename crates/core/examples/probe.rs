//! Calibration probe: run one simulated workload and print where the
//! time went — per-resource utilizations, service breakdown, percentiles.
//!
//! Useful when adjusting `SimParams`: the figure harness tells you *that*
//! a shape broke; this tells you *which* resource moved.
//!
//! ```text
//! cargo run -p oaf-core --release --example probe -- [fabric] [io_kib] [streams] [qd]
//!   fabric ∈ tcp10 | tcp25 | tcp100 | rdma | roce | oaf
//! cargo run -p oaf-core --release --example probe -- tcp25 128 4 128
//! ```

use oaf_core::sim::{run_probed, ExperimentSpec, FabricKind, ShmVariant, WorkloadSpec};
use oaf_simnet::time::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fabric = match args.first().map(String::as_str).unwrap_or("oaf") {
        "tcp10" => FabricKind::TcpStock { gbps: 10.0 },
        "tcp25" => FabricKind::TcpStock { gbps: 25.0 },
        "tcp100" => FabricKind::TcpStock { gbps: 100.0 },
        "rdma" => FabricKind::RdmaIb,
        "roce" => FabricKind::Roce,
        "oaf" => FabricKind::Shm {
            variant: ShmVariant::ZeroCopy,
        },
        other => {
            eprintln!("unknown fabric '{other}' (tcp10|tcp25|tcp100|rdma|roce|oaf)");
            std::process::exit(2);
        }
    };
    let io_kib: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    let streams: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let qd: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(128);

    let wl = WorkloadSpec::new(io_kib * 1024, 1.0)
        .with_queue_depth(qd)
        .with_duration(SimDuration::from_millis(400));
    let spec = ExperimentSpec::uniform(fabric, streams, wl);
    let probe = run_probed(&spec);
    let m = &probe.metrics;

    println!("{fabric:?}: {streams} stream(s), {io_kib} KiB seq read, QD{qd}");
    println!(
        "  bandwidth {:.0} MiB/s over {} ops",
        m.bandwidth_mib(),
        m.total_ops()
    );
    if let Some(p) = m.percentiles() {
        println!(
            "  latency (µs): p50 {:.0} | p99 {:.0} | p99.99 {:.0}",
            p.p50, p.p99, p.p9999
        );
    }
    let b = m.reads.mean_breakdown();
    println!(
        "  service breakdown (µs): io {:.1} | comm {:.1} | other {:.1}",
        b.io_us, b.comm_us, b.other_us
    );
    probe.print_utilization();
}
