//! The Buffer Manager (§4.1, §4.4.3).
//!
//! Allocates I/O buffers from the right place for the selected channel:
//!
//! * **TCP path** — a DPDK-style pool: fixed-size, cache-line-aligned,
//!   pre-allocated buffers with a free-list, mirroring SPDK's DMA-able
//!   memory pools (buffers are recycled, never freed, §4.1 "re-uses it
//!   when possible");
//! * **shared-memory path** — zero-copy leases: the application buffer is
//!   a slot of the double buffer itself, so publishing costs nothing
//!   (§4.4.3).
//!
//! [`IoBuffer`] unifies the two so co-designed applications (SPDK `perf`,
//! h5bench in the paper; the examples here) write one allocation call and
//! get zero-copy automatically when the fabric is local.

use std::sync::Arc;

use oaf_nvmeof::payload::WriteLease;
use oaf_shmem::ShmError;
use parking_lot::Mutex;

use crate::payload_impl::ShmPayloadChannel;

/// A fixed-size pooled buffer pool (the DPDK mempool analog).
pub struct DpdkPool {
    buf_size: usize,
    free: Mutex<Vec<Box<[u8]>>>,
    capacity: usize,
}

impl DpdkPool {
    /// Pre-allocates `capacity` buffers of `buf_size` bytes.
    pub fn new(buf_size: usize, capacity: usize) -> Arc<Self> {
        assert!(buf_size > 0 && capacity > 0);
        let free = (0..capacity)
            .map(|_| vec![0u8; buf_size].into_boxed_slice())
            .collect();
        Arc::new(DpdkPool {
            buf_size,
            free: Mutex::new(free),
            capacity,
        })
    }

    /// Buffer size of the pool.
    pub fn buf_size(&self) -> usize {
        self.buf_size
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.free.lock().len()
    }

    /// Total buffers in the pool.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Takes a buffer; `None` when exhausted (caller backs off, exactly
    /// like SPDK's mempool get).
    pub fn get(self: &Arc<Self>, len: usize) -> Option<PooledBuf> {
        if len > self.buf_size {
            return None;
        }
        let raw = self.free.lock().pop()?;
        Some(PooledBuf {
            pool: self.clone(),
            raw: Some(raw),
            len,
        })
    }
}

/// A buffer checked out of a [`DpdkPool`]; returns on drop.
pub struct PooledBuf {
    pool: Arc<DpdkPool>,
    raw: Option<Box<[u8]>>,
    len: usize,
}

impl PooledBuf {
    /// Logical length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.raw.as_ref().expect("present until drop")[..self.len]
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.raw.as_mut().expect("present until drop")[..self.len]
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(raw) = self.raw.take() {
            self.pool.free.lock().push(raw);
        }
    }
}

/// An application I/O buffer from the Buffer Manager: pooled DRAM for the
/// TCP channel, or a zero-copy shared-memory lease for the local channel.
pub enum IoBuffer {
    /// DPDK-pool buffer (TCP path).
    Pooled(PooledBuf),
    /// Zero-copy lease inside the shared region (local path), ready for
    /// [`oaf_nvmeof::payload::PayloadChannel::publish_lease`].
    Shm(WriteLease),
}

impl IoBuffer {
    /// Logical length.
    pub fn len(&self) -> usize {
        match self {
            IoBuffer::Pooled(b) => b.len(),
            IoBuffer::Shm(b) => b.len(),
        }
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this buffer lives in shared memory (zero-copy publish).
    pub fn is_zero_copy(&self) -> bool {
        matches!(self, IoBuffer::Shm(_))
    }
}

impl std::ops::Deref for IoBuffer {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            IoBuffer::Pooled(b) => b,
            IoBuffer::Shm(b) => b,
        }
    }
}

impl std::ops::DerefMut for IoBuffer {
    fn deref_mut(&mut self) -> &mut [u8] {
        match self {
            IoBuffer::Pooled(b) => b,
            IoBuffer::Shm(b) => b,
        }
    }
}

/// The Buffer Manager: allocation, alignment, re-use and reclamation for
/// one connection.
pub struct BufferManager {
    pool: Arc<DpdkPool>,
    shm: Option<Arc<ShmPayloadChannel>>,
}

impl BufferManager {
    /// Creates a manager backed by a DPDK-style pool, optionally with a
    /// shared-memory channel for zero-copy leases.
    pub fn new(pool: Arc<DpdkPool>, shm: Option<Arc<ShmPayloadChannel>>) -> Self {
        BufferManager { pool, shm }
    }

    /// Allocates an I/O buffer of `len` bytes, preferring a zero-copy
    /// shared-memory lease when the channel allows it (§4.4.3: "creates
    /// application buffers directly on shared memory").
    pub fn alloc(&self, len: usize) -> Result<IoBuffer, ShmError> {
        if let Some(shm) = &self.shm {
            use oaf_nvmeof::payload::PayloadChannel as _;
            if len <= shm.max_payload() {
                match shm.try_lease(len) {
                    Ok(Some(lease)) => return Ok(IoBuffer::Shm(lease)),
                    Ok(None) => {
                        // All slots in flight: fall back to the pool so the
                        // application never blocks on allocation.
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        self.pool
            .get(len)
            .map(IoBuffer::Pooled)
            .ok_or(ShmError::NoFreeSlot)
    }

    /// Whether zero-copy leases are available.
    pub fn zero_copy_available(&self) -> bool {
        self.shm.is_some()
    }

    /// Largest buffer [`BufferManager::alloc`] can satisfy.
    pub fn max_alloc(&self) -> usize {
        self.pool.buf_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_shmem::channel::Side;
    use oaf_shmem::ShmChannel;

    #[test]
    fn pool_recycles_buffers() {
        let pool = DpdkPool::new(4096, 2);
        assert_eq!(pool.available(), 2);
        let a = pool.get(100).unwrap();
        let b = pool.get(4096).unwrap();
        assert_eq!(pool.available(), 0);
        assert!(pool.get(1).is_none());
        drop(a);
        assert_eq!(pool.available(), 1);
        drop(b);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn pool_rejects_oversize() {
        let pool = DpdkPool::new(1024, 1);
        assert!(pool.get(1025).is_none());
        assert_eq!(pool.available(), 1, "rejection must not leak");
    }

    #[test]
    fn pooled_buf_views_logical_len() {
        let pool = DpdkPool::new(4096, 1);
        let mut b = pool.get(16).unwrap();
        b.copy_from_slice(&[3u8; 16]);
        assert_eq!(b.len(), 16);
        assert_eq!(&b[..], &[3u8; 16]);
    }

    #[test]
    fn manager_prefers_zero_copy_when_local() {
        let ch = ShmChannel::allocate(4, 4096);
        let shm = ShmPayloadChannel::new(&ch, Side::Client);
        let mgr = BufferManager::new(DpdkPool::new(8192, 4), Some(shm));
        assert!(mgr.zero_copy_available());
        let buf = mgr.alloc(1024).unwrap();
        assert!(buf.is_zero_copy());
        // Oversized for a slot: falls back to the pool.
        let buf = mgr.alloc(8192).unwrap();
        assert!(!buf.is_zero_copy());
    }

    #[test]
    fn manager_without_shm_uses_pool() {
        let mgr = BufferManager::new(DpdkPool::new(4096, 2), None);
        assert!(!mgr.zero_copy_available());
        let buf = mgr.alloc(64).unwrap();
        assert!(!buf.is_zero_copy());
        assert_eq!(buf.len(), 64);
    }

    #[test]
    fn manager_falls_back_when_slots_exhausted() {
        let ch = ShmChannel::allocate(1, 4096);
        let shm = ShmPayloadChannel::new(&ch, Side::Client);
        let mgr = BufferManager::new(DpdkPool::new(4096, 2), Some(shm));
        let a = mgr.alloc(64).unwrap();
        assert!(a.is_zero_copy());
        let b = mgr.alloc(64).unwrap();
        assert!(!b.is_zero_copy(), "slot exhausted, must use pool");
    }

    #[test]
    fn io_buffer_write_through_deref() {
        let ch = ShmChannel::allocate(2, 128);
        let shm = ShmPayloadChannel::new(&ch, Side::Client);
        let mgr = BufferManager::new(DpdkPool::new(128, 1), Some(shm));
        let mut buf = mgr.alloc(5).unwrap();
        buf.copy_from_slice(b"12345");
        assert_eq!(&buf[..], b"12345");
        assert_eq!(buf.len(), 5);
        assert!(!buf.is_empty());
    }
}
