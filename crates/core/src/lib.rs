//! NVMe-oAF: the Adaptive Fabric (the paper's primary contribution).
//!
//! NVMe-over-Adaptive-Fabric accelerates NVMe-oF by *adaptively and
//! transparently* combining two channels: an optimized shared-memory data
//! path for co-located client/target pairs, and an optimized TCP path for
//! everything else. The control plane always runs over the existing
//! NVMe/TCP connection; only bulk payloads switch fabrics.
//!
//! The three architectural components of Fig. 4:
//!
//! * [`conn`] — the **Connection Manager**: TCP handshake, adaptive-fabric
//!   capability negotiation via ICReq/ICResp, AF endpoint objects, and
//!   resource reclamation (§4.1);
//! * [`buf`] — the **Buffer Manager**: DPDK-style pooled buffers for the
//!   TCP path, shared-memory slots and zero-copy leases for the local
//!   path (§4.1, §4.4.3);
//! * [`locality`] — **Locality Awareness**: the helper-process hot-plug
//!   protocol over a pre-reserved flag page, and the per-client isolated
//!   region registry (§4.2).
//!
//! Channel optimizations:
//!
//! * [`flow`] — shared-memory flow control: in-capsule semantics for every
//!   I/O size, eliminating two of four control messages per write (§4.4.2);
//! * [`tcp_opt`] — TCP-channel optimizations: application-level chunk-size
//!   selection (Fig. 9) and workload-adaptive busy polling (Fig. 10, §4.5);
//! * [`payload_impl`] — the lock-free double-buffer payload channel
//!   implementing [`oaf_nvmeof::PayloadChannel`] over real shared memory,
//!   plus the locked baseline variant for the Fig. 8 ablation.
//!
//! Runtime and evaluation:
//!
//! * [`runtime`] — the real (threaded) NVMe-oAF runtime: a target and
//!   client pair that negotiates the fabric and moves actual bytes;
//! * [`sim`] — the discrete-event model of every fabric the paper
//!   evaluates (NVMe/TCP at 10/25/100 Gbps, NVMe/RDMA, NVMe/RoCE, the
//!   four NVMe-oSHM ablation variants, and NVMe-oAF itself), used by the
//!   figure-reproduction harness.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod buf;
pub mod conn;
pub mod endpoint;
pub mod flow;
pub mod locality;
pub mod payload_impl;
pub mod runtime;
pub mod sim;
pub mod stats;
pub mod tcp_opt;

pub use conn::ConnectionManager;
pub use endpoint::{AfEndpoint, ChannelKind};
pub use locality::HostRegistry;
