//! TCP-channel optimizations (§4.5) — simulation-typed facade.
//!
//! The actual cost model and controller live in [`oaf_nvmeof::tune`] on
//! plain [`std::time::Duration`] + `f64`, where the *real* socket
//! transport ([`oaf_nvmeof::tcp`]) consumes them. This module keeps the
//! simulator-facing API ([`SimDuration`], [`Rate`]) as thin wrappers so
//! `fig09`/`fig10` and the discrete-event fabric keep their types while
//! the runtime and sim share one implementation:
//!
//! * **Application-level chunk size.** Stock NVMe/TCP statically sets it
//!   to 128 KiB; I/O requests are split into `ceil(io_size / chunk)`
//!   sub-requests and the chunk size also sizes the target's buffer
//!   pools. Small chunks multiply per-chunk CPU cost, huge chunks waste
//!   target memory — Fig. 9 finds 512 KiB optimal for 25 Gbps Ethernet.
//!   [`ChunkSelector`] encodes that trade-off as an explicit cost model
//!   and picks the best chunk for the link.
//! * **Adaptive busy polling.** Static budgets are suboptimal because
//!   read and write waits differ (Fig. 10): writes want long budgets
//!   (~100 µs), reads want 25–50 µs. [`BusyPollController`] tracks an
//!   EWMA of observed wait times per direction and selects a budget
//!   from the candidate ladder.

use oaf_nvmeof::tune;
use oaf_simnet::time::SimDuration;
use oaf_simnet::units::Rate;
use std::time::Duration;

/// The workload directions the busy-poll controller distinguishes.
///
/// Re-exported from the shared runtime implementation so sim and socket
/// code agree on the classification.
pub use oaf_nvmeof::tune::PollClass;

fn to_std(d: SimDuration) -> Duration {
    Duration::from_nanos(d.as_nanos())
}

fn to_sim(d: Duration) -> SimDuration {
    SimDuration::from_nanos(d.as_nanos() as u64)
}

/// Cost model constants for chunk-size selection.
#[derive(Clone, Copy, Debug)]
pub struct ChunkCostModel {
    /// Fixed CPU time per chunk per side (stack traversal, descriptor
    /// handling).
    pub per_chunk_cpu: SimDuration,
    /// Link goodput.
    pub goodput: Rate,
    /// Target-side buffer-pool pressure per chunk, quadratic in the chunk
    /// size and referenced to 512 KiB (models the paper's "choosing a very
    /// large chunk leads to under-utilization of memory" — pool buffers
    /// are chunk-sized, so their cache/TLB footprint grows with the
    /// chunk).
    pub mem_quad_us_at_512k: f64,
}

impl ChunkCostModel {
    fn shared(&self) -> tune::ChunkCostModel {
        tune::ChunkCostModel {
            per_chunk_cpu: to_std(self.per_chunk_cpu),
            goodput_bytes_per_sec: self.goodput.as_bytes_per_sec(),
            mem_quad_us_at_512k: self.mem_quad_us_at_512k,
        }
    }

    /// Effective per-I/O cost of moving `io_size` bytes with `chunk`-sized
    /// sub-requests, in microseconds. Lower is better.
    pub fn cost_us(&self, io_size: u64, chunk: u64) -> f64 {
        self.shared().cost_us(io_size, chunk)
    }
}

/// Selects the application-level chunk size for a link.
///
/// ```
/// use oaf_core::tcp_opt::{ChunkCostModel, ChunkSelector};
/// use oaf_simnet::time::SimDuration;
/// use oaf_simnet::units::{Rate, KIB, MIB};
///
/// let selector = ChunkSelector::new(ChunkCostModel {
///     per_chunk_cpu: SimDuration::from_micros(12),
///     goodput: Rate::gbps(25.0).scaled(0.94),
///     mem_quad_us_at_512k: 14.0,
/// });
/// // The paper's Fig. 9 conclusion for 25 Gbps Ethernet:
/// assert_eq!(selector.select(&[128 * KIB, 512 * KIB, MIB, 2 * MIB]), 512 * KIB);
/// ```
pub struct ChunkSelector {
    inner: tune::ChunkSelector,
}

impl ChunkSelector {
    /// Candidate ladder used by the paper's sweep (Fig. 9).
    pub fn default_candidates() -> Vec<u64> {
        tune::ChunkSelector::default_candidates()
    }

    /// Creates a selector over the default candidate ladder.
    pub fn new(model: ChunkCostModel) -> Self {
        ChunkSelector {
            inner: tune::ChunkSelector::new(model.shared()),
        }
    }

    /// Picks the chunk minimizing the summed cost over a representative
    /// I/O-size mix (the paper sweeps 128 KiB – 2 MiB streams).
    pub fn select(&self, io_sizes: &[u64]) -> u64 {
        self.inner.select(io_sizes)
    }
}

/// Workload-adaptive busy-poll budget selection.
pub struct BusyPollController {
    inner: tune::BusyPollController,
}

impl BusyPollController {
    /// The candidate budgets the paper evaluates (Fig. 10), plus
    /// interrupt mode (zero).
    pub fn default_ladder() -> Vec<SimDuration> {
        tune::BusyPollController::default_ladder()
            .into_iter()
            .map(to_sim)
            .collect()
    }

    /// Creates a controller with the default ladder.
    pub fn new() -> Self {
        BusyPollController {
            inner: tune::BusyPollController::new(),
        }
    }

    /// Feeds one observed wait (time between posting a receive and data
    /// arrival) for `class`.
    pub fn observe(&mut self, class: PollClass, wait: SimDuration) {
        self.inner.observe(class, to_std(wait));
    }

    /// Current EWMA estimate for a class, in microseconds.
    pub fn estimate_us(&self, class: PollClass) -> f64 {
        self.inner.estimate_us(class)
    }

    /// Selects the budget for a class: the smallest ladder rung covering
    /// ~the EWMA wait (catching the arrival without oversizing the spin,
    /// which wastes the core at high queue depth — the Fig. 10 read dip
    /// at 100 µs).
    pub fn budget(&self, class: PollClass) -> SimDuration {
        to_sim(self.inner.budget(class))
    }

    /// Observations consumed so far.
    pub fn samples(&self) -> u64 {
        self.inner.samples()
    }
}

impl Default for BusyPollController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_simnet::units::{KIB, MIB};

    fn model_25g() -> ChunkCostModel {
        ChunkCostModel {
            per_chunk_cpu: SimDuration::from_micros(12),
            goodput: Rate::gbps(25.0).scaled(0.94),
            mem_quad_us_at_512k: 14.0,
        }
    }

    #[test]
    fn selector_picks_512k_for_25g() {
        // The paper's Fig. 9 conclusion: 512 KiB is ideal for 25 Gbps.
        let sel = ChunkSelector::new(model_25g());
        let mix = [128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB];
        assert_eq!(sel.select(&mix), 512 * KIB);
    }

    #[test]
    fn tiny_chunks_lose_to_cpu_cost() {
        let m = model_25g();
        assert!(m.cost_us(2 * MIB, 64 * KIB) > m.cost_us(2 * MIB, 512 * KIB));
    }

    #[test]
    fn huge_chunks_lose_to_memory_penalty() {
        let m = model_25g();
        assert!(m.cost_us(128 * KIB, 2 * MIB) > m.cost_us(128 * KIB, 512 * KIB));
    }

    #[test]
    fn controller_tracks_waits_and_separates_classes() {
        let mut c = BusyPollController::new();
        for _ in 0..400 {
            c.observe(PollClass::Read, SimDuration::from_micros(28));
            c.observe(PollClass::Write, SimDuration::from_micros(85));
        }
        assert!((c.estimate_us(PollClass::Read) - 28.0).abs() < 2.0);
        assert!((c.estimate_us(PollClass::Write) - 85.0).abs() < 3.0);
        // Reads settle on a mid budget, writes on the long one — the
        // paper's "carefully selects the busy polling rate based on the
        // type of workload".
        assert_eq!(c.budget(PollClass::Read), SimDuration::from_micros(50));
        assert_eq!(c.budget(PollClass::Write), SimDuration::from_micros(100));
    }

    #[test]
    fn controller_adapts_when_workload_shifts() {
        let mut c = BusyPollController::new();
        for _ in 0..400 {
            c.observe(PollClass::Read, SimDuration::from_micros(18));
        }
        assert_eq!(c.budget(PollClass::Read), SimDuration::from_micros(25));
        for _ in 0..800 {
            c.observe(PollClass::Read, SimDuration::from_micros(70));
        }
        assert_eq!(c.budget(PollClass::Read), SimDuration::from_micros(100));
    }

    #[test]
    fn samples_counted() {
        let mut c = BusyPollController::new();
        c.observe(PollClass::Read, SimDuration::from_micros(10));
        c.observe(PollClass::Write, SimDuration::from_micros(10));
        assert_eq!(c.samples(), 2);
    }

    #[test]
    fn facade_matches_shared_implementation() {
        // The sim-typed facade and the runtime module must agree bit-for-
        // bit on costs — they are one implementation.
        let sim = model_25g();
        let shared = tune::ChunkCostModel::for_link_gbps(25.0);
        for io in [128 * KIB, 512 * KIB, 2 * MIB] {
            for chunk in tune::ChunkSelector::default_candidates() {
                let a = sim.cost_us(io, chunk);
                let b = shared.cost_us(io, chunk);
                assert!((a - b).abs() < 1e-6, "io={io} chunk={chunk}: {a} vs {b}");
            }
        }
    }
}
