//! TCP-channel optimizations (§4.5).
//!
//! Two knobs the paper tunes on the inter-node path:
//!
//! * **Application-level chunk size.** Stock NVMe/TCP statically sets it
//!   to 128 KiB; I/O requests are split into `ceil(io_size / chunk)`
//!   sub-requests and the chunk size also sizes the target's buffer
//!   pools. Small chunks multiply per-chunk CPU cost, huge chunks waste
//!   target memory — Fig. 9 finds 512 KiB optimal for 25 Gbps Ethernet.
//!   [`ChunkSelector`] encodes that trade-off as an explicit cost model
//!   and picks the best chunk for the link.
//! * **Adaptive busy polling.** Static budgets are suboptimal because
//!   read and write waits differ (Fig. 10): writes want long budgets
//!   (~100 µs), reads want 25–50 µs. [`BusyPollController`] tracks an
//!   EWMA of observed wait times per direction and selects a budget
//!   from the candidate ladder.

use oaf_simnet::time::SimDuration;
use oaf_simnet::units::{Rate, KIB, MIB};

/// Cost model constants for chunk-size selection.
#[derive(Clone, Copy, Debug)]
pub struct ChunkCostModel {
    /// Fixed CPU time per chunk per side (stack traversal, descriptor
    /// handling).
    pub per_chunk_cpu: SimDuration,
    /// Link goodput.
    pub goodput: Rate,
    /// Target-side buffer-pool pressure per chunk, quadratic in the chunk
    /// size and referenced to 512 KiB (models the paper's "choosing a very
    /// large chunk leads to under-utilization of memory" — pool buffers
    /// are chunk-sized, so their cache/TLB footprint grows with the
    /// chunk).
    pub mem_quad_us_at_512k: f64,
}

impl ChunkCostModel {
    /// Effective per-I/O cost of moving `io_size` bytes with `chunk`-sized
    /// sub-requests, in microseconds. Lower is better.
    pub fn cost_us(&self, io_size: u64, chunk: u64) -> f64 {
        let chunks = oaf_simnet::units::chunks_for(io_size, chunk) as f64;
        let cpu = chunks * 2.0 * self.per_chunk_cpu.as_micros_f64();
        let wire = self.goodput.transfer_secs(io_size) * 1e6;
        let ratio = chunk as f64 / (512.0 * KIB as f64);
        let mem = chunks * self.mem_quad_us_at_512k * ratio * ratio;
        cpu + wire + mem
    }
}

/// Selects the application-level chunk size for a link.
///
/// ```
/// use oaf_core::tcp_opt::{ChunkCostModel, ChunkSelector};
/// use oaf_simnet::time::SimDuration;
/// use oaf_simnet::units::{Rate, KIB, MIB};
///
/// let selector = ChunkSelector::new(ChunkCostModel {
///     per_chunk_cpu: SimDuration::from_micros(12),
///     goodput: Rate::gbps(25.0).scaled(0.94),
///     mem_quad_us_at_512k: 14.0,
/// });
/// // The paper's Fig. 9 conclusion for 25 Gbps Ethernet:
/// assert_eq!(selector.select(&[128 * KIB, 512 * KIB, MIB, 2 * MIB]), 512 * KIB);
/// ```
pub struct ChunkSelector {
    model: ChunkCostModel,
    candidates: Vec<u64>,
}

impl ChunkSelector {
    /// Candidate ladder used by the paper's sweep (Fig. 9).
    pub fn default_candidates() -> Vec<u64> {
        vec![64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB]
    }

    /// Creates a selector over the default candidate ladder.
    pub fn new(model: ChunkCostModel) -> Self {
        ChunkSelector {
            model,
            candidates: Self::default_candidates(),
        }
    }

    /// Picks the chunk minimizing the summed cost over a representative
    /// I/O-size mix (the paper sweeps 128 KiB – 2 MiB streams).
    pub fn select(&self, io_sizes: &[u64]) -> u64 {
        *self
            .candidates
            .iter()
            .min_by(|&&a, &&b| {
                let ca: f64 = io_sizes.iter().map(|&s| self.model.cost_us(s, a)).sum();
                let cb: f64 = io_sizes.iter().map(|&s| self.model.cost_us(s, b)).sum();
                ca.partial_cmp(&cb).expect("finite costs")
            })
            .expect("non-empty candidates")
    }
}

/// The workload directions the busy-poll controller distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PollClass {
    /// Waits for read data / read completions.
    Read,
    /// Waits for R2T grants / write completions.
    Write,
}

/// Workload-adaptive busy-poll budget selection.
pub struct BusyPollController {
    ladder: Vec<SimDuration>,
    ewma_alpha: f64,
    read_wait_us: f64,
    write_wait_us: f64,
    samples: u64,
}

impl BusyPollController {
    /// The candidate budgets the paper evaluates (Fig. 10), plus
    /// interrupt mode (zero).
    pub fn default_ladder() -> Vec<SimDuration> {
        vec![
            SimDuration::ZERO,
            SimDuration::from_micros(25),
            SimDuration::from_micros(50),
            SimDuration::from_micros(100),
        ]
    }

    /// Creates a controller with the default ladder.
    pub fn new() -> Self {
        BusyPollController {
            ladder: Self::default_ladder(),
            ewma_alpha: 0.05,
            read_wait_us: 30.0,
            write_wait_us: 80.0,
            samples: 0,
        }
    }

    /// Feeds one observed wait (time between posting a receive and data
    /// arrival) for `class`.
    pub fn observe(&mut self, class: PollClass, wait: SimDuration) {
        let target = match class {
            PollClass::Read => &mut self.read_wait_us,
            PollClass::Write => &mut self.write_wait_us,
        };
        *target = (1.0 - self.ewma_alpha) * *target + self.ewma_alpha * wait.as_micros_f64();
        self.samples += 1;
    }

    /// Current EWMA estimate for a class, in microseconds.
    pub fn estimate_us(&self, class: PollClass) -> f64 {
        match class {
            PollClass::Read => self.read_wait_us,
            PollClass::Write => self.write_wait_us,
        }
    }

    /// Selects the budget for a class: the smallest ladder rung covering
    /// ~the EWMA wait (catching the arrival without oversizing the spin,
    /// which wastes the core at high queue depth — the Fig. 10 read dip
    /// at 100 µs).
    pub fn budget(&self, class: PollClass) -> SimDuration {
        let want = self.estimate_us(class) * 1.15; // slack for jitter
        for &rung in &self.ladder[1..] {
            if rung.as_micros_f64() >= want {
                return rung;
            }
        }
        *self.ladder.last().expect("non-empty ladder")
    }

    /// Observations consumed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl Default for BusyPollController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_25g() -> ChunkCostModel {
        ChunkCostModel {
            per_chunk_cpu: SimDuration::from_micros(12),
            goodput: Rate::gbps(25.0).scaled(0.94),
            mem_quad_us_at_512k: 14.0,
        }
    }

    #[test]
    fn selector_picks_512k_for_25g() {
        // The paper's Fig. 9 conclusion: 512 KiB is ideal for 25 Gbps.
        let sel = ChunkSelector::new(model_25g());
        let mix = [128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB];
        assert_eq!(sel.select(&mix), 512 * KIB);
    }

    #[test]
    fn tiny_chunks_lose_to_cpu_cost() {
        let m = model_25g();
        assert!(m.cost_us(2 * MIB, 64 * KIB) > m.cost_us(2 * MIB, 512 * KIB));
    }

    #[test]
    fn huge_chunks_lose_to_memory_penalty() {
        let m = model_25g();
        assert!(m.cost_us(128 * KIB, 2 * MIB) > m.cost_us(128 * KIB, 512 * KIB));
    }

    #[test]
    fn controller_tracks_waits_and_separates_classes() {
        let mut c = BusyPollController::new();
        for _ in 0..400 {
            c.observe(PollClass::Read, SimDuration::from_micros(28));
            c.observe(PollClass::Write, SimDuration::from_micros(85));
        }
        assert!((c.estimate_us(PollClass::Read) - 28.0).abs() < 2.0);
        assert!((c.estimate_us(PollClass::Write) - 85.0).abs() < 3.0);
        // Reads settle on a mid budget, writes on the long one — the
        // paper's "carefully selects the busy polling rate based on the
        // type of workload".
        assert_eq!(c.budget(PollClass::Read), SimDuration::from_micros(50));
        assert_eq!(c.budget(PollClass::Write), SimDuration::from_micros(100));
    }

    #[test]
    fn controller_adapts_when_workload_shifts() {
        let mut c = BusyPollController::new();
        for _ in 0..400 {
            c.observe(PollClass::Read, SimDuration::from_micros(18));
        }
        assert_eq!(c.budget(PollClass::Read), SimDuration::from_micros(25));
        for _ in 0..800 {
            c.observe(PollClass::Read, SimDuration::from_micros(70));
        }
        assert_eq!(c.budget(PollClass::Read), SimDuration::from_micros(100));
    }

    #[test]
    fn samples_counted() {
        let mut c = BusyPollController::new();
        c.observe(PollClass::Read, SimDuration::from_micros(10));
        c.observe(PollClass::Write, SimDuration::from_micros(10));
        assert_eq!(c.samples(), 2);
    }
}
