//! Locality awareness and the helper-process hot-plug protocol (§4.2).
//!
//! In the paper, a helper process (the cluster resource manager —
//! Kubernetes, OpenStack, SLURM) attaches an IVSHMEM/ICSHMEM region to
//! both endpoints when a client and a storage service share a physical
//! host, then notifies them through a pre-reserved shared-memory flag
//! page that the Connection Manager polls.
//!
//! [`HostRegistry`] plays the resource manager: processes register with a
//! host identity; [`HostRegistry::hotplug`] allocates an isolated
//! [`ShmChannel`] per client↔target pair (one region per client, for the
//! paper's security model, §6) and announces it on each side's flag page.

use std::collections::HashMap;
use std::sync::Arc;

use oaf_shmem::flag::{Announcement, FlagPage};
use oaf_shmem::ShmChannel;
use oaf_shmem::ShmRegion;
use parking_lot::Mutex;

/// Identity of a registered process (client application or storage
/// service).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u64);

/// A process's registration record.
struct ProcessEntry {
    host: u64,
    flag: FlagPage,
}

/// A hot-plugged channel between one client and one target.
pub struct HotplugResult {
    /// The shared data channel.
    pub channel: ShmChannel,
    /// Region identity announced on both flag pages.
    pub region_id: u64,
}

/// The helper-process registry: knows which host every process runs on
/// and owns the pre-reserved flag pages.
pub struct HostRegistry {
    inner: Mutex<RegistryInner>,
}

struct RegistryInner {
    processes: HashMap<ProcessId, ProcessEntry>,
    channels: HashMap<(ProcessId, ProcessId), Arc<HotplugResult>>,
    next_region: u64,
}

impl HostRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        HostRegistry {
            inner: Mutex::new(RegistryInner {
                processes: HashMap::new(),
                channels: HashMap::new(),
                next_region: 1,
            }),
        }
    }

    /// Registers a process on a host; returns the flag page the process
    /// should poll (its pre-reserved region).
    pub fn register(&self, pid: ProcessId, host: u64) -> FlagPage {
        let flag = FlagPage::new(Arc::new(ShmRegion::new(FlagPage::LEN)), 0);
        let mut g = self.inner.lock();
        g.processes.insert(
            pid,
            ProcessEntry {
                host,
                flag: flag.clone(),
            },
        );
        flag
    }

    /// Whether two registered processes share a physical host.
    pub fn co_located(&self, a: ProcessId, b: ProcessId) -> bool {
        let g = self.inner.lock();
        match (g.processes.get(&a), g.processes.get(&b)) {
            (Some(pa), Some(pb)) => pa.host == pb.host,
            _ => false,
        }
    }

    /// Hot-plugs an isolated shared-memory channel between `client` and
    /// `target` if (and only if) they are co-located, announcing it on
    /// both flag pages. Returns `None` for remote pairs — the fabric then
    /// stays on TCP (§4.2's automatic fallback).
    pub fn hotplug(
        &self,
        client: ProcessId,
        target: ProcessId,
        depth: usize,
        slot_size: usize,
    ) -> Option<Arc<HotplugResult>> {
        let mut g = self.inner.lock();
        let (host_c, host_t) = {
            let pc = g.processes.get(&client)?;
            let pt = g.processes.get(&target)?;
            (pc.host, pt.host)
        };
        if host_c != host_t {
            return None;
        }
        if let Some(existing) = g.channels.get(&(client, target)) {
            return Some(existing.clone());
        }
        let region_id = g.next_region;
        g.next_region += 1;
        let result = Arc::new(HotplugResult {
            channel: ShmChannel::allocate(depth, slot_size),
            region_id,
        });
        g.channels.insert((client, target), result.clone());
        // Notify both endpoints through their pre-reserved pages.
        g.processes[&client].flag.announce(host_c, region_id);
        g.processes[&target].flag.announce(host_t, region_id);
        Some(result)
    }

    /// Looks up the channel previously hot-plugged for a pair (what an
    /// endpoint does after seeing the flag page announcement).
    pub fn channel_for(&self, client: ProcessId, target: ProcessId) -> Option<Arc<HotplugResult>> {
        self.inner.lock().channels.get(&(client, target)).cloned()
    }

    /// Hot-unplugs a pair's channel (resource reclamation at teardown).
    pub fn unplug(&self, client: ProcessId, target: ProcessId) {
        let mut g = self.inner.lock();
        if g.channels.remove(&(client, target)).is_some() {
            if let Some(p) = g.processes.get(&client) {
                p.flag.clear();
            }
            if let Some(p) = g.processes.get(&target) {
                p.flag.clear();
            }
        }
    }
}

impl Default for HostRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Polls a flag page the way the Connection Manager does during
/// connection establishment (§4.2): returns the announcement if the
/// helper process has hot-plugged a region.
pub fn poll_locality(flag: &FlagPage) -> Option<Announcement> {
    flag.poll()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_shmem::channel::Side;

    const CLIENT: ProcessId = ProcessId(10);
    const TARGET: ProcessId = ProcessId(20);

    #[test]
    fn co_located_pair_gets_channel_and_announcement() {
        let reg = HostRegistry::new();
        let cflag = reg.register(CLIENT, 1);
        let tflag = reg.register(TARGET, 1);
        assert!(reg.co_located(CLIENT, TARGET));

        assert!(poll_locality(&cflag).is_none(), "no announcement yet");
        let hp = reg.hotplug(CLIENT, TARGET, 4, 4096).unwrap();

        let a = poll_locality(&cflag).unwrap();
        let b = poll_locality(&tflag).unwrap();
        assert_eq!(a.region_id, hp.region_id);
        assert_eq!(b.region_id, hp.region_id);
        assert_eq!(a.host_id, 1);

        // The channel moves bytes.
        let (slot, len) = hp.channel.endpoint(Side::Client).send(b"hi").unwrap();
        assert_eq!(
            hp.channel
                .endpoint(Side::Target)
                .recv(slot, len)
                .unwrap()
                .as_slice(),
            b"hi"
        );
    }

    #[test]
    fn remote_pair_gets_no_channel() {
        let reg = HostRegistry::new();
        let cflag = reg.register(CLIENT, 1);
        reg.register(TARGET, 2);
        assert!(!reg.co_located(CLIENT, TARGET));
        assert!(reg.hotplug(CLIENT, TARGET, 4, 4096).is_none());
        assert!(poll_locality(&cflag).is_none());
    }

    #[test]
    fn hotplug_is_idempotent_per_pair() {
        let reg = HostRegistry::new();
        reg.register(CLIENT, 1);
        reg.register(TARGET, 1);
        let a = reg.hotplug(CLIENT, TARGET, 4, 4096).unwrap();
        let b = reg.hotplug(CLIENT, TARGET, 4, 4096).unwrap();
        assert_eq!(a.region_id, b.region_id);
    }

    #[test]
    fn separate_clients_get_isolated_regions() {
        // §4.2/§6: each client gets its own region so a malicious client
        // cannot snoop another's payloads.
        let reg = HostRegistry::new();
        let c2 = ProcessId(11);
        reg.register(CLIENT, 1);
        reg.register(c2, 1);
        reg.register(TARGET, 1);
        let a = reg.hotplug(CLIENT, TARGET, 4, 4096).unwrap();
        let b = reg.hotplug(c2, TARGET, 4, 4096).unwrap();
        assert_ne!(a.region_id, b.region_id);
    }

    #[test]
    fn unplug_clears_flags_and_channel() {
        let reg = HostRegistry::new();
        let cflag = reg.register(CLIENT, 1);
        reg.register(TARGET, 1);
        reg.hotplug(CLIENT, TARGET, 4, 4096).unwrap();
        assert!(reg.channel_for(CLIENT, TARGET).is_some());
        reg.unplug(CLIENT, TARGET);
        assert!(reg.channel_for(CLIENT, TARGET).is_none());
        assert!(poll_locality(&cflag).is_none());
    }

    #[test]
    fn unknown_processes_are_not_co_located() {
        let reg = HostRegistry::new();
        reg.register(CLIENT, 1);
        assert!(!reg.co_located(CLIENT, ProcessId(999)));
        assert!(reg.hotplug(CLIENT, ProcessId(999), 2, 64).is_none());
    }
}
