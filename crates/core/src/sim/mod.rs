//! Discrete-event models of every fabric the paper evaluates.
//!
//! The real runtime in [`crate::runtime`] proves the algorithms work; this
//! module predicts how they *perform* on the paper's testbed — VMs with
//! SR-IOV NICs at 10/25/100 Gbps, InfiniBand FDR, RoCE, QEMU-emulated
//! NVMe-SSDs — hardware this reproduction does not have. Each fabric is a
//! per-I/O phase model over shared analytic queueing resources
//! (per-stream pinned cores, a shared softirq core per VM, a shared
//! memory bus per VM, the NIC wire, and the SSD's internal channels), so
//! contention, pipelining and saturation emerge rather than being
//! asserted.
//!
//! Calibration constants live in [`params::SimParams`]; the benchmark
//! harness prints them next to every reproduced figure.

pub mod experiment;
pub mod fabric;
pub mod metrics;
pub mod params;
pub mod workload;
pub mod world;

pub use experiment::{
    build_world, run, run_probed, run_uniform, ExperimentSpec, ProbedRun, StreamConfig,
};
pub use fabric::{FabricKind, ShmVariant};
pub use metrics::{Breakdown, Metrics};
pub use params::SimParams;
pub use workload::{Pattern, WorkloadSpec};
