//! The closed-loop experiment driver.
//!
//! Reproduces the SPDK `perf` methodology (§5.1): each stream keeps
//! `queue_depth` I/Os in flight against its SSD for the duration of the
//! run; streams are interleaved in virtual-time order so contention on
//! shared resources (wires, softirq cores, memory buses) is resolved
//! consistently.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use oaf_simnet::calendar::CalendarServer;
use oaf_simnet::rng::SimRng;
use oaf_simnet::time::SimTime;
use oaf_ssd::{IoOp, QueuePair, SsdDevice};

use super::fabric::{simulate_io, FabricKind, StreamRes};
use super::metrics::Metrics;
use super::params::SimParams;
use super::workload::WorkloadSpec;
use super::world::{ethernet_wire, rdma_wire, VmHost, World};

/// One stream's placement and fabric.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Fabric the stream runs on.
    pub fabric: FabricKind,
    /// Client VM index (streams sharing a VM share its softirq core and
    /// memory bus).
    pub client_vm: usize,
    /// Target VM index.
    pub target_vm: usize,
    /// Wire index (streams sharing a NIC share its serialization).
    pub wire: usize,
}

/// A complete experiment specification.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Per-stream placement.
    pub streams: Vec<StreamConfig>,
    /// The workload every stream runs.
    pub workload: WorkloadSpec,
    /// Model calibration.
    pub params: SimParams,
}

impl ExperimentSpec {
    /// The paper's common topology: `n` streams, all in one client VM
    /// talking to one target VM over one shared NIC (Figs. 2, 3, 11, 12).
    pub fn uniform(fabric: FabricKind, n: usize, workload: WorkloadSpec) -> Self {
        ExperimentSpec {
            streams: (0..n)
                .map(|_| StreamConfig {
                    fabric,
                    client_vm: 0,
                    target_vm: 1,
                    wire: 0,
                })
                .collect(),
            workload,
            params: match fabric.resolve() {
                FabricKind::Roce => SimParams::roce_physical(),
                _ => SimParams::paper_testbed(),
            },
        }
    }

    /// Number of VMs referenced.
    fn vm_count(&self) -> usize {
        self.streams
            .iter()
            .flat_map(|s| [s.client_vm, s.target_vm])
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }

    /// Number of wires referenced.
    fn wire_count(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.wire)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }
}

/// Builds the contended world for a spec (public so external replayers —
/// e.g. the h5bench trace replay — can drive `simulate_io` directly).
pub fn build_world(spec: &ExperimentSpec) -> World {
    let n = spec.streams.len();
    let mut seed_rng = SimRng::seed_from_u64(spec.workload.seed);
    // Size each VM's core array to the number of streams (each stream
    // pins core index = its position).
    let vms = (0..spec.vm_count()).map(|_| VmHost::new(n)).collect();
    // Wires: pick speed from the fastest fabric needing each wire.
    let mut wires = Vec::new();
    for w in 0..spec.wire_count() {
        let cfg = spec
            .streams
            .iter()
            .find(|s| s.wire == w && s.fabric.wire_gbps().is_some());
        let wire = match cfg.and_then(|s| s.fabric.wire_gbps()) {
            // IB runs in VMs over SR-IOV (derated); RoCE runs on
            // physical nodes (§5.1).
            Some((gbps, true)) if gbps < 100.0 => rdma_wire(gbps, 0.75),
            Some((gbps, true)) => rdma_wire(gbps, 0.85),
            Some((gbps, false)) => ethernet_wire(gbps),
            // Wire unused (pure shared-memory experiment): a fast dummy.
            None => ethernet_wire(100.0),
        };
        wires.push(wire);
    }
    let ssds = (0..n)
        .map(|i| SsdDevice::new(spec.params.ssd, spec.workload.seed ^ (i as u64) << 17))
        .collect();
    let mr = (0..n)
        .map(|_| oaf_simnet::rdma::MrCache::new(spec.params.rdma))
        .collect();
    let locks = vec![CalendarServer::new(); n];
    let slots = vec![CalendarServer::new(); n];
    let rngs = (0..n).map(|i| seed_rng.fork(i as u64)).collect();
    World {
        params: spec.params.clone(),
        vms,
        wires,
        ssds,
        mr,
        locks,
        slots,
        rngs,
    }
}

/// Runs the experiment, returning aggregate metrics.
pub fn run(spec: &ExperimentSpec) -> Metrics {
    run_probed(spec).metrics
}

/// Convenience: runs a uniform `n`-stream experiment.
pub fn run_uniform(fabric: FabricKind, n: usize, workload: WorkloadSpec) -> Metrics {
    run(&ExperimentSpec::uniform(fabric, n, workload))
}

/// Result of [`run_probed`]: metrics plus the final world for resource-
/// utilization introspection (used by calibration tooling and tests).
pub struct ProbedRun {
    /// The run's metrics.
    pub metrics: Metrics,
    /// The world after the run (server busy times, device stats).
    pub world: World,
}

impl ProbedRun {
    /// Prints per-resource utilization (VM cores, softirq, membus, wire
    /// directions, SSD channels) over the run's completion horizon.
    pub fn print_utilization(&self) {
        use oaf_simnet::link::Direction;
        let h = self.metrics.last_completion;
        for (i, vm) in self.world.vms.iter().enumerate() {
            let core0 = vm
                .cores
                .first()
                .map(|c| c.utilization(h) * 100.0)
                .unwrap_or(0.0);
            println!(
                "  vm{i}: core0 {core0:.0}% | softirq {:.0}% | membus {:.0}%",
                vm.softirq.utilization(h) * 100.0,
                vm.membus.utilization(h) * 100.0,
            );
        }
        for (i, w) in self.world.wires.iter().enumerate() {
            println!(
                "  wire{i}: h2c {:.0}% | c2h {:.0}% ({:.2} GB/s goodput)",
                w.utilization(Direction::H2C, h) * 100.0,
                w.utilization(Direction::C2H, h) * 100.0,
                w.goodput().as_bytes_per_sec() / 1e9,
            );
        }
        for (i, s) in self.world.ssds.iter().enumerate() {
            println!("  ssd{i}: channels {:.0}%", s.utilization(h) * 100.0);
        }
    }
}

/// Like [`run`], but also returns the world so callers can inspect
/// utilization of wires, cores, buses and devices.
pub fn run_probed(spec: &ExperimentSpec) -> ProbedRun {
    spec.workload.validate();
    assert!(!spec.streams.is_empty(), "at least one stream");
    let wl = spec.workload;
    let mut world = build_world(spec);
    let mut metrics = Metrics::new(spec.streams.len());
    let mut qps: Vec<QueuePair> = (0..spec.streams.len())
        .map(|_| QueuePair::new(wl.queue_depth))
        .collect();
    let mut op_rngs: Vec<SimRng> = (0..spec.streams.len())
        .map(|i| SimRng::seed_from_u64(wl.seed.wrapping_mul(0x9e37_79b9) ^ i as u64))
        .collect();
    let horizon = SimTime::ZERO + wl.duration;
    // Resolve adaptive fabrics once (the chunk selector etc. are pure
    // but not free; simulate_io re-resolving per I/O would be wasteful).
    let fabrics: Vec<FabricKind> = spec.streams.iter().map(|c| c.fabric.resolve()).collect();
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = (0..spec.streams.len())
        .map(|i| Reverse((SimTime::ZERO, i)))
        .collect();
    while let Some(Reverse((cursor, s))) = heap.pop() {
        if cursor > horizon {
            continue;
        }
        let issue = qps[s].admit(cursor);
        if issue > horizon {
            continue;
        }
        let cfg = spec.streams[s];
        let res = StreamRes {
            client_vm: cfg.client_vm,
            target_vm: cfg.target_vm,
            core: s,
            wire: cfg.wire,
            stream: s,
        };
        let op = if op_rngs[s].chance(wl.read_fraction) {
            IoOp::Read
        } else {
            IoOp::Write
        };
        let outcome = simulate_io(
            &mut world, fabrics[s], res, op, wl.io_size, wl.pattern, issue,
        );
        if std::env::var_os("OAF_SIM_TRACE").is_some() && metrics.total_ops() < 40 {
            eprintln!(
                "io{} issue {:.1} done {:.1} lat {:.1}",
                metrics.total_ops(),
                issue.as_micros_f64(),
                outcome.done.as_micros_f64(),
                (outcome.done - issue).as_micros_f64()
            );
        }
        qps[s].complete(outcome.done);
        metrics.record(
            s,
            op == IoOp::Read,
            outcome.done - issue,
            outcome.breakdown,
            wl.io_size,
            outcome.done,
        );
        heap.push(Reverse((issue + world.params.submit_gap, s)));
    }
    ProbedRun { metrics, world }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::fabric::ShmVariant;
    use oaf_simnet::time::SimDuration;
    use oaf_simnet::units::KIB;

    fn quick(io: u64, reads: f64) -> WorkloadSpec {
        // Debug builds run the simulation ~15-20x slower; shorter virtual
        // runs keep `cargo test` (no --release) usable. The assertions
        // here have wide margins, so fewer samples are fine.
        let ms = if cfg!(debug_assertions) { 40 } else { 120 };
        WorkloadSpec::new(io, reads).with_duration(SimDuration::from_millis(ms))
    }

    #[test]
    fn tcp_runs_and_moves_bytes() {
        let m = run_uniform(
            FabricKind::TcpStock { gbps: 25.0 },
            1,
            quick(128 * KIB, 1.0),
        );
        assert!(m.total_ops() > 100, "ops {}", m.total_ops());
        assert!(m.bandwidth_mib() > 100.0, "bw {}", m.bandwidth_mib());
        assert_eq!(m.writes.count(), 0);
    }

    #[test]
    fn faster_wire_is_faster_overall() {
        let a = run_uniform(
            FabricKind::TcpStock { gbps: 10.0 },
            4,
            quick(128 * KIB, 1.0),
        );
        let b = run_uniform(
            FabricKind::TcpStock { gbps: 100.0 },
            4,
            quick(128 * KIB, 1.0),
        );
        assert!(
            b.bandwidth_mib() > a.bandwidth_mib() * 1.5,
            "10G {} vs 100G {}",
            a.bandwidth_mib(),
            b.bandwidth_mib()
        );
    }

    #[test]
    fn shm_beats_tcp() {
        let tcp = run_uniform(
            FabricKind::TcpStock { gbps: 25.0 },
            4,
            quick(128 * KIB, 1.0),
        );
        let shm = run_uniform(
            FabricKind::Shm {
                variant: ShmVariant::ZeroCopy,
            },
            4,
            quick(128 * KIB, 1.0),
        );
        assert!(
            shm.bandwidth_mib() > tcp.bandwidth_mib() * 2.0,
            "tcp {} shm {}",
            tcp.bandwidth_mib(),
            shm.bandwidth_mib()
        );
    }

    #[test]
    fn rdma_beats_tcp_at_latency() {
        let tcp = run_uniform(FabricKind::TcpStock { gbps: 100.0 }, 1, quick(4 * KIB, 1.0));
        let rdma = run_uniform(FabricKind::RdmaIb, 1, quick(4 * KIB, 1.0));
        assert!(
            rdma.reads.mean_lat_us() < tcp.reads.mean_lat_us(),
            "tcp {} rdma {}",
            tcp.reads.mean_lat_us(),
            rdma.reads.mean_lat_us()
        );
    }

    #[test]
    fn mixed_workload_produces_both_ops() {
        let m = run_uniform(
            FabricKind::TcpStock { gbps: 25.0 },
            1,
            quick(128 * KIB, 0.7),
        );
        let r = m.reads.count() as f64;
        let w = m.writes.count() as f64;
        let frac = r / (r + w);
        assert!((frac - 0.7).abs() < 0.05, "read fraction {frac}");
    }

    #[test]
    fn breakdown_sums_to_latency() {
        let m = run_uniform(
            FabricKind::TcpStock { gbps: 25.0 },
            1,
            quick(128 * KIB, 1.0),
        );
        let b = m.reads.mean_breakdown();
        let lat = m.reads.mean_lat_us();
        // Queue-pair admission waits are not part of the breakdown, so
        // the breakdown may be smaller than end-to-end latency, never
        // larger (beyond rounding).
        assert!(
            b.total_us() <= lat * 1.01,
            "breakdown {} lat {lat}",
            b.total_us()
        );
        assert!(b.total_us() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let m1 = run_uniform(FabricKind::RdmaIb, 2, quick(64 * KIB, 0.5));
        let m2 = run_uniform(FabricKind::RdmaIb, 2, quick(64 * KIB, 0.5));
        assert_eq!(m1.total_ops(), m2.total_ops());
        assert_eq!(m1.total_bytes(), m2.total_bytes());
        assert_eq!(m1.last_completion, m2.last_completion);
    }

    #[test]
    fn queue_depth_increases_bandwidth() {
        let qd1 = run_uniform(
            FabricKind::Shm {
                variant: ShmVariant::ZeroCopy,
            },
            1,
            quick(128 * KIB, 1.0).with_queue_depth(1),
        );
        let qd16 = run_uniform(
            FabricKind::Shm {
                variant: ShmVariant::ZeroCopy,
            },
            1,
            quick(128 * KIB, 1.0).with_queue_depth(16),
        );
        assert!(
            qd16.bandwidth_mib() > qd1.bandwidth_mib() * 3.0,
            "qd1 {} qd16 {}",
            qd1.bandwidth_mib(),
            qd16.bandwidth_mib()
        );
    }

    #[test]
    fn roce_is_bound_by_its_real_ssd() {
        // RoCE runs on physical nodes with one real NVMe-SSD (§5.1): its
        // 100G wire is not the limit, the media is — so it lands *below*
        // IB-56G on the RAM-backed emulated devices.
        let roce = run_uniform(FabricKind::Roce, 1, quick(128 * KIB, 1.0));
        let rdma = run_uniform(FabricKind::RdmaIb, 1, quick(128 * KIB, 1.0));
        assert!(
            roce.bandwidth_mib() < rdma.bandwidth_mib(),
            "roce {} rdma {}",
            roce.bandwidth_mib(),
            rdma.bandwidth_mib()
        );
        let ceiling = SimParams::roce_physical().ssd.bandwidth_ceiling() / (1 << 20) as f64;
        assert!(roce.bandwidth_mib() < ceiling * 1.01);
    }

    #[test]
    fn explicit_busy_poll_budget_changes_tcp_behaviour() {
        let interrupt = run_uniform(
            FabricKind::TcpOpt {
                gbps: 10.0,
                chunk: 128 * KIB,
                busy_poll: SimDuration::ZERO,
            },
            1,
            quick(128 * KIB, 1.0),
        );
        let polled = run_uniform(
            FabricKind::TcpOpt {
                gbps: 10.0,
                chunk: 128 * KIB,
                busy_poll: SimDuration::from_micros(25),
            },
            1,
            quick(128 * KIB, 1.0),
        );
        // Reads with a well-sized budget beat interrupts.
        assert!(
            polled.bandwidth_mib() > interrupt.bandwidth_mib(),
            "polled {} interrupt {}",
            polled.bandwidth_mib(),
            interrupt.bandwidth_mib()
        );
    }

    #[test]
    fn per_stream_bandwidth_sums_to_aggregate() {
        let m = run_uniform(
            FabricKind::TcpStock { gbps: 25.0 },
            4,
            quick(128 * KIB, 1.0),
        );
        let sum: f64 = (0..4).map(|s| m.stream_bandwidth_mib(s)).sum();
        assert!(
            (sum / m.bandwidth_mib() - 1.0).abs() < 1e-9,
            "sum {sum} vs aggregate {}",
            m.bandwidth_mib()
        );
        // Symmetric streams get roughly equal shares.
        for s in 0..4 {
            let share = m.stream_bandwidth_mib(s) / m.bandwidth_mib();
            assert!((share - 0.25).abs() < 0.05, "stream {s} share {share}");
        }
    }

    #[test]
    fn scale_out_topology_runs() {
        // Two streams on separate node pairs (own VMs and wires), one
        // local, one remote — the Fig. 18/19 shape.
        let spec = ExperimentSpec {
            streams: vec![
                StreamConfig {
                    fabric: FabricKind::Adaptive {
                        local: true,
                        tcp_gbps: 25.0,
                    },
                    client_vm: 0,
                    target_vm: 1,
                    wire: 0,
                },
                StreamConfig {
                    fabric: FabricKind::Adaptive {
                        local: false,
                        tcp_gbps: 25.0,
                    },
                    client_vm: 0,
                    target_vm: 2,
                    wire: 1,
                },
            ],
            workload: quick(128 * KIB, 1.0),
            params: SimParams::paper_testbed(),
        };
        let m = run(&spec);
        assert!(m.total_ops() > 0);
        // The local stream moves more bytes than the remote one.
        assert!(m.stream_bandwidth_mib(0) > m.stream_bandwidth_mib(1));
    }
}
