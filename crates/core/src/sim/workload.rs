//! Workload specifications (the SPDK `perf` knobs, §5.1).

use oaf_simnet::time::SimDuration;

/// Access pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Sequential LBAs.
    Sequential,
    /// Uniform-random LBAs.
    Random,
}

/// One stream's workload (the paper: one client ↔ one SSD per stream).
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// I/O size in bytes.
    pub io_size: u64,
    /// Queue depth (outstanding I/Os per stream; paper default 128).
    pub queue_depth: usize,
    /// Fraction of reads in `[0, 1]` (1.0 = pure read, 0.0 = pure write).
    pub read_fraction: f64,
    /// Access pattern.
    pub pattern: Pattern,
    /// Virtual run time.
    pub duration: SimDuration,
    /// RNG seed for op mixing and jitter.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's default configuration: QD 128, 20-second runs (§5.1).
    /// The harness usually shortens the virtual duration — statistics
    /// converge long before 20 virtual seconds.
    pub fn new(io_size: u64, read_fraction: f64) -> Self {
        WorkloadSpec {
            io_size,
            queue_depth: 128,
            read_fraction,
            pattern: Pattern::Sequential,
            duration: SimDuration::from_secs(2),
            seed: 0x5eed,
        }
    }

    /// Builder: queue depth.
    pub fn with_queue_depth(mut self, qd: usize) -> Self {
        self.queue_depth = qd;
        self
    }

    /// Builder: access pattern.
    pub fn with_pattern(mut self, p: Pattern) -> Self {
        self.pattern = p;
        self
    }

    /// Builder: virtual duration.
    pub fn with_duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Validates the specification.
    pub fn validate(&self) {
        assert!(self.io_size > 0, "io_size must be positive");
        assert!(self.queue_depth > 0, "queue depth must be positive");
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "read fraction must be in [0,1]"
        );
        assert!(self.duration > SimDuration::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let w = WorkloadSpec::new(128 * 1024, 0.7)
            .with_queue_depth(64)
            .with_pattern(Pattern::Random)
            .with_duration(SimDuration::from_secs(1))
            .with_seed(9);
        assert_eq!(w.queue_depth, 64);
        assert_eq!(w.pattern, Pattern::Random);
        assert_eq!(w.seed, 9);
        w.validate();
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn bad_mix_rejected() {
        WorkloadSpec::new(4096, 1.5).validate();
    }

    #[test]
    #[should_panic(expected = "io_size")]
    fn zero_io_rejected() {
        WorkloadSpec::new(0, 0.5).validate();
    }
}
