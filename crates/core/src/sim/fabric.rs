//! Per-I/O phase models for every fabric the paper evaluates.
//!
//! Each flow walks one I/O through the contended resources of
//! [`super::world::World`]. Completion times come from the shared
//! calendar servers (so contention, pipelining and saturation emerge);
//! the paper's three-way latency *breakdown* (§3.2) is accumulated from
//! per-phase **service demands** — the time each component takes in
//! isolation — matching the paper's instrumented per-request components:
//! "I/O time" at the device (including device-internal queueing),
//! "communication time" in transit, and "other" (preparation and
//! processing, including the client-side buffer fill and copy-out the
//! zero-copy design removes).

use oaf_simnet::time::{SimDuration, SimTime};
use oaf_simnet::units::{Rate, KIB};
use oaf_ssd::IoOp;

use super::metrics::Breakdown;
use super::params::SimParams;
use super::workload::Pattern;
use super::world::World;

/// The NVMe-oSHM ablation ladder of §4.4.4 / Fig. 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShmVariant {
    /// Naive shared memory: a lock guards the region; conservative flow.
    Baseline,
    /// Lock-free double buffer (§4.4.1); conservative flow.
    LockFree,
    /// + shared-memory flow control (§4.4.2): in-capsule for all sizes.
    FlowCtl,
    /// + zero-copy transport (§4.4.3): the full NVMe-oAF data path.
    ZeroCopy,
}

/// A fabric an experiment stream can run on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FabricKind {
    /// Stock NVMe/TCP: interrupt-driven, 128 KiB chunks.
    TcpStock {
        /// Link speed in Gbps.
        gbps: f64,
    },
    /// NVMe-oAF's optimized TCP mode: tuned chunk size + busy polling
    /// (§4.5). `busy_poll == 0` means interrupt mode.
    TcpOpt {
        /// Link speed in Gbps.
        gbps: f64,
        /// Application-level chunk size in bytes.
        chunk: u64,
        /// Busy-poll budget (zero = interrupts).
        busy_poll: SimDuration,
    },
    /// NVMe/RDMA over 56 Gbps InfiniBand FDR through SR-IOV.
    RdmaIb,
    /// NVMe/RoCE over 100 Gbps on physical nodes (the paper's upper
    /// bound; pair with [`SimParams::roce_physical`]).
    Roce,
    /// NVMe-oSHM: co-located, payload over shared memory.
    Shm {
        /// Which rung of the ablation ladder.
        variant: ShmVariant,
    },
    /// The adaptive fabric: locality decides between the full
    /// shared-memory path and optimized TCP (§4.2).
    Adaptive {
        /// Whether client and target share a host.
        local: bool,
        /// TCP link speed for the remote case.
        tcp_gbps: f64,
    },
}

impl FabricKind {
    /// The concrete fabric after adaptive channel selection.
    pub fn resolve(self) -> FabricKind {
        match self {
            FabricKind::Adaptive { local: true, .. } => FabricKind::Shm {
                variant: ShmVariant::ZeroCopy,
            },
            FabricKind::Adaptive {
                local: false,
                tcp_gbps,
            } => {
                // The adaptive fabric tunes its TCP fallback per link:
                // chunk size from the analytic selector (§4.5, Fig. 9)
                // and the busy-poll controller's steady-state budget
                // (see `tcp_opt::BusyPollController`).
                let selector = crate::tcp_opt::ChunkSelector::new(crate::tcp_opt::ChunkCostModel {
                    per_chunk_cpu: SimDuration::from_micros(12),
                    goodput: oaf_simnet::units::Rate::gbps(tcp_gbps).scaled(0.94),
                    mem_quad_us_at_512k: 14.0,
                });
                let mix = [128 * KIB, 512 * KIB, 1024 * KIB, 2048 * KIB];
                FabricKind::TcpOpt {
                    gbps: tcp_gbps,
                    chunk: selector.select(&mix),
                    busy_poll: SimDuration::from_micros(50),
                }
            }
            other => other,
        }
    }

    /// Link speed this fabric needs, if any: `(gbps, is_rdma)`.
    pub fn wire_gbps(self) -> Option<(f64, bool)> {
        match self.resolve() {
            FabricKind::TcpStock { gbps } => Some((gbps, false)),
            FabricKind::TcpOpt { gbps, .. } => Some((gbps, false)),
            FabricKind::RdmaIb => Some((56.0, true)),
            FabricKind::Roce => Some((100.0, true)),
            FabricKind::Shm { .. } => None,
            FabricKind::Adaptive { .. } => unreachable!("resolved above"),
        }
    }
}

/// Outcome of one simulated I/O.
#[derive(Clone, Copy, Debug)]
pub struct IoOutcome {
    /// Completion time as seen by the client.
    pub done: SimTime,
    /// Latency component attribution (service-level, §3.2).
    pub breakdown: Breakdown,
}

/// Identifies a stream's resources inside the world.
#[derive(Clone, Copy, Debug)]
pub struct StreamRes {
    /// Index of the client VM in `world.vms`.
    pub client_vm: usize,
    /// Index of the target VM in `world.vms`.
    pub target_vm: usize,
    /// Pinned core index within each VM.
    pub core: usize,
    /// Wire index in `world.wires`.
    pub wire: usize,
    /// SSD / per-stream state index.
    pub stream: usize,
}

fn us(d: SimDuration) -> f64 {
    d.as_micros_f64()
}

/// Per-chunk app-level processing cost: fixed + per-KiB.
fn chunk_app_cost(p: &SimParams, bytes: u64) -> SimDuration {
    p.tcp_chunk_app_base
        + SimDuration::from_nanos(p.tcp_chunk_app_per_kib.as_nanos() * bytes / 1024)
}

/// Per-chunk softirq processing cost: fixed + per-KiB.
fn chunk_softirq_cost(p: &SimParams, bytes: u64) -> SimDuration {
    p.tcp_chunk_softirq_base
        + SimDuration::from_nanos(p.tcp_chunk_softirq_per_kib.as_nanos() * bytes / 1024)
}

/// Buffer-pool pressure at the receiver: quadratic in the *configured*
/// chunk size (pool buffers are chunk-sized, §4.5), referenced to 512 KiB.
fn chunk_pool_penalty(p: &SimParams, chunk: u64) -> SimDuration {
    let ratio = chunk as f64 / (512.0 * 1024.0);
    SimDuration::from_secs_f64(p.chunk_pool_quad.as_secs_f64() * ratio * ratio)
}

/// Sentinel budget meaning "dedicated poll-mode reactor" (no kernel
/// busy-poll budget semantics; the core polls continuously).
pub(crate) const REACTOR_POLL: SimDuration = SimDuration::from_nanos(u64::MAX);

/// Message class for busy-poll wait modelling (§4.5).
#[derive(Clone, Copy, PartialEq, Eq)]
enum WaitClass {
    ReadLike,
    WriteLike,
}

/// Receiver wake cost under a busy-poll budget (`ZERO` = interrupts).
/// `wait` is the time between posting the receive and the data arriving,
/// drawn per message from the class's distribution.
fn wake(p: &SimParams, budget: SimDuration, wait: SimDuration) -> (SimDuration, SimDuration) {
    if budget == SimDuration::ZERO {
        return (p.interrupt_extra, p.interrupt_cpu);
    }
    if budget == REACTOR_POLL {
        // Dedicated poll-mode reactor (SPDK): arrivals are noticed on the
        // next poll-loop iteration, no spin budget to burn.
        return (p.poll_hit_extra, p.reactor_poll_cpu);
    }
    let waste = SimDuration::from_secs_f64(budget.as_secs_f64() * p.poll_waste_frac);
    if wait <= budget {
        (p.poll_hit_extra, waste)
    } else {
        // Burned the budget, then slept and paid the interrupt plus the
        // softirq re-arm/reschedule penalty — the paper's explanation
        // for 25 µs hurting writes (Fig. 10).
        let rearm = SimDuration::from_secs_f64(budget.as_secs_f64() * 0.5);
        (p.interrupt_extra + rearm, budget + p.interrupt_cpu)
    }
}

/// Standard normal CDF (Abramowitz–Stegun 7.1.26 via erf approximation).
fn normal_cdf(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let d = 0.3989422804014327 * (-z * z / 2.0).exp();
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let p = 1.0 - d * poly;
    if z >= 0.0 {
        p
    } else {
        1.0 - p
    }
}

/// Expected wake *latency* for a class under a budget — used when a
/// phase's duration must be estimated up front (the per-connection R2T
/// rendezvous occupancy).
fn expected_wake_extra(p: &SimParams, budget: SimDuration, median: SimDuration) -> SimDuration {
    if budget == SimDuration::ZERO {
        return p.interrupt_extra;
    }
    let z = (budget.as_secs_f64() / median.as_secs_f64()).ln() / p.wait_sigma;
    let hit = normal_cdf(z);
    let rearm = budget.as_secs_f64() * 0.5;
    SimDuration::from_secs_f64(
        hit * p.poll_hit_extra.as_secs_f64()
            + (1.0 - hit) * (p.interrupt_extra.as_secs_f64() + rearm),
    )
}

/// Draws a per-message receive wait for the given class.
fn draw_wait(world: &mut World, stream: usize, class: WaitClass) -> SimDuration {
    let median = match class {
        WaitClass::ReadLike => world.params.wait_read_median,
        WaitClass::WriteLike => world.params.wait_write_median,
    };
    let sigma = world.params.wait_sigma;
    let rng = &mut world.rngs[stream];
    SimDuration::from_secs_f64(rng.lognormal_median(median.as_secs_f64(), sigma))
}

/// Direction of a hop.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Hop {
    C2T,
    T2C,
}

/// One control PDU over the TCP connection (or the loopback hop for
/// co-located pairs when `use_wire` is false). Returns `(delivered,
/// comm_service_us)`.
fn ctl(
    world: &mut World,
    r: StreamRes,
    hop: Hop,
    now: SimTime,
    use_wire: bool,
    dst_budget: SimDuration,
    class: WaitClass,
) -> (SimTime, f64) {
    let p_ctl_app = world.params.tcp_ctl_app;
    let p_ctl_sirq = world.params.tcp_ctl_softirq;
    let bytes = world.params.ctl_size + world.params.tcp_header;
    let loopback = world.params.shm_ctl_latency;
    let (src_vm, dst_vm) = match hop {
        Hop::C2T => (r.client_vm, r.target_vm),
        Hop::T2C => (r.target_vm, r.client_vm),
    };
    let (_, t1) = world.vms[src_vm].cores[r.core].submit(now, p_ctl_app);
    let (_, t2) = world.vms[src_vm].softirq.submit(t1, p_ctl_sirq);
    // Control PDUs are latency-only on the wire: reserving capacity for
    // a few hundred bytes would fragment the bulk-data schedule.
    let (t3, hop_latency) = if use_wire {
        let t = world.wires[r.wire].transmit_latency_only(t2, bytes);
        (t, t.saturating_since(t2))
    } else {
        (t2 + loopback, loopback)
    };
    let (_, t4) = world.vms[dst_vm].softirq.submit(t3, p_ctl_sirq);
    let wait = draw_wait(world, r.stream, class);
    let (extra, cpu) = wake(&world.params, dst_budget, wait);
    let (_, t5) = world.vms[dst_vm].cores[r.core].submit(t4 + extra, cpu + p_ctl_app);
    let svc = us(p_ctl_app.mul_u64(2)) + us(p_ctl_sirq.mul_u64(2)) + us(hop_latency) + us(extra);
    (t5, svc)
}

/// Bulk payload over TCP, chunked at `chunk`. `src_copy`/`dst_copy`
/// control whether each side performs its payload copy here (the write
/// path performs the client copy-out separately so it can be attributed
/// to "other"). Returns `(delivered, comm_service_us)`.
#[allow(clippy::too_many_arguments)]
fn data_tcp(
    world: &mut World,
    r: StreamRes,
    hop: Hop,
    now: SimTime,
    bytes: u64,
    chunk: u64,
    src_copy: bool,
    dst_copy: bool,
    dst_budget: SimDuration,
    class: WaitClass,
) -> (SimTime, f64) {
    let p = world.params.clone();
    let (src_vm, dst_vm, dir, src_rate, dst_rate) = match hop {
        Hop::C2T => (
            r.client_vm,
            r.target_vm,
            oaf_simnet::link::Direction::H2C,
            p.copy_rate_client,
            p.copy_rate_target,
        ),
        Hop::T2C => (
            r.target_vm,
            r.client_vm,
            oaf_simnet::link::Direction::C2H,
            p.copy_rate_target,
            p.copy_rate_client,
        ),
    };
    let chunks = oaf_simnet::units::chunks_for(bytes, chunk);
    let mut remaining = bytes;
    let mut last = now;
    let mut svc = 0.0;
    for _ in 0..chunks {
        let piece = remaining.min(chunk).max(1);
        remaining = remaining.saturating_sub(piece);
        let app = chunk_app_cost(&p, piece);
        let sirq = chunk_softirq_cost(&p, piece);
        let pool = chunk_pool_penalty(&p, chunk);
        let (_, t1) = world.vms[src_vm].cores[r.core].submit(now, app);
        let t1b = if src_copy {
            svc += us(copy_service(&p, piece, src_rate));
            copy(world, src_vm, r, t1, piece, src_rate)
        } else {
            t1
        };
        let (_, t2) = world.vms[src_vm].softirq.submit(t1b, sirq);
        let t3 = world.wires[r.wire].transmit(t2, dir, piece + p.tcp_header);
        let (_, t4) = world.vms[dst_vm].softirq.submit(t3, sirq);
        let t4b = if dst_copy {
            svc += us(copy_service(&p, piece, dst_rate));
            copy(world, dst_vm, r, t4, piece, dst_rate)
        } else {
            t4
        };
        let (_, t5) = world.vms[dst_vm].cores[r.core].submit(t4b, app + pool);
        last = last.max(t5);
        svc += us(app.mul_u64(2)) + us(sirq.mul_u64(2)) + us(pool);
        svc += world.wires[r.wire]
            .params
            .serialize_time(piece + p.tcp_header)
            .as_micros_f64()
            + world.wires[r.wire].params.propagation.as_micros_f64();
    }
    // One wake at the receiving application per I/O.
    let wait = draw_wait(world, r.stream, class);
    let (extra, cpu) = wake(&p, dst_budget, wait);
    let (_, done) = world.vms[dst_vm].cores[r.core].submit(last + extra, cpu);
    svc += us(extra);
    (done, svc)
}

/// Service time of a payload copy at a given per-core rate.
fn copy_service(p: &SimParams, bytes: u64, rate: Rate) -> SimDuration {
    p.copy_cpu + SimDuration::from_secs_f64(rate.transfer_secs(bytes))
}

/// A payload copy constrained by the copying core and the VM memory bus.
fn copy(
    world: &mut World,
    vm: usize,
    r: StreamRes,
    now: SimTime,
    bytes: u64,
    rate: Rate,
) -> SimTime {
    let p = world.params.clone();
    let rng = &mut world.rngs[r.stream];
    let vmh = &mut world.vms[vm];
    World::copy_payload(
        vmh,
        r.core,
        now,
        bytes,
        rate,
        p.membus_rate,
        p.copy_cpu,
        p.copy_tail_prob,
        p.copy_tail_cost,
        rng,
    )
}

/// The device phase. Returns `(completion, io_time_us)` where the I/O
/// time spans submission to device completion (including device-internal
/// queueing — the paper's "time remote SSD takes to execute an I/O
/// request submitted by NVMe-oF target").
fn ssd(
    world: &mut World,
    r: StreamRes,
    now: SimTime,
    op: IoOp,
    bytes: u64,
    pattern: Pattern,
) -> (SimTime, f64) {
    let penalty = world.params.random_penalty;
    let base = match op {
        IoOp::Read => world.params.ssd.read_base,
        IoOp::Write => world.params.ssd.write_base,
    };
    let mut done = world.ssds[r.stream].submit(now, op, bytes);
    if pattern == Pattern::Random && penalty > 1.0 {
        done += SimDuration::from_secs_f64(base.as_secs_f64() * (penalty - 1.0));
    }
    let io_us = us(done.saturating_since(now));
    (done, io_us)
}

/// Simulates one I/O on `fabric`, starting (submitted by the
/// application) at `start`.
pub fn simulate_io(
    world: &mut World,
    fabric: FabricKind,
    r: StreamRes,
    op: IoOp,
    bytes: u64,
    pattern: Pattern,
    start: SimTime,
) -> IoOutcome {
    match fabric.resolve() {
        FabricKind::TcpStock { .. } => {
            let chunk = world.params.chunk_size;
            tcp_flow(
                world,
                r,
                op,
                bytes,
                pattern,
                start,
                chunk,
                SimDuration::ZERO,
            )
        }
        FabricKind::TcpOpt {
            chunk, busy_poll, ..
        } => tcp_flow(world, r, op, bytes, pattern, start, chunk, busy_poll),
        FabricKind::RdmaIb | FabricKind::Roce => rdma_flow(world, r, op, bytes, pattern, start),
        FabricKind::Shm { variant } => shm_flow(world, r, op, bytes, pattern, start, variant),
        FabricKind::Adaptive { .. } => unreachable!("resolved"),
    }
}

/// NVMe/TCP flow (stock or optimized).
#[allow(clippy::too_many_arguments)]
fn tcp_flow(
    world: &mut World,
    r: StreamRes,
    op: IoOp,
    bytes: u64,
    pattern: Pattern,
    start: SimTime,
    chunk: u64,
    budget: SimDuration,
) -> IoOutcome {
    let p = world.params.clone();
    let in_capsule = 8 * KIB;
    let mut bd = Breakdown::default();
    match op {
        IoOp::Read => {
            // prep [other]
            let (_, t1) = world.vms[r.client_vm].cores[r.core].submit(start, p.prep);
            bd.other_us += us(p.prep);
            // CMD [comm]
            let (t2, c) = ctl(world, r, Hop::C2T, t1, true, budget, WaitClass::ReadLike);
            bd.comm_us += c;
            // device [io]
            let (t3, io) = ssd(world, r, t2, IoOp::Read, bytes, pattern);
            bd.io_us += io;
            // data + RESP [comm]
            let (t4, c) = data_tcp(
                world,
                r,
                Hop::T2C,
                t3,
                bytes,
                chunk,
                true,
                true,
                budget,
                WaitClass::ReadLike,
            );
            bd.comm_us += c;
            let (t5, c) = ctl(world, r, Hop::T2C, t4, true, budget, WaitClass::ReadLike);
            bd.comm_us += c;
            // completion processing [other]
            let (_, t6) = world.vms[r.client_vm].cores[r.core].submit(t5, p.complete);
            bd.other_us += us(p.complete);
            IoOutcome {
                done: t6,
                breakdown: bd,
            }
        }
        IoOp::Write => {
            // prep + application buffer fill [other]
            let fill = SimDuration::from_secs_f64(p.fill_rate.transfer_secs(bytes));
            let (_, t1) = world.vms[r.client_vm].cores[r.core].submit(start, p.prep + fill);
            bd.other_us += us(p.prep + fill);
            let t_data_start = if bytes <= in_capsule {
                // In-capsule: client copy-out [other], then CMD+data in
                // one exchange [comm].
                bd.other_us += us(copy_service(&p, bytes, p.copy_rate_client));
                copy(world, r.client_vm, r, t1, bytes, p.copy_rate_client)
            } else {
                // Conservative: CMD → R2T rendezvous [comm], then client
                // copy-out [other]. The per-connection R2T data phase is
                // serialized (one outstanding transfer per connection in
                // the SPDK target of the paper's vintage), which is what
                // keeps NVMe/TCP writes latency-sensitive (Fig. 10).
                let r2t_occ = {
                    let ctl_fixed = SimDuration::from_micros(14).mul_u64(2);
                    let wakes = expected_wake_extra(&p, budget, p.wait_write_median).mul_u64(2);
                    // Stack processing of the first chunk; the buffer
                    // frees once the payload is on the wire, so wire
                    // serialization is not part of the occupancy.
                    let data_est = chunk_app_cost(&p, chunk.min(bytes))
                        + chunk_softirq_cost(&p, chunk.min(bytes));
                    copy_service(&p, bytes, p.copy_rate_client) + ctl_fixed + wakes + data_est
                };
                let (grant, _) = world.slots[r.stream].submit(t1, r2t_occ);
                let t1g = grant.max(t1);
                let (t2, c1) = ctl(world, r, Hop::C2T, t1g, true, budget, WaitClass::WriteLike);
                let (t3, c2) = ctl(world, r, Hop::T2C, t2, true, budget, WaitClass::WriteLike);
                bd.comm_us += c1 + c2;
                bd.other_us += us(copy_service(&p, bytes, p.copy_rate_client));
                copy(world, r.client_vm, r, t3, bytes, p.copy_rate_client)
            };
            // H2C data (client copy already done above) [comm]
            let (t4, c) = data_tcp(
                world,
                r,
                Hop::C2T,
                t_data_start,
                bytes,
                chunk,
                false,
                true,
                budget,
                WaitClass::WriteLike,
            );
            bd.comm_us += c;
            // device [io]
            let (t5, io) = ssd(world, r, t4, IoOp::Write, bytes, pattern);
            bd.io_us += io;
            // RESP [comm]
            let (t6, c) = ctl(world, r, Hop::T2C, t5, true, budget, WaitClass::WriteLike);
            bd.comm_us += c;
            // completion [other]
            let (_, t7) = world.vms[r.client_vm].cores[r.core].submit(t6, p.complete);
            bd.other_us += us(p.complete);
            IoOutcome {
                done: t7,
                breakdown: bd,
            }
        }
    }
}

/// NVMe/RDMA flow: one-sided data, memory-registration tails, no copies.
fn rdma_flow(
    world: &mut World,
    r: StreamRes,
    op: IoOp,
    bytes: u64,
    pattern: Pattern,
    start: SimTime,
) -> IoOutcome {
    let p = world.params.clone();
    let msg_cpu = p.rdma.per_msg_cpu;
    let hdr = p.rdma.header_bytes;
    let mut bd = Breakdown::default();
    // prep (+ fill for writes) [other]
    let fill = match op {
        IoOp::Write => SimDuration::from_secs_f64(p.fill_rate.transfer_secs(bytes)),
        IoOp::Read => SimDuration::ZERO,
    };
    let (_, t1) = world.vms[r.client_vm].cores[r.core].submit(start, p.prep + fill);
    bd.other_us += us(p.prep + fill);
    // Memory registration, if this buffer is cold (tail source, §5.4)
    // [comm].
    let reg = {
        let rng = &mut world.rngs[r.stream];
        world.mr[r.stream].charge(rng)
    };
    let (_, t1b) = world.vms[r.client_vm].cores[r.core].submit(t1, reg);
    bd.comm_us += us(reg);
    // Command capsule (RDMA SEND) [comm].
    let (_, tpost) = world.vms[r.client_vm].cores[r.core].submit(t1b, msg_cpu);
    let tland = world.wires[r.wire].transmit_latency_only(tpost, p.ctl_size + hdr);
    let (_, t2) = world.vms[r.target_vm].cores[r.core].submit(tland, msg_cpu);
    bd.comm_us += us(msg_cpu.mul_u64(2)) + us(tland.saturating_since(tpost));
    // One-sided data movement and the device phase. Reads: SSD first,
    // then RDMA WRITE of the data to the client's registered buffer.
    // Writes: the target RDMA-READs the payload *before* submitting.
    let data_wire_svc = world.wires[r.wire].params.serialize_time(bytes + hdr)
        + world.wires[r.wire].params.propagation;
    let tdata = match op {
        IoOp::Read => {
            let (t3, io) = ssd(world, r, t2, IoOp::Read, bytes, pattern);
            bd.io_us += io;
            let (_, tp) = world.vms[r.target_vm].cores[r.core].submit(t3, msg_cpu);
            let td =
                world.wires[r.wire].transmit(tp, oaf_simnet::link::Direction::C2H, bytes + hdr);
            bd.comm_us += us(msg_cpu) + us(data_wire_svc);
            td
        }
        IoOp::Write => {
            let (_, tp) = world.vms[r.target_vm].cores[r.core].submit(t2, msg_cpu);
            let tfetch =
                world.wires[r.wire].transmit(tp, oaf_simnet::link::Direction::H2C, bytes + hdr);
            bd.comm_us += us(msg_cpu) + us(data_wire_svc);
            let (t3, io) = ssd(world, r, tfetch, IoOp::Write, bytes, pattern);
            bd.io_us += io;
            t3
        }
    };
    // Completion capsule [comm].
    let (_, tp2) = world.vms[r.target_vm].cores[r.core].submit(tdata, msg_cpu);
    let tl2 = world.wires[r.wire].transmit_latency_only(tp2, p.ctl_size + hdr);
    let (_, t4) = world.vms[r.client_vm].cores[r.core].submit(tl2, msg_cpu);
    bd.comm_us += us(msg_cpu.mul_u64(2)) + us(tl2.saturating_since(tp2));
    let (_, t5) = world.vms[r.client_vm].cores[r.core].submit(t4, p.complete);
    bd.other_us += us(p.complete);
    IoOutcome {
        done: t5,
        breakdown: bd,
    }
}

/// NVMe-oSHM flow (all four ablation variants).
fn shm_flow(
    world: &mut World,
    r: StreamRes,
    op: IoOp,
    bytes: u64,
    pattern: Pattern,
    start: SimTime,
    variant: ShmVariant,
) -> IoOutcome {
    let p = world.params.clone();
    // The co-located control path is serviced by the SPDK-style poll-mode
    // reactors on both sides (§4.6): wakes are a poll-loop iteration.
    let budget = REACTOR_POLL;
    let conservative = matches!(variant, ShmVariant::Baseline | ShmVariant::LockFree);
    let locked = variant == ShmVariant::Baseline;
    let zero_copy = variant == ShmVariant::ZeroCopy;
    let mut bd = Breakdown::default();

    // A copy through the region; under the baseline it holds the channel
    // lock for the full duration (§4.4.4), serializing both directions.
    let shm_copy = |world: &mut World, vm: usize, now: SimTime, rate: Rate| -> SimTime {
        let service = SimDuration::from_secs_f64(rate.transfer_secs(bytes));
        let tail = {
            let rng = &mut world.rngs[r.stream];
            let mut extra = SimDuration::ZERO;
            if p.copy_tail_prob > 0.0 && rng.chance(p.copy_tail_prob) {
                extra += p.copy_tail_cost;
            }
            if locked && rng.chance(p.shm_preempt_prob) {
                extra += p.shm_preempt_cost;
            }
            extra
        };
        if locked {
            // The lock serializes both directions' copies for the whole
            // copy duration; the memory bus is charged in parallel so
            // the aggregate ceiling still applies.
            let (lock_start, lock_done) =
                world.locks[r.stream].submit(now, p.shm_lock_overhead + service + tail);
            let bus_service = SimDuration::from_secs_f64(p.membus_rate.transfer_secs(bytes));
            let (_, bus_done) = world.vms[vm].membus.submit(lock_start, bus_service);
            lock_done.max(bus_done)
        } else {
            let core_service = p.copy_cpu + service + tail;
            let bus_service = SimDuration::from_secs_f64(p.membus_rate.transfer_secs(bytes));
            let (_, core_done) = world.vms[vm].cores[r.core].submit(now, core_service);
            let (_, bus_done) = world.vms[vm].membus.submit(now, bus_service);
            core_done.max(bus_done)
        }
    };
    let copy_svc_t = copy_service(&p, bytes, p.copy_rate_target);
    let copy_svc_c = copy_service(&p, bytes, p.copy_rate_client);
    // Analytic per-payload channel occupancy for the conservative
    // variants (grant-gating; see below).
    let conservative_occ = copy_svc_t + copy_svc_c + SimDuration::from_micros(45);

    match op {
        IoOp::Read => {
            let (_, t1) = world.vms[r.client_vm].cores[r.core].submit(start, p.prep);
            bd.other_us += us(p.prep);
            // CMD over loopback control path [comm].
            let (t2, c) = ctl(world, r, Hop::C2T, t1, false, budget, WaitClass::ReadLike);
            bd.comm_us += c;
            // Device [io].
            let (t3, io) = ssd(world, r, t2, IoOp::Read, bytes, pattern);
            bd.io_us += io;
            // Conservative variants predate the per-queue-entry slot
            // partitioning (§4.4.1 + §4.4.2): one payload occupies the
            // un-partitioned channel from copy-in to the client's ack,
            // so payloads serialize. The grant gates the data phase.
            let t3 = if conservative {
                let (grant, _) = world.slots[r.stream].submit(t3, conservative_occ);
                grant.max(t3)
            } else {
                t3
            };
            // Target copies payload into the region [comm].
            let t4 = shm_copy(world, r.target_vm, t3, p.copy_rate_target);
            bd.comm_us += us(copy_svc_t);
            // Slot notification (doubles as completion under optimized
            // flow control) [comm].
            let (t5, c) = ctl(world, r, Hop::T2C, t4, false, budget, WaitClass::ReadLike);
            bd.comm_us += c;
            // Conservative flow needs the consumed-ack + separate RESP
            // round (§4.4.2 analog for reads).
            let t5 = if conservative {
                let (ta, c1) = ctl(world, r, Hop::C2T, t5, false, budget, WaitClass::ReadLike);
                let (tb, c2) = ctl(world, r, Hop::T2C, ta, false, budget, WaitClass::ReadLike);
                bd.comm_us += c1 + c2;
                tb
            } else {
                t5
            };
            // Client copy-out — eliminated by zero-copy leases [comm].
            let t6 = if zero_copy {
                t5
            } else {
                bd.comm_us += us(copy_svc_c);
                shm_copy(world, r.client_vm, t5, p.copy_rate_client)
            };
            let (_, t7) = world.vms[r.client_vm].cores[r.core].submit(t6, p.complete);
            bd.other_us += us(p.complete);
            IoOutcome {
                done: t7,
                breakdown: bd,
            }
        }
        IoOp::Write => {
            let fill = SimDuration::from_secs_f64(p.fill_rate.transfer_secs(bytes));
            let (_, t1) = world.vms[r.client_vm].cores[r.core].submit(start, p.prep + fill);
            bd.other_us += us(p.prep + fill);
            let t_ready = if conservative {
                // Fig. 7: CMD ① → R2T ② [comm], then copy-in ③ [other],
                // then H2C notify ④ [comm]. The un-partitioned channel
                // admits one payload at a time (grant-gated).
                let (t2, c1) = ctl(world, r, Hop::C2T, t1, false, budget, WaitClass::WriteLike);
                let (t3, c2) = ctl(world, r, Hop::T2C, t2, false, budget, WaitClass::WriteLike);
                bd.comm_us += c1 + c2;
                let t3 = {
                    let (grant, _) = world.slots[r.stream].submit(t3, conservative_occ);
                    grant.max(t3)
                };
                bd.other_us += us(copy_svc_c);
                let t3b = shm_copy(world, r.client_vm, t3, p.copy_rate_client);
                let (t4, c3) = ctl(world, r, Hop::C2T, t3b, false, budget, WaitClass::WriteLike);
                bd.comm_us += c3;
                t4
            } else {
                // §4.4.2: copy (or build, for zero-copy) the payload in
                // the region first, then a single CMD carries the slot.
                let t1b = if zero_copy {
                    t1 // the application built the data in place
                } else {
                    bd.other_us += us(copy_svc_c);
                    shm_copy(world, r.client_vm, t1, p.copy_rate_client)
                };
                let (t2, c) = ctl(world, r, Hop::C2T, t1b, false, budget, WaitClass::WriteLike);
                bd.comm_us += c;
                t2
            };
            // Target copies region → DPDK buffer (the unavoidable copy,
            // §4.4.3) [comm].
            let t5 = shm_copy(world, r.target_vm, t_ready, p.copy_rate_target);
            bd.comm_us += us(copy_svc_t);
            // Device [io].
            let (t6, io) = ssd(world, r, t5, IoOp::Write, bytes, pattern);
            bd.io_us += io;
            // RESP [comm].
            let (t7, c) = ctl(world, r, Hop::T2C, t6, false, budget, WaitClass::WriteLike);
            bd.comm_us += c;
            let (_, t8) = world.vms[r.client_vm].cores[r.core].submit(t7, p.complete);
            bd.other_us += us(p.complete);
            IoOutcome {
                done: t8,
                breakdown: bd,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_resolves_by_locality() {
        assert_eq!(
            FabricKind::Adaptive {
                local: true,
                tcp_gbps: 25.0
            }
            .resolve(),
            FabricKind::Shm {
                variant: ShmVariant::ZeroCopy
            }
        );
        match (FabricKind::Adaptive {
            local: false,
            tcp_gbps: 25.0,
        })
        .resolve()
        {
            FabricKind::TcpOpt { gbps, chunk, .. } => {
                assert_eq!(gbps, 25.0);
                assert_eq!(chunk, 512 * KIB);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wire_requirements() {
        assert_eq!(
            FabricKind::Shm {
                variant: ShmVariant::ZeroCopy
            }
            .wire_gbps(),
            None
        );
        assert_eq!(FabricKind::RdmaIb.wire_gbps(), Some((56.0, true)));
        assert_eq!(
            FabricKind::TcpStock { gbps: 10.0 }.wire_gbps(),
            Some((10.0, false))
        );
    }

    #[test]
    fn wake_costs() {
        let p = SimParams::paper_testbed();
        // Interrupt mode.
        let (extra, cpu) = wake(&p, SimDuration::ZERO, SimDuration::from_micros(500));
        assert_eq!(extra, p.interrupt_extra);
        assert_eq!(cpu, p.interrupt_cpu);
        // Poll hit: near-free latency, small waste.
        let (extra, cpu) = wake(
            &p,
            SimDuration::from_micros(50),
            SimDuration::from_micros(10),
        );
        assert_eq!(extra, p.poll_hit_extra);
        assert!(cpu < SimDuration::from_micros(10));
        // Poll miss: worse than a plain interrupt on both axes.
        let (extra, cpu) = wake(
            &p,
            SimDuration::from_micros(25),
            SimDuration::from_micros(90),
        );
        assert!(extra > p.interrupt_extra);
        assert!(cpu >= SimDuration::from_micros(25));
    }

    #[test]
    fn chunk_costs_scale_with_size() {
        let p = SimParams::paper_testbed();
        assert!(chunk_app_cost(&p, 128 * KIB) > chunk_app_cost(&p, 4 * KIB).mul_u64(2));
        assert!(chunk_softirq_cost(&p, 128 * KIB) > chunk_softirq_cost(&p, 4 * KIB));
        // Pool penalty is quadratic: a 2 MiB chunk costs 16x the 512 KiB
        // reference.
        let q512 = chunk_pool_penalty(&p, 512 * KIB);
        let q2m = chunk_pool_penalty(&p, 2048 * KIB);
        let ratio = q2m.as_secs_f64() / q512.as_secs_f64();
        assert!((ratio - 16.0).abs() < 0.01, "ratio {ratio}");
    }
}
