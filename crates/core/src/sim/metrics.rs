//! Experiment measurements: bandwidth, latency, breakdowns, tails.

use oaf_simnet::stats::{LatencyHistogram, Percentiles, Summary};
use oaf_simnet::time::{SimDuration, SimTime};
use oaf_simnet::units::MIB;

/// The three latency components of the paper's breakdown (§3.2, Figs. 3
/// and 12): device time, transit time, and request preparation/processing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// "I/O time": the SSD executing the command.
    pub io_us: f64,
    /// "Communication time": in transit / in the network (or shared
    /// memory channel).
    pub comm_us: f64,
    /// "Other": preparation and processing at client and target.
    pub other_us: f64,
}

impl Breakdown {
    /// Sum of all components.
    pub fn total_us(&self) -> f64 {
        self.io_us + self.comm_us + self.other_us
    }
}

/// Per-op-kind accumulator.
#[derive(Clone, Debug, Default)]
pub struct OpMetrics {
    /// Latency summary in microseconds.
    pub lat_us: Summary,
    /// Latency histogram in nanoseconds.
    pub hist: LatencyHistogram,
    /// Accumulated breakdown sums (divide by count for means).
    pub io_sum_us: f64,
    /// See [`OpMetrics::io_sum_us`].
    pub comm_sum_us: f64,
    /// See [`OpMetrics::io_sum_us`].
    pub other_sum_us: f64,
    /// Payload bytes moved.
    pub bytes: u64,
}

impl OpMetrics {
    fn record(&mut self, lat: SimDuration, b: Breakdown, bytes: u64) {
        self.lat_us.record(lat.as_micros_f64());
        self.hist.record_duration(lat);
        self.io_sum_us += b.io_us;
        self.comm_sum_us += b.comm_us;
        self.other_sum_us += b.other_us;
        self.bytes += bytes;
    }

    /// Number of operations.
    pub fn count(&self) -> u64 {
        self.lat_us.count()
    }

    /// Mean latency in microseconds.
    pub fn mean_lat_us(&self) -> f64 {
        self.lat_us.mean().unwrap_or(0.0)
    }

    /// Mean breakdown.
    pub fn mean_breakdown(&self) -> Breakdown {
        let n = self.count().max(1) as f64;
        Breakdown {
            io_us: self.io_sum_us / n,
            comm_us: self.comm_sum_us / n,
            other_us: self.other_sum_us / n,
        }
    }

    /// Tail percentiles (µs), `None` when empty.
    pub fn percentiles(&self) -> Option<Percentiles> {
        Percentiles::from_histogram_us(&self.hist)
    }
}

/// Full metrics of one experiment run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Read-side metrics.
    pub reads: OpMetrics,
    /// Write-side metrics.
    pub writes: OpMetrics,
    /// Combined latency histogram (for mixed-workload tails, Fig. 13).
    pub all_hist: LatencyHistogram,
    /// Last completion time observed.
    pub last_completion: SimTime,
    /// Per-stream payload bytes.
    pub stream_bytes: Vec<u64>,
}

impl Metrics {
    /// Creates metrics for `streams` streams.
    pub fn new(streams: usize) -> Self {
        Metrics {
            stream_bytes: vec![0; streams],
            ..Metrics::default()
        }
    }

    /// Records one completed I/O.
    pub fn record(
        &mut self,
        stream: usize,
        is_read: bool,
        lat: SimDuration,
        breakdown: Breakdown,
        bytes: u64,
        completed: SimTime,
    ) {
        let side = if is_read {
            &mut self.reads
        } else {
            &mut self.writes
        };
        side.record(lat, breakdown, bytes);
        self.all_hist.record_duration(lat);
        self.last_completion = self.last_completion.max(completed);
        self.stream_bytes[stream] += bytes;
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.reads.bytes + self.writes.bytes
    }

    /// Total operations.
    pub fn total_ops(&self) -> u64 {
        self.reads.count() + self.writes.count()
    }

    /// Aggregate bandwidth in MiB/s over the run.
    pub fn bandwidth_mib(&self) -> f64 {
        let secs = self.last_completion.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 / MIB as f64 / secs
    }

    /// One stream's bandwidth in MiB/s.
    pub fn stream_bandwidth_mib(&self, stream: usize) -> f64 {
        let secs = self.last_completion.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.stream_bytes[stream] as f64 / MIB as f64 / secs
    }

    /// Mean latency across reads and writes, µs.
    pub fn mean_lat_us(&self) -> f64 {
        let n = self.total_ops();
        if n == 0 {
            return 0.0;
        }
        (self.reads.lat_us.sum() + self.writes.lat_us.sum()) / n as f64
    }

    /// Tail percentiles over all ops.
    pub fn percentiles(&self) -> Option<Percentiles> {
        Percentiles::from_histogram_us(&self.all_hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut m = Metrics::new(2);
        let b = Breakdown {
            io_us: 50.0,
            comm_us: 30.0,
            other_us: 20.0,
        };
        m.record(
            0,
            true,
            SimDuration::from_micros(100),
            b,
            4096,
            SimTime::from_secs(1),
        );
        m.record(
            1,
            false,
            SimDuration::from_micros(200),
            b,
            4096,
            SimTime::from_secs(2),
        );
        assert_eq!(m.total_ops(), 2);
        assert_eq!(m.total_bytes(), 8192);
        assert_eq!(m.reads.count(), 1);
        assert_eq!(m.writes.count(), 1);
        assert!((m.mean_lat_us() - 150.0).abs() < 1e-9);
        assert!((m.bandwidth_mib() - 8192.0 / 1048576.0 / 2.0).abs() < 1e-9);
        assert!((m.stream_bandwidth_mib(0) - 4096.0 / 1048576.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_means() {
        let mut m = Metrics::new(1);
        for i in 1..=4u64 {
            m.record(
                0,
                true,
                SimDuration::from_micros(i * 10),
                Breakdown {
                    io_us: i as f64,
                    comm_us: 2.0 * i as f64,
                    other_us: 0.0,
                },
                1,
                SimTime::from_micros(i * 10),
            );
        }
        let b = m.reads.mean_breakdown();
        assert!((b.io_us - 2.5).abs() < 1e-9);
        assert!((b.comm_us - 5.0).abs() < 1e-9);
        assert!((b.total_us() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(1);
        assert_eq!(m.bandwidth_mib(), 0.0);
        assert_eq!(m.mean_lat_us(), 0.0);
        assert!(m.percentiles().is_none());
    }

    #[test]
    fn percentiles_from_mixed_hist() {
        let mut m = Metrics::new(1);
        let b = Breakdown::default();
        for i in 1..=1000u64 {
            m.record(
                0,
                i % 2 == 0,
                SimDuration::from_micros(i),
                b,
                1,
                SimTime::from_micros(i),
            );
        }
        let p = m.percentiles().unwrap();
        assert!(p.p50 > 400.0 && p.p50 < 600.0);
        assert!(p.p9999 >= p.p99);
    }
}
