//! Shared simulation resources: VMs, wires, devices.

use oaf_simnet::calendar::CalendarServer;
use oaf_simnet::link::{Wire, WireParams};
use oaf_simnet::rdma::MrCache;
use oaf_simnet::rng::SimRng;
use oaf_simnet::time::{SimDuration, SimTime};
use oaf_simnet::units::Rate;
use oaf_ssd::SsdDevice;

use super::params::SimParams;

/// One virtual machine's contended resources.
pub struct VmHost {
    /// Per-stream pinned application/reactor cores (§5.1: "each NVMe-oF
    /// client and target are pinned to separate cores").
    pub cores: Vec<CalendarServer>,
    /// The shared softirq/interrupt core all TCP traffic of the VM is
    /// steered to (single RX vector in the SR-IOV guests).
    pub softirq: CalendarServer,
    /// The VM's memory bus: every payload copy serializes here, giving
    /// the aggregate-copy-bandwidth ceiling.
    pub membus: CalendarServer,
}

impl VmHost {
    /// A VM with `cores` pinned cores.
    pub fn new(cores: usize) -> Self {
        VmHost {
            cores: vec![CalendarServer::new(); cores.max(1)],
            softirq: CalendarServer::new(),
            membus: CalendarServer::new(),
        }
    }
}

/// Builds a wire for an `n`-Gbps Ethernet link.
pub fn ethernet_wire(gbps: f64) -> Wire {
    Wire::new(WireParams {
        rate: Rate::gbps(gbps),
        efficiency: 0.94,
        propagation: SimDuration::from_micros(2),
    })
}

/// Builds a wire for an InfiniBand/RoCE link. `efficiency` covers
/// encoding plus, for the VM experiments, SR-IOV virtualization overhead
/// (the paper's IB numbers come from VMs; its RoCE numbers from physical
/// nodes, §5.1).
pub fn rdma_wire(gbps: f64, efficiency: f64) -> Wire {
    Wire::new(WireParams {
        rate: Rate::gbps(gbps),
        efficiency,
        propagation: SimDuration::from_micros(1),
    })
}

/// All contended state of one experiment.
pub struct World {
    /// Model constants.
    pub params: SimParams,
    /// Virtual machines, indexed by [`super::experiment::StreamConfig`].
    pub vms: Vec<VmHost>,
    /// NIC wires, indexed likewise.
    pub wires: Vec<Wire>,
    /// One SSD per stream (the paper's one-to-one mapping, §3.1).
    pub ssds: Vec<SsdDevice>,
    /// Per-stream RDMA memory-registration caches.
    pub mr: Vec<MrCache>,
    /// Per-stream lock servers for the SHM-baseline variant (one lock per
    /// isolated channel).
    pub locks: Vec<CalendarServer>,
    /// Per-stream rendezvous servers modelling the *un-partitioned*
    /// payload buffer of the conservative shared-memory variants: before
    /// the double-buffer slot scheme (§4.4.1) plus in-capsule flow
    /// control (§4.4.2), only one payload can occupy the channel at a
    /// time (copy-in → notify → copy-out → ack).
    pub slots: Vec<CalendarServer>,
    /// Per-stream RNGs (op mix, jitter, tail events).
    pub rngs: Vec<SimRng>,
}

impl World {
    /// Charges a payload copy under its two constraints: the copying
    /// core's memcpy rate (`core_rate`, per-stream) and the VM's shared
    /// memory bus (`bus_rate`, aggregate). The copy completes when both
    /// are satisfied. Tail events (cache/TLB misses) come from `rng`.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_payload(
        vm: &mut VmHost,
        core: usize,
        now: SimTime,
        bytes: u64,
        core_rate: Rate,
        bus_rate: Rate,
        copy_cpu: SimDuration,
        tail_prob: f64,
        tail_cost: SimDuration,
        rng: &mut SimRng,
    ) -> SimTime {
        let mut core_service =
            copy_cpu + SimDuration::from_secs_f64(core_rate.transfer_secs(bytes));
        if tail_prob > 0.0 && rng.chance(tail_prob) {
            core_service += tail_cost;
        }
        let bus_service = SimDuration::from_secs_f64(bus_rate.transfer_secs(bytes));
        let (_, core_done) = vm.cores[core].submit(now, core_service);
        let (_, bus_done) = vm.membus.submit(now, bus_service);
        core_done.max(bus_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_has_at_least_one_core() {
        let vm = VmHost::new(0);
        assert_eq!(vm.cores.len(), 1);
    }

    #[test]
    fn copy_charges_membus() {
        let mut vm = VmHost::new(1);
        let mut rng = SimRng::seed_from_u64(1);
        let done = World::copy_payload(
            &mut vm,
            0,
            SimTime::ZERO,
            1 << 30, // 1 GiB
            Rate::gib_per_sec(8.0),
            Rate::gib_per_sec(16.0),
            SimDuration::from_micros(1),
            0.0,
            SimDuration::ZERO,
            &mut rng,
        );
        // Core-bound: 1 GiB at 8 GiB/s = 125 ms.
        assert!((done.as_secs_f64() - 0.125).abs() < 0.001, "{done:?}");
        assert!(vm.membus.busy_time() > SimDuration::from_millis(62));
    }

    #[test]
    fn concurrent_copies_serialize_on_membus() {
        let mut vm = VmHost::new(2);
        let mut rng = SimRng::seed_from_u64(1);
        let core_r = Rate::gib_per_sec(16.0);
        let bus_r = Rate::gib_per_sec(8.0);
        let d1 = World::copy_payload(
            &mut vm,
            0,
            SimTime::ZERO,
            1 << 27,
            core_r,
            bus_r,
            SimDuration::ZERO,
            0.0,
            SimDuration::ZERO,
            &mut rng,
        );
        let d2 = World::copy_payload(
            &mut vm,
            1,
            SimTime::ZERO,
            1 << 27,
            core_r,
            bus_r,
            SimDuration::ZERO,
            0.0,
            SimDuration::ZERO,
            &mut rng,
        );
        // Bus-bound: the second copy queues behind the first on the
        // shared bus even though it runs on its own core.
        assert!(d2 > d1);
        assert!((d2.as_secs_f64() / d1.as_secs_f64() - 2.0).abs() < 0.01);
    }

    #[test]
    fn wires_have_expected_goodput() {
        let w = ethernet_wire(10.0);
        let g = w.goodput().as_bytes_per_sec();
        assert!((g - 1.175e9).abs() < 1e7, "{g}");
        let r = rdma_wire(56.0, 0.75);
        assert!(r.goodput().as_bytes_per_sec() > 5.0e9);
    }
}
