//! Calibration constants for the fabric models.
//!
//! Every constant is an observable micro-quantity (a per-message CPU
//! cost, a copy bandwidth, an interrupt latency) rather than a fitted
//! end-to-end number, so the figure shapes *emerge* from composition.
//! Values are chosen for the paper's testbed class (Table 1: Xeon
//! E5-2670v3 / EPYC 7402P VMs, kernel 3.10, SR-IOV NICs, QEMU-emulated
//! NVMe) and are printed by the harness next to each reproduced figure.

use oaf_simnet::rdma::RdmaParams;
use oaf_simnet::time::SimDuration;
use oaf_simnet::units::{Rate, KIB};
use oaf_ssd::SsdParams;

/// All model constants for one experiment.
#[derive(Clone, Debug)]
pub struct SimParams {
    // ---- application-side costs (both paths) ----
    /// Client command preparation (SQE build, submission bookkeeping).
    pub prep: SimDuration,
    /// Client completion processing.
    pub complete: SimDuration,
    /// Rate at which the application *fills* a write buffer (part of the
    /// "other" latency component, §3.2).
    pub fill_rate: Rate,
    /// Fixed CPU cost to initiate one payload copy (the bulk bytes are
    /// charged to the VM's shared memory bus).
    pub copy_cpu: SimDuration,

    // ---- TCP path ----
    /// App-level cost per control PDU.
    pub tcp_ctl_app: SimDuration,
    /// Softirq/stack cost per control PDU (shared core per VM).
    pub tcp_ctl_softirq: SimDuration,
    /// App-level cost per data chunk: fixed part (syscall, descriptor).
    pub tcp_chunk_app_base: SimDuration,
    /// App-level cost per data chunk: per-KiB part (per-connection
    /// in-order stream processing — what caps a single kernel-TCP
    /// connection well below fast NIC line rate).
    pub tcp_chunk_app_per_kib: SimDuration,
    /// Softirq/stack cost per data chunk: fixed part.
    pub tcp_chunk_softirq_base: SimDuration,
    /// Softirq/stack cost per chunk: per-KiB part (segmentation, skb
    /// handling — the shared-core cost in 3.10-era kernels).
    pub tcp_chunk_softirq_per_kib: SimDuration,
    /// Wire header bytes per PDU/chunk.
    pub tcp_header: u64,
    /// Control PDU payload bytes.
    pub ctl_size: u64,
    /// Single-core memcpy rate on the client side (per-stream cap).
    pub copy_rate_client: Rate,
    /// Single-core memcpy rate on the target side (per-stream cap).
    pub copy_rate_target: Rate,
    /// Shared memory-bus bandwidth per VM (aggregate copy ceiling).
    pub membus_rate: Rate,
    /// Interrupt + softirq + wakeup latency for interrupt-driven waits.
    pub interrupt_extra: SimDuration,
    /// Context-switch CPU cost charged to the waiting core per interrupt
    /// wake.
    pub interrupt_cpu: SimDuration,
    /// Wake latency when busy polling catches the arrival.
    pub poll_hit_extra: SimDuration,
    /// Median wait between posting a receive and data arrival for
    /// read-class messages (drawn lognormally per wake; §4.5: "read
    /// operations, in general, are faster than writes").
    pub wait_read_median: SimDuration,
    /// Median wait for write-class messages (R2T grants, write
    /// completions).
    pub wait_write_median: SimDuration,
    /// Lognormal shape of the wait distribution.
    pub wait_sigma: f64,
    /// CPU cost to notice a message in a dedicated SPDK-style reactor
    /// poll loop (the adaptive fabric's control path, §2.2/§4.6).
    pub reactor_poll_cpu: SimDuration,
    /// Fraction of a busy-poll budget wasted multiplexing idle sockets.
    pub poll_waste_frac: f64,
    /// Default application-level chunk size (stock NVMe/TCP: 128 KiB).
    pub chunk_size: u64,
    /// Target-side buffer-pool pressure: extra per-chunk cost growing
    /// quadratically with the chunk size (cache/TLB footprint of the
    /// chunk-sized pool buffers). Referenced to a 512 KiB chunk; this is
    /// what gives the Fig. 9 sweep its interior optimum.
    pub chunk_pool_quad: SimDuration,

    // ---- shared-memory path ----
    /// One-way latency of the loopback control hop between co-located
    /// VMs (virtio/vsock class).
    pub shm_ctl_latency: SimDuration,
    /// Lock acquire/release overhead for the SHM-baseline variant.
    pub shm_lock_overhead: SimDuration,
    /// Probability a lock hold is extended by preemption/interference
    /// (the tail the lock-free design removes, §4.4.4).
    pub shm_preempt_prob: f64,
    /// Cost of such an extended hold.
    pub shm_preempt_cost: SimDuration,
    /// Probability a payload copy takes a cache/TLB tail hit.
    pub copy_tail_prob: f64,
    /// Cost of a copy tail hit.
    pub copy_tail_cost: SimDuration,

    // ---- RDMA path ----
    /// NIC/verbs parameters, including the memory-registration model.
    pub rdma: RdmaParams,

    // ---- devices ----
    /// SSD model for the emulated-NVMe experiments.
    pub ssd: SsdParams,
    /// Random-access latency multiplier applied to the SSD base latency
    /// (≈1 for RAM-backed emulation, >1 for real media).
    pub random_penalty: f64,

    /// Gap between consecutive submissions on one stream (doorbell +
    /// loop overhead in the perf tool).
    pub submit_gap: SimDuration,
}

impl SimParams {
    /// The default calibration for the paper's Chameleon/CloudLab VM
    /// testbed.
    pub fn paper_testbed() -> Self {
        SimParams {
            prep: SimDuration::from_micros_f64(1.5),
            complete: SimDuration::from_micros_f64(1.0),
            fill_rate: Rate::gib_per_sec(11.0),
            copy_cpu: SimDuration::from_micros_f64(1.2),

            tcp_ctl_app: SimDuration::from_micros_f64(2.0),
            tcp_ctl_softirq: SimDuration::from_micros_f64(4.5),
            tcp_chunk_app_base: SimDuration::from_micros_f64(10.0),
            tcp_chunk_app_per_kib: SimDuration::from_micros_f64(0.38),
            tcp_chunk_softirq_base: SimDuration::from_micros_f64(9.0),
            tcp_chunk_softirq_per_kib: SimDuration::from_micros_f64(0.14),
            tcp_header: 128,
            ctl_size: 96,
            copy_rate_client: Rate::gib_per_sec(6.0),
            copy_rate_target: Rate::gib_per_sec(5.6),
            membus_rate: Rate::gib_per_sec(9.0),
            interrupt_extra: SimDuration::from_micros(16),
            interrupt_cpu: SimDuration::from_micros(6),
            poll_hit_extra: SimDuration::from_micros(1),
            wait_read_median: SimDuration::from_micros(15),
            wait_write_median: SimDuration::from_micros(70),
            wait_sigma: 0.4,
            reactor_poll_cpu: SimDuration::from_micros(2),
            poll_waste_frac: 0.10,
            chunk_size: 128 * KIB,
            chunk_pool_quad: SimDuration::from_micros_f64(20.0),

            shm_ctl_latency: SimDuration::from_micros_f64(5.0),
            shm_lock_overhead: SimDuration::from_micros_f64(0.5),
            shm_preempt_prob: 6e-4,
            shm_preempt_cost: SimDuration::from_micros(900),
            copy_tail_prob: 5e-4,
            copy_tail_cost: SimDuration::from_micros(200),

            rdma: RdmaParams {
                per_msg_cpu: SimDuration::from_nanos(900),
                header_bytes: 64,
                reg_cost: SimDuration::from_micros(700),
                pool_buffers: 32,
                invalidation_prob: 2e-5,
            },

            ssd: SsdParams::qemu_emulated(),
            random_penalty: 1.0,
            submit_gap: SimDuration::from_nanos(400),
        }
    }

    /// Variant for the RoCE upper-bound runs: physical nodes, one real
    /// NVMe-SSD (§5.1).
    pub fn roce_physical() -> Self {
        let mut p = Self::paper_testbed();
        p.ssd = SsdParams::real_nvme();
        p.random_penalty = 1.15;
        // No virtualization layer: slightly cheaper stack costs.
        p.tcp_ctl_softirq = SimDuration::from_micros_f64(3.0);
        p.tcp_chunk_softirq_per_kib = SimDuration::from_micros_f64(0.12);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = SimParams::paper_testbed();
        assert!(p.copy_rate_target.as_bytes_per_sec() < p.membus_rate.as_bytes_per_sec());
        assert!(p.interrupt_extra > p.poll_hit_extra);
        assert!(p.shm_preempt_prob < 0.01);
        assert_eq!(p.chunk_size, 128 * KIB);
    }

    #[test]
    fn roce_uses_real_ssd() {
        let p = SimParams::roce_physical();
        assert!(p.ssd.bandwidth_ceiling() < SimParams::paper_testbed().ssd.bandwidth_ceiling());
        assert!(p.random_penalty > 1.0);
    }
}
