//! Adaptive-fabric endpoint objects (§4.1).
//!
//! The Connection Manager creates one AF endpoint object per side of a
//! connection. The endpoint records whether the adaptive-fabric channel
//! finished initialization and which data channel the fabric selected, and
//! is consulted "before writing to or reading from the AF" (§4.2) — i.e.
//! it is the runtime's single source of truth for channel selection.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Which data channel the fabric selected for bulk payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelKind {
    /// Optimized TCP (peer is remote, or shared memory unavailable).
    Tcp,
    /// Lock-free shared-memory double buffer (peer is co-located).
    Shm,
}

/// Lifecycle of an AF endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EndpointState {
    /// Created, handshake not finished.
    Initializing = 0,
    /// Connected; channel selection final.
    Connected = 1,
    /// Torn down; resources reclaimed.
    Closed = 2,
}

/// An AF endpoint object, shared between the protocol threads of one side.
pub struct AfEndpoint {
    state: AtomicU8,
    channel: AtomicU8, // 0 = Tcp, 1 = Shm
    host_id: u64,
    peer_id: std::sync::atomic::AtomicU64,
}

impl AfEndpoint {
    /// Creates an endpoint for a host identity, in `Initializing` state
    /// with the TCP channel selected (the safe default: initialization
    /// requests always travel over TCP, §4.2).
    pub fn new(host_id: u64) -> Arc<Self> {
        Arc::new(AfEndpoint {
            state: AtomicU8::new(EndpointState::Initializing as u8),
            channel: AtomicU8::new(0),
            host_id,
            peer_id: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// This side's host identity.
    pub fn host_id(&self) -> u64 {
        self.host_id
    }

    /// The peer identity learned during the handshake.
    pub fn peer_id(&self) -> u64 {
        self.peer_id.load(Ordering::Acquire)
    }

    /// Current lifecycle state.
    pub fn state(&self) -> EndpointState {
        match self.state.load(Ordering::Acquire) {
            0 => EndpointState::Initializing,
            1 => EndpointState::Connected,
            _ => EndpointState::Closed,
        }
    }

    /// Selected data channel.
    pub fn channel(&self) -> ChannelKind {
        if self.channel.load(Ordering::Acquire) == 1 {
            ChannelKind::Shm
        } else {
            ChannelKind::Tcp
        }
    }

    /// Marks the endpoint connected with the given channel selection.
    /// Called by the Connection Manager once ICReq/ICResp (and shared
    /// memory mapping, if local) completed.
    pub fn connect(&self, peer_id: u64, channel: ChannelKind) {
        self.peer_id.store(peer_id, Ordering::Release);
        self.channel.store(
            match channel {
                ChannelKind::Tcp => 0,
                ChannelKind::Shm => 1,
            },
            Ordering::Release,
        );
        self.state
            .store(EndpointState::Connected as u8, Ordering::Release);
    }

    /// Marks the endpoint closed (resource reclamation).
    pub fn close(&self) {
        self.state
            .store(EndpointState::Closed as u8, Ordering::Release);
    }

    /// Whether bulk I/O may use shared memory right now.
    pub fn shm_ready(&self) -> bool {
        self.state() == EndpointState::Connected && self.channel() == ChannelKind::Shm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let ep = AfEndpoint::new(77);
        assert_eq!(ep.state(), EndpointState::Initializing);
        assert_eq!(ep.channel(), ChannelKind::Tcp);
        assert!(!ep.shm_ready());

        ep.connect(99, ChannelKind::Shm);
        assert_eq!(ep.state(), EndpointState::Connected);
        assert_eq!(ep.peer_id(), 99);
        assert!(ep.shm_ready());

        ep.close();
        assert_eq!(ep.state(), EndpointState::Closed);
        assert!(!ep.shm_ready());
    }

    #[test]
    fn tcp_endpoint_never_reports_shm() {
        let ep = AfEndpoint::new(1);
        ep.connect(2, ChannelKind::Tcp);
        assert!(!ep.shm_ready());
        assert_eq!(ep.channel(), ChannelKind::Tcp);
    }

    #[test]
    fn endpoint_visible_across_threads() {
        let ep = AfEndpoint::new(5);
        let ep2 = ep.clone();
        let h = std::thread::spawn(move || {
            ep2.connect(6, ChannelKind::Shm);
        });
        h.join().unwrap();
        assert!(ep.shm_ready());
    }
}
