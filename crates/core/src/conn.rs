//! The Connection Manager (§4.1, Fig. 5).
//!
//! Establishes an adaptive-fabric connection between an NVMe-oF client
//! and target:
//!
//! 1. the client opens the TCP connection (a real nonblocking loopback
//!    socket pair via [`oaf_nvmeof::tcp::TcpTransport`], §4.5) and both
//!    sides create their AF endpoint objects;
//! 2. the Connection Manager consults [`HostRegistry`] — the helper
//!    process — for locality; for co-located pairs an isolated
//!    shared-memory channel is hot-plugged and announced on the flag
//!    pages (§4.2);
//! 3. connection configuration parameters travel in ICReq/ICResp: the
//!    client requests the AF capabilities it can use, the target grants
//!    the intersection;
//! 4. both AF endpoint objects connect; data can flow.
//!
//! Teardown reclaims the region through [`HostRegistry::unplug`].

use std::sync::Arc;
use std::time::Duration;

use oaf_nvmeof::initiator::{Initiator, InitiatorOptions, KeepAliveConfig};
use oaf_nvmeof::nvme::controller::Controller;
use oaf_nvmeof::payload::PayloadChannel;
use oaf_nvmeof::pdu::{AF_CAP_SHM, AF_CAP_SHM_INCAPSULE, AF_CAP_ZERO_COPY};
use oaf_nvmeof::target::{spawn_target_observed, TargetConfig, TargetHandle};
use oaf_nvmeof::tcp::{TcpConfig, TcpTransport};
use oaf_nvmeof::transport::{BackoffConfig, ControlTransport, MemTransport, ShmTransport};
use oaf_nvmeof::tune::{ChunkCostModel, ChunkSelector, KIB, MIB};
use oaf_nvmeof::{FlowMode, NvmeofError};
use oaf_shmem::channel::Side;
use oaf_telemetry::Registry;

use crate::endpoint::{AfEndpoint, ChannelKind};
use crate::locality::{HostRegistry, ProcessId};
use crate::payload_impl::ShmPayloadChannel;

/// Which channel carries control PDUs for an established connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlPath {
    /// NVMe/TCP over a real nonblocking socket (§4.5) — always
    /// available. When the environment forbids sockets entirely the
    /// manager falls back to the in-memory [`MemTransport`] stand-in so
    /// the fabric still comes up.
    Tcp,
    /// In-region control over shared-memory byte rings (§5.5). Requires
    /// co-location; falls back to [`ControlPath::Tcp`] when the helper
    /// process finds none.
    InRegion,
}

/// Fabric-level connection settings.
#[derive(Clone, Debug)]
pub struct FabricSettings {
    /// Double-buffer slots per direction (sized to the queue depth,
    /// §4.4.1).
    pub depth: usize,
    /// Slot size in bytes (sized to the I/O size, §4.4.1).
    pub slot_size: usize,
    /// Write flow-control regime once shared memory is active.
    pub flow: FlowMode,
    /// In-capsule limit for the TCP path.
    pub in_capsule_max: usize,
    /// Read chunk size for the TCP path (§4.5).
    pub read_chunk: usize,
    /// Control-PDU channel preference.
    pub control: ControlPath,
    /// Per-direction byte-ring capacity for the in-region control path
    /// (a power of two).
    pub control_ring_bytes: u64,
    /// Busy-poll iterations before a full/empty ring wait starts
    /// yielding the CPU (in-region control path).
    pub ring_spin_limit: u32,
    /// How long a send may wait on a full control ring before giving up
    /// with `RingFull`.
    pub ring_full_timeout: Duration,
    /// Per-command deadline: a command with no completion after this
    /// long is retried (reads) or aborted-then-retried (writes), up to
    /// `max_retries` attempts. `None` disables deadline tracking.
    pub cmd_deadline: Option<Duration>,
    /// Retry attempts before a command is surfaced as
    /// [`NvmeofError::Timeout`].
    pub max_retries: u32,
    /// Base backoff between retry attempts (doubles per attempt).
    pub retry_backoff: Duration,
    /// Keep-alive probe interval; the peer is declared dead after three
    /// quiet intervals. `None` disables keep-alive.
    pub keepalive_interval: Option<Duration>,
    /// Link speed the remote TCP path is tuned for: the runtime
    /// [`ChunkSelector`] sizes the write-chunk (Fig. 9) from this.
    pub link_gbps: f64,
}

impl Default for FabricSettings {
    fn default() -> Self {
        let backoff = BackoffConfig::default();
        FabricSettings {
            depth: 128,
            slot_size: 128 * 1024,
            flow: FlowMode::InCapsule,
            in_capsule_max: 8 * 1024,
            read_chunk: 128 * 1024,
            control: ControlPath::Tcp,
            control_ring_bytes: 256 * 1024,
            ring_spin_limit: backoff.spin_limit,
            ring_full_timeout: backoff.send_full_timeout,
            cmd_deadline: None,
            max_retries: 3,
            retry_backoff: Duration::from_millis(2),
            keepalive_interval: None,
            link_gbps: 25.0,
        }
    }
}

impl FabricSettings {
    /// The ring-wait tuning these settings select.
    pub fn backoff(&self) -> BackoffConfig {
        BackoffConfig {
            spin_limit: self.ring_spin_limit,
            send_full_timeout: self.ring_full_timeout,
        }
    }
}

/// An established adaptive-fabric connection: the client handle plus the
/// running target.
pub struct EstablishedFabric {
    /// The connected initiator.
    pub initiator: Initiator<ControlTransport>,
    /// The client's AF endpoint object.
    pub endpoint: Arc<AfEndpoint>,
    /// The client-side shared-memory payload channel, when local.
    pub shm: Option<Arc<ShmPayloadChannel>>,
    /// Handle to the target reactor.
    pub target: TargetHandle,
}

/// The Connection Manager.
pub struct ConnectionManager {
    registry: Arc<HostRegistry>,
    telemetry: Arc<Registry>,
}

impl ConnectionManager {
    /// Creates a manager over a helper-process registry with a fresh
    /// telemetry registry.
    pub fn new(registry: Arc<HostRegistry>) -> Self {
        Self::with_telemetry(registry, Arc::new(Registry::new()))
    }

    /// Creates a manager publishing into an existing telemetry registry
    /// (one registry can observe several managers or other subsystems).
    pub fn with_telemetry(registry: Arc<HostRegistry>, telemetry: Arc<Registry>) -> Self {
        ConnectionManager {
            registry,
            telemetry,
        }
    }

    /// The registry (for registering processes).
    pub fn registry(&self) -> &Arc<HostRegistry> {
        &self.registry
    }

    /// The telemetry registry every fabric this manager establishes
    /// reports into.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Publishes the fabric-level decisions and the settings in effect
    /// into the `fabric` scope: which locality verdict was reached, which
    /// control path was selected, and the tunables the connection runs
    /// with.
    fn record_fabric(&self, settings: &FabricSettings, local: bool, in_region: bool) {
        let fab = self.telemetry.scope("fabric");
        if local {
            fab.counter("locality_local").inc();
        } else {
            fab.counter("locality_remote").inc();
        }
        if in_region {
            fab.counter("control_in_region").inc();
        } else {
            fab.counter("control_tcp").inc();
        }
        fab.gauge("depth").set(settings.depth as i64);
        fab.gauge("slot_size").set(settings.slot_size as i64);
        fab.gauge("in_capsule_max")
            .set(settings.in_capsule_max as i64);
        fab.gauge("read_chunk").set(settings.read_chunk as i64);
        fab.gauge("control_ring_bytes")
            .set(settings.control_ring_bytes as i64);
        fab.gauge("ring_spin_limit")
            .set(settings.ring_spin_limit as i64);
        fab.gauge("ring_full_timeout_ms")
            .set(settings.ring_full_timeout.as_millis() as i64);
    }

    /// Establishes a connection between a registered client and target,
    /// spawning the target reactor over `controller`. Locality decides
    /// the data channel; everything else follows Fig. 5.
    pub fn establish(
        &self,
        client: ProcessId,
        target: ProcessId,
        controller: Controller,
        settings: &FabricSettings,
    ) -> Result<EstablishedFabric, NvmeofError> {
        let endpoint = AfEndpoint::new(client.0);

        // Step 2: locality detection via the helper process (§4.2).
        let hotplug = self
            .registry
            .hotplug(client, target, settings.depth, settings.slot_size);
        let (client_shm, target_shm) = match &hotplug {
            Some(hp) => {
                let c = ShmPayloadChannel::new(&hp.channel, Side::Client);
                let t = ShmPayloadChannel::new(&hp.channel, Side::Target);
                // Each side's lease pool (Buffer Manager) reports lease
                // traffic and occupancy alongside the transport scopes.
                c.lease_stats()
                    .register(&self.telemetry.scope("bufmgr_client"));
                t.lease_stats()
                    .register(&self.telemetry.scope("bufmgr_target"));
                (Some(c), Some(t))
            }
            None => (None, None),
        };

        // Step 1 (ordered after locality so the control path can use
        // it): the control connection. In-region control (§5.5) needs
        // co-location, so it rides the same locality verdict as the data
        // channel and falls back to the TCP stand-in otherwise.
        let (client_tr, target_tr) = if settings.control == ControlPath::InRegion
            && hotplug.is_some()
        {
            let (c, t) = ShmTransport::pair_with(settings.control_ring_bytes, settings.backoff());
            // The in-region path also exposes producer-side ring
            // occupancy and full events per endpoint.
            c.tx_ring_stats()
                .register(&self.telemetry.scope("control_ring_client"));
            t.tx_ring_stats()
                .register(&self.telemetry.scope("control_ring_target"));
            (ControlTransport::Shm(c), ControlTransport::Shm(t))
        } else {
            // Remote (or remote-preferring) pairs get the real-socket
            // NVMe/TCP data plane over loopback (§4.5). Environments
            // that forbid sockets keep the in-memory stand-in so the
            // fabric still comes up.
            match TcpTransport::loopback_pair(TcpConfig {
                backoff: settings.backoff(),
                ..TcpConfig::default()
            }) {
                Ok((c, t)) => (ControlTransport::Tcp(c), ControlTransport::Tcp(t)),
                Err(_) => {
                    let (c, t) = MemTransport::pair();
                    (ControlTransport::Mem(c), ControlTransport::Mem(t))
                }
            }
        };
        self.record_fabric(settings, hotplug.is_some(), client_tr.is_in_region());
        client_tr
            .metrics()
            .register(&self.telemetry.scope("transport_client"));
        target_tr
            .metrics()
            .register(&self.telemetry.scope("transport_target"));
        // The socket path additionally reports syscall/partial-I/O
        // counters per endpoint under the `tcp` scopes.
        if let Some(m) = client_tr.tcp_metrics() {
            m.register(&self.telemetry.scope("tcp_client"));
        }
        if let Some(m) = target_tr.tcp_metrics() {
            m.register(&self.telemetry.scope("tcp_target"));
        }

        // Step 3: target side comes up first (it answers the ICReq).
        let target_cfg = TargetConfig {
            in_capsule_max: settings.in_capsule_max,
            read_chunk: settings.read_chunk,
            af_caps: AF_CAP_SHM | AF_CAP_SHM_INCAPSULE | AF_CAP_ZERO_COPY,
            target_id: target.0,
        };
        let target_handle = spawn_target_observed(
            target_tr,
            controller,
            target_cfg,
            target_shm.map(|t| t as Arc<dyn PayloadChannel>),
            Some(&self.telemetry),
        );

        // Step 4: client handshake with the capabilities locality allows.
        let af_caps = if client_shm.is_some() {
            AF_CAP_SHM | AF_CAP_SHM_INCAPSULE | AF_CAP_ZERO_COPY
        } else {
            0
        };
        // Runtime chunking (Fig. 9): on the socket path, large H2C data
        // is streamed as write_chunk-sized sub-PDUs sized for the link;
        // in-memory channels move payloads whole.
        let write_chunk = if client_tr.is_socket() {
            let selector = ChunkSelector::new(ChunkCostModel::for_link_gbps(settings.link_gbps));
            let mix = [128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB];
            selector.select(&mix) as usize
        } else {
            0
        };
        self.telemetry
            .scope("fabric")
            .gauge("write_chunk")
            .set(write_chunk as i64);
        let opts = InitiatorOptions {
            host_id: client.0,
            af_caps,
            flow: settings.flow,
            maxr2t: 16,
            write_chunk,
            cmd_deadline: settings.cmd_deadline,
            max_retries: settings.max_retries,
            retry_backoff: settings.retry_backoff,
            keepalive: settings
                .keepalive_interval
                .map(KeepAliveConfig::with_interval),
            backoff: settings.backoff(),
            ..InitiatorOptions::default()
        };
        let initiator = Initiator::connect(
            client_tr,
            opts,
            client_shm.clone().map(|c| c as Arc<dyn PayloadChannel>),
            Duration::from_secs(5),
        )?;
        initiator
            .metrics()
            .register(&self.telemetry.scope("client"));

        // Step 5: connect the AF endpoint object.
        let channel = if initiator.shm_active() {
            ChannelKind::Shm
        } else {
            ChannelKind::Tcp
        };
        endpoint.connect(target.0, channel);

        Ok(EstablishedFabric {
            initiator,
            endpoint,
            shm: client_shm,
            target: target_handle,
        })
    }

    /// Tears a connection down, reclaiming the shared-memory region.
    pub fn teardown(
        &self,
        client: ProcessId,
        target: ProcessId,
        mut fabric: EstablishedFabric,
    ) -> Result<(), NvmeofError> {
        fabric.initiator.disconnect()?;
        fabric.endpoint.close();
        let result = fabric.target.shutdown();
        self.registry.unplug(client, target);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_nvmeof::nvme::namespace::Namespace;

    const CLIENT: ProcessId = ProcessId(1);
    const TARGET: ProcessId = ProcessId(2);

    fn controller() -> Controller {
        let mut c = Controller::new();
        c.add_namespace(Namespace::new(1, 4096, 1024));
        c
    }

    fn manager(client_host: u64, target_host: u64) -> ConnectionManager {
        let reg = Arc::new(HostRegistry::new());
        reg.register(CLIENT, client_host);
        reg.register(TARGET, target_host);
        ConnectionManager::new(reg)
    }

    #[test]
    fn co_located_pair_selects_shm() {
        let cm = manager(7, 7);
        let fabric = cm
            .establish(CLIENT, TARGET, controller(), &FabricSettings::default())
            .unwrap();
        assert!(fabric.initiator.shm_active());
        assert_eq!(fabric.endpoint.channel(), ChannelKind::Shm);
        assert!(fabric.shm.is_some());
        cm.teardown(CLIENT, TARGET, fabric).unwrap();
    }

    #[test]
    fn remote_pair_falls_back_to_tcp() {
        let cm = manager(7, 8);
        let fabric = cm
            .establish(CLIENT, TARGET, controller(), &FabricSettings::default())
            .unwrap();
        assert!(!fabric.initiator.shm_active());
        assert_eq!(fabric.endpoint.channel(), ChannelKind::Tcp);
        assert!(fabric.shm.is_none());
        cm.teardown(CLIENT, TARGET, fabric).unwrap();
    }

    #[test]
    fn io_works_on_both_channels() {
        for (ch, th) in [(7u64, 7u64), (7, 8)] {
            let cm = manager(ch, th);
            let mut fabric = cm
                .establish(CLIENT, TARGET, controller(), &FabricSettings::default())
                .unwrap();
            let data = bytes::Bytes::from(vec![0x5cu8; 128 * 1024]);
            fabric
                .initiator
                .write_blocking(1, 0, 32, data.clone(), Duration::from_secs(5))
                .unwrap();
            let back = fabric
                .initiator
                .read_blocking(1, 0, 32, 128 * 1024, Duration::from_secs(5))
                .unwrap();
            assert_eq!(back, data);
            cm.teardown(CLIENT, TARGET, fabric).unwrap();
        }
    }

    #[test]
    fn in_region_control_path_works_when_co_located() {
        let cm = manager(7, 7);
        let settings = FabricSettings {
            control: ControlPath::InRegion,
            ..FabricSettings::default()
        };
        let mut fabric = cm
            .establish(CLIENT, TARGET, controller(), &settings)
            .unwrap();
        assert!(fabric.initiator.shm_active());
        let data = bytes::Bytes::from(vec![0xa7u8; 64 * 1024]);
        fabric
            .initiator
            .write_blocking(1, 4, 16, data.clone(), Duration::from_secs(5))
            .unwrap();
        let back = fabric
            .initiator
            .read_blocking(1, 4, 16, 64 * 1024, Duration::from_secs(5))
            .unwrap();
        assert_eq!(back, data);
        cm.teardown(CLIENT, TARGET, fabric).unwrap();
    }

    #[test]
    fn in_region_control_falls_back_to_tcp_when_remote() {
        let cm = manager(7, 8);
        let settings = FabricSettings {
            control: ControlPath::InRegion,
            ..FabricSettings::default()
        };
        let mut fabric = cm
            .establish(CLIENT, TARGET, controller(), &settings)
            .unwrap();
        assert!(!fabric.initiator.shm_active());
        let data = bytes::Bytes::from(vec![0x11u8; 4096]);
        fabric
            .initiator
            .write_blocking(1, 0, 1, data.clone(), Duration::from_secs(5))
            .unwrap();
        assert_eq!(
            fabric
                .initiator
                .read_blocking(1, 0, 1, 4096, Duration::from_secs(5))
                .unwrap(),
            data
        );
        cm.teardown(CLIENT, TARGET, fabric).unwrap();
    }

    #[test]
    fn teardown_reclaims_region() {
        let cm = manager(7, 7);
        let fabric = cm
            .establish(CLIENT, TARGET, controller(), &FabricSettings::default())
            .unwrap();
        assert!(cm.registry().channel_for(CLIENT, TARGET).is_some());
        cm.teardown(CLIENT, TARGET, fabric).unwrap();
        assert!(cm.registry().channel_for(CLIENT, TARGET).is_none());
    }
}
