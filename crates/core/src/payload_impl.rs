//! Shared-memory implementations of the NVMe-oF payload channel.
//!
//! [`ShmPayloadChannel`] is the production path: one side's view of the
//! lock-free double buffer, bridged to [`oaf_nvmeof::PayloadChannel`] so
//! the NVMe-oF stack can publish/consume payloads without knowing about
//! slots or atomics. [`LockedPayloadChannel`] is the mutex-guarded
//! SHM-baseline kept for the Fig. 8 ablation benchmarks.

use std::sync::Arc;

use oaf_nvmeof::error::NvmeofError;
use oaf_nvmeof::payload::{PayloadChannel, WriteLease};
use oaf_shmem::channel::{ShmEndpoint, Side};
use oaf_shmem::layout::Dir;
use oaf_shmem::locked::LockedShm;
use oaf_shmem::{BufStats, BufferManager, ShmChannel, ShmError};

fn map_err(e: ShmError) -> NvmeofError {
    NvmeofError::Payload(e.to_string())
}

/// Lock-free double-buffer payload channel (one side's view).
pub struct ShmPayloadChannel {
    endpoint: ShmEndpoint,
    /// Transmit-direction Buffer Manager: the lease pool behind
    /// [`PayloadChannel::alloc`] (§4.4.3).
    mgr: BufferManager,
}

impl ShmPayloadChannel {
    /// Wraps `side`'s endpoint of `channel`.
    pub fn new(channel: &ShmChannel, side: Side) -> Arc<Self> {
        let endpoint = channel.endpoint(side);
        let mgr = endpoint.buffer_manager().clone();
        Arc::new(ShmPayloadChannel { endpoint, mgr })
    }

    /// The underlying endpoint (for zero-copy leases).
    pub fn endpoint(&self) -> &ShmEndpoint {
        &self.endpoint
    }

    /// The transmit-direction Buffer Manager's telemetry bundle.
    pub fn lease_stats(&self) -> &Arc<BufStats> {
        self.mgr.stats()
    }

    /// Non-blocking lease attempt for allocator fallback chains:
    /// `Ok(None)` means every slot is in flight after a full round-robin
    /// probe — the caller should fall back to its pool rather than spin.
    pub fn try_lease(&self, len: usize) -> Result<Option<WriteLease>, ShmError> {
        match self.mgr.lease(len) {
            Ok(lease) => Ok(Some(WriteLease::from_slot(lease))),
            Err(ShmError::NoFreeSlot) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl PayloadChannel for ShmPayloadChannel {
    fn alloc(&self, len: usize) -> Result<WriteLease, NvmeofError> {
        // Same bounded wait as `publish`: the round-robin pool drains as
        // the consumer frees slots, so short spins cover transient
        // exhaustion while hard errors surface immediately. A
        // quarantined pool fails fast instead of spinning out the
        // budget — the peer that would drain it is gone.
        let mut spins = 0u32;
        loop {
            match self.mgr.lease(len) {
                Ok(lease) => return Ok(WriteLease::from_slot(lease)),
                Err(ShmError::NoFreeSlot) if spins < 1_000_000 && !self.mgr.is_quarantined() => {
                    spins += 1;
                    std::hint::spin_loop();
                }
                Err(ShmError::NoFreeSlot) if self.mgr.is_quarantined() => {
                    return Err(NvmeofError::Payload("channel quarantined".into()))
                }
                Err(e) => return Err(map_err(e)),
            }
        }
    }

    fn publish_lease(&self, lease: WriteLease) -> Result<(u32, u32), NvmeofError> {
        match lease.into_slot() {
            Ok(slot_lease) => {
                let (slot, len) = slot_lease.publish();
                Ok((slot as u32, len as u32))
            }
            // A heap lease can only come from a foreign channel; keep the
            // data moving through the one-copy path.
            Err(heap) => self.publish(&heap),
        }
    }

    fn consume_with(
        &self,
        slot: u32,
        len: u32,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), NvmeofError> {
        let mut spins = 0u32;
        let guard = loop {
            match self.endpoint.recv(slot as usize, len as usize) {
                Ok(g) => break g,
                Err(ShmError::WrongState { .. }) if spins < 1_000_000 => {
                    spins += 1;
                    std::hint::spin_loop();
                }
                Err(e) => return Err(map_err(e)),
            }
        };
        f(guard.as_slice());
        Ok(())
    }

    fn publish(&self, data: &[u8]) -> Result<(u32, u32), NvmeofError> {
        if self.mgr.is_quarantined() {
            return Err(NvmeofError::Payload("channel quarantined".into()));
        }
        // Slot rings reject when the consumer is queue-depth behind;
        // retry briefly — the paper's round-robin guarantee makes waits
        // short in the steady state.
        let mut spins = 0u32;
        loop {
            match self.endpoint.send(data) {
                Ok((slot, len)) => return Ok((slot as u32, len as u32)),
                Err(ShmError::NoFreeSlot) if spins < 1_000_000 && !self.mgr.is_quarantined() => {
                    spins += 1;
                    std::hint::spin_loop();
                }
                Err(e) => return Err(map_err(e)),
            }
        }
    }

    fn consume(&self, slot: u32, len: u32, dst: &mut [u8]) -> Result<(), NvmeofError> {
        if dst.len() != len as usize {
            return Err(NvmeofError::Payload(format!(
                "destination {} != payload {len}",
                dst.len()
            )));
        }
        // The publication notification races ahead of our read in rare
        // interleavings; spin until the Ready state is visible.
        let mut spins = 0u32;
        let guard = loop {
            match self.endpoint.recv(slot as usize, len as usize) {
                Ok(g) => break g,
                Err(ShmError::WrongState { .. }) if spins < 1_000_000 => {
                    spins += 1;
                    std::hint::spin_loop();
                }
                Err(e) => return Err(map_err(e)),
            }
        };
        guard.copy_to(dst);
        Ok(())
    }

    fn max_payload(&self) -> usize {
        self.endpoint.channel().slot_size()
    }

    fn quarantine(&self) {
        self.mgr.quarantine();
    }

    fn reclaim(&self) -> usize {
        // Sweeps the transmit-direction ring: slots this side published
        // that a dead (or degraded) peer will never drain. The receive
        // direction is the peer's transmit ring — its own manager sweeps
        // it when that side degrades.
        self.mgr.reclaim()
    }

    fn reclaim_slot(&self, slot: u32) -> bool {
        self.mgr.reclaim_slot(slot as usize)
    }
}

/// Mutex-guarded baseline payload channel (Fig. 8's "SHM-baseline").
pub struct LockedPayloadChannel {
    shm: LockedShm,
    side: Side,
}

impl LockedPayloadChannel {
    /// Creates both sides over one locked region.
    pub fn pair(depth: usize, slot_size: usize) -> (Arc<Self>, Arc<Self>) {
        let shm = LockedShm::allocate(depth, slot_size);
        (
            Arc::new(LockedPayloadChannel {
                shm: shm.clone(),
                side: Side::Client,
            }),
            Arc::new(LockedPayloadChannel {
                shm,
                side: Side::Target,
            }),
        )
    }

    fn tx_dir(&self) -> Dir {
        self.side.tx_dir()
    }

    fn rx_dir(&self) -> Dir {
        self.side.rx_dir()
    }
}

impl PayloadChannel for LockedPayloadChannel {
    // The locked baseline deliberately keeps every copy of Fig. 8's
    // first ablation step: leases are plain heap buffers and the borrow
    // goes through a scratch materialization.
    fn alloc(&self, len: usize) -> Result<WriteLease, NvmeofError> {
        if len > self.max_payload() {
            return Err(NvmeofError::Payload(format!(
                "payload {len} exceeds slot {}",
                self.max_payload()
            )));
        }
        Ok(WriteLease::heap(len))
    }

    fn publish_lease(&self, lease: WriteLease) -> Result<(u32, u32), NvmeofError> {
        self.publish(&lease)
    }

    fn consume_with(
        &self,
        slot: u32,
        len: u32,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), NvmeofError> {
        let mut scratch = vec![0u8; len as usize];
        self.consume(slot, len, &mut scratch)?;
        f(&scratch);
        Ok(())
    }

    fn publish(&self, data: &[u8]) -> Result<(u32, u32), NvmeofError> {
        let mut spins = 0u32;
        loop {
            match self.shm.send(self.tx_dir(), data) {
                Ok(slot) => return Ok((slot as u32, data.len() as u32)),
                Err(ShmError::NoFreeSlot) if spins < 1_000_000 => {
                    spins += 1;
                    std::thread::yield_now();
                }
                Err(e) => return Err(map_err(e)),
            }
        }
    }

    fn consume(&self, slot: u32, len: u32, dst: &mut [u8]) -> Result<(), NvmeofError> {
        let mut spins = 0u32;
        loop {
            match self.shm.recv(self.rx_dir(), slot as usize, dst) {
                Ok(n) if n == len as usize => return Ok(()),
                Ok(n) => {
                    return Err(NvmeofError::Payload(format!(
                        "length mismatch: stored {n}, notified {len}"
                    )))
                }
                Err(ShmError::WrongState { .. }) if spins < 1_000_000 => {
                    spins += 1;
                    std::thread::yield_now();
                }
                Err(e) => return Err(map_err(e)),
            }
        }
    }

    fn max_payload(&self) -> usize {
        self.shm.slot_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_free_channel_bridges_both_directions() {
        let ch = ShmChannel::allocate(4, 4096);
        let client = ShmPayloadChannel::new(&ch, Side::Client);
        let target = ShmPayloadChannel::new(&ch, Side::Target);

        let (slot, len) = client.publish(b"h2c payload").unwrap();
        let mut buf = vec![0u8; len as usize];
        target.consume(slot, len, &mut buf).unwrap();
        assert_eq!(buf, b"h2c payload");

        let (slot, len) = target.publish(b"c2h payload").unwrap();
        let mut buf = vec![0u8; len as usize];
        client.consume(slot, len, &mut buf).unwrap();
        assert_eq!(buf, b"c2h payload");
    }

    #[test]
    fn max_payload_is_slot_size() {
        let ch = ShmChannel::allocate(2, 8192);
        let client = ShmPayloadChannel::new(&ch, Side::Client);
        assert_eq!(client.max_payload(), 8192);
    }

    #[test]
    fn wrong_destination_length_rejected() {
        let ch = ShmChannel::allocate(2, 64);
        let client = ShmPayloadChannel::new(&ch, Side::Client);
        let target = ShmPayloadChannel::new(&ch, Side::Target);
        let (slot, len) = client.publish(b"abc").unwrap();
        let mut small = vec![0u8; 1];
        assert!(target.consume(slot, len, &mut small).is_err());
    }

    #[test]
    fn locked_baseline_roundtrip() {
        let (client, target) = LockedPayloadChannel::pair(4, 1024);
        let (slot, len) = client.publish(b"locked path").unwrap();
        let mut buf = vec![0u8; len as usize];
        target.consume(slot, len, &mut buf).unwrap();
        assert_eq!(buf, b"locked path");
        // And the reverse direction.
        let (slot, len) = target.publish(b"reply").unwrap();
        let mut buf = vec![0u8; len as usize];
        client.consume(slot, len, &mut buf).unwrap();
        assert_eq!(buf, b"reply");
    }

    #[test]
    fn quarantined_channel_fails_fast_and_reclaims() {
        let ch = ShmChannel::allocate(4, 256);
        let client: Arc<dyn PayloadChannel> = ShmPayloadChannel::new(&ch, Side::Client);
        // Publish two payloads the (dead) target never consumes.
        let (slot_a, _) = client.publish(b"orphan a").unwrap();
        let (slot_b, _) = client.publish(b"orphan b").unwrap();
        client.quarantine();
        // Denied immediately, not after the spin budget.
        assert!(client.publish(b"after quarantine").is_err());
        assert!(client.alloc(8).is_err());
        // The sweep claws both orphaned slots back.
        assert_eq!(client.reclaim(), 2);
        assert!(!client.reclaim_slot(slot_a));
        assert!(!client.reclaim_slot(slot_b));
    }

    #[test]
    fn concurrent_producer_consumer_through_trait() {
        let ch = ShmChannel::allocate(8, 4096);
        let client: Arc<dyn PayloadChannel> = ShmPayloadChannel::new(&ch, Side::Client);
        let target: Arc<dyn PayloadChannel> = ShmPayloadChannel::new(&ch, Side::Target);
        let (tx, rx) = std::sync::mpsc::channel::<(u32, u32, u8)>();

        let producer = std::thread::spawn(move || {
            for i in 0..2_000u32 {
                let stamp = (i % 250) as u8 + 1;
                let body = vec![stamp; 1024];
                let (slot, len) = client.publish(&body).unwrap();
                tx.send((slot, len, stamp)).unwrap();
            }
        });
        let consumer = std::thread::spawn(move || {
            let mut buf = vec![0u8; 1024];
            while let Ok((slot, len, stamp)) = rx.recv() {
                target.consume(slot, len, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == stamp));
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    }
}
