//! Flow-control accounting (§4.4.2).
//!
//! NVMe/TCP has two write flow-control regimes: in-capsule data for small
//! I/O (one control message) and the conservative CMD → R2T → H2C exchange
//! for large I/O (three control messages before the SSD sees the write,
//! plus the completion). The shared-memory channel lets payload bytes park
//! in the region until the target drains them, so the adaptive fabric
//! switches *every* write to in-capsule semantics — "eliminating steps ②
//! and ④" of Fig. 7.
//!
//! This module is the single source of truth for per-I/O control-message
//! counts; both the real runtime (for assertions and stats) and the
//! simulation (for latency accounting) use it.

use oaf_nvmeof::FlowMode;

/// I/O direction for accounting purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A read command.
    Read,
    /// A write command.
    Write,
}

/// Which data channel the I/O runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataChannel {
    /// Payload inline in TCP PDUs.
    TcpInline,
    /// Payload through the shared-memory double buffer.
    Shm,
}

/// Number of control messages exchanged for one I/O, *excluding* bulk
/// data bytes (data PDU headers count as control when the payload is in
/// shared memory, because only the notification crosses TCP).
pub fn control_messages(
    op: OpKind,
    io_size: usize,
    channel: DataChannel,
    flow: FlowMode,
    in_capsule_max: usize,
) -> u32 {
    match (op, channel) {
        (OpKind::Write, DataChannel::TcpInline) => {
            if io_size <= in_capsule_max {
                // CMD(+data) ... RESP
                2
            } else {
                // CMD, R2T, H2C header, RESP
                4
            }
        }
        (OpKind::Write, DataChannel::Shm) => match flow {
            // Fig. 7: CMD ①, R2T ②, H2C notification ④, RESP ⑧.
            FlowMode::Conservative => 4,
            // §4.4.2: R2T and the separate H2C notification are gone.
            FlowMode::InCapsule => 2,
        },
        (OpKind::Read, DataChannel::TcpInline) => {
            // CMD, RESP (data PDUs carry payload, counted as data).
            2
        }
        (OpKind::Read, DataChannel::Shm) => match flow {
            // Naive shm read: CMD, slot-ready notify, slot-consumed ack,
            // RESP — the conservative regime needs the ack because the
            // target may not overwrite a slot the client still reads.
            FlowMode::Conservative => 4,
            // Optimized: data can sit in the region; the notify doubles
            // as the completion and the double-buffer state machine
            // replaces the explicit ack.
            FlowMode::InCapsule => 2,
        },
    }
}

/// Messages eliminated by switching the shared-memory channel from
/// conservative to in-capsule flow control.
pub fn messages_saved(op: OpKind, io_size: usize, in_capsule_max: usize) -> u32 {
    control_messages(
        op,
        io_size,
        DataChannel::Shm,
        FlowMode::Conservative,
        in_capsule_max,
    ) - control_messages(
        op,
        io_size,
        DataChannel::Shm,
        FlowMode::InCapsule,
        in_capsule_max,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const IN_CAPSULE: usize = 8 * 1024;

    #[test]
    fn small_tcp_write_is_in_capsule() {
        assert_eq!(
            control_messages(
                OpKind::Write,
                4096,
                DataChannel::TcpInline,
                FlowMode::Conservative,
                IN_CAPSULE
            ),
            2
        );
    }

    #[test]
    fn large_tcp_write_is_conservative() {
        assert_eq!(
            control_messages(
                OpKind::Write,
                128 * 1024,
                DataChannel::TcpInline,
                FlowMode::Conservative,
                IN_CAPSULE
            ),
            4
        );
    }

    #[test]
    fn shm_flow_control_halves_write_messages() {
        // Irrespective of I/O size (§4.4.2: "irrespective of the I/O size").
        for size in [4096, 128 * 1024, 2 * 1024 * 1024] {
            assert_eq!(
                messages_saved(OpKind::Write, size, IN_CAPSULE),
                2,
                "size {size}"
            );
        }
    }

    #[test]
    fn shm_flow_control_halves_read_messages() {
        assert_eq!(messages_saved(OpKind::Read, 512 * 1024, IN_CAPSULE), 2);
    }

    #[test]
    fn tcp_reads_always_two_messages() {
        for size in [512, 4096, 1 << 20] {
            assert_eq!(
                control_messages(
                    OpKind::Read,
                    size,
                    DataChannel::TcpInline,
                    FlowMode::Conservative,
                    IN_CAPSULE
                ),
                2
            );
        }
    }

    #[test]
    fn optimized_shm_matches_small_io_tcp() {
        // The optimized shared-memory flow gives every I/O the message
        // count stock NVMe/TCP reserves for small writes.
        assert_eq!(
            control_messages(
                OpKind::Write,
                1 << 20,
                DataChannel::Shm,
                FlowMode::InCapsule,
                IN_CAPSULE
            ),
            control_messages(
                OpKind::Write,
                4096,
                DataChannel::TcpInline,
                FlowMode::Conservative,
                IN_CAPSULE
            ),
        );
    }
}
