//! The real (threaded) NVMe-oAF runtime: the co-designed client API.
//!
//! [`AfClient`] is what an application co-designed with the adaptive
//! fabric sees (the paper co-designs SPDK `perf` and h5bench, §4.6): it
//! allocates I/O buffers through the Buffer Manager — which transparently
//! returns zero-copy shared-memory leases when the fabric is local — and
//! submits I/O that rides whichever channel the Connection Manager
//! selected. "The AF write distinguishes the control and data path during
//! the runtime and sends the data over shared memory whereas the control
//! messages over TCP, unbeknownst to the application."

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use oaf_nvmeof::nvme::controller::{Controller, IdentifyInfo};
use oaf_nvmeof::transport::{ControlTransport, MemTransport};
use oaf_nvmeof::{Initiator, NvmeofError};

use crate::buf::{BufferManager, DpdkPool, IoBuffer};
use crate::conn::{ConnectionManager, EstablishedFabric, FabricSettings};
use crate::endpoint::AfEndpoint;
use crate::locality::{HostRegistry, ProcessId};
use crate::stats::{ClientStats, StatsSnapshot};
use oaf_telemetry::Registry;

/// Default I/O timeout for the blocking convenience API.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// A connected NVMe-oAF client.
pub struct AfClient {
    initiator: Initiator<ControlTransport>,
    bufmgr: BufferManager,
    endpoint: Arc<AfEndpoint>,
    stats: Arc<ClientStats>,
    /// Per-command accounting metadata: `(bytes, zero_copy, is_read)`,
    /// consumed when the completion arrives.
    inflight_meta: std::collections::HashMap<u16, (u64, bool, bool)>,
}

/// Handle pair returned by [`launch`]: the client plus the target handle
/// needed for shutdown.
pub struct AfPair {
    /// The connected client.
    pub client: AfClient,
    /// The running target.
    pub target: oaf_nvmeof::target::TargetHandle,
    /// Telemetry registry every layer of this fabric reports into:
    /// initiator (`client`), target (`target`), both transport endpoints,
    /// the in-region control rings when active, fabric decisions
    /// (`fabric`), and the client's application view (`app`).
    pub telemetry: Arc<Registry>,
}

/// One-call setup: registers both processes, establishes the fabric, and
/// wraps the initiator in the co-designed client API.
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use oaf_core::conn::FabricSettings;
/// use oaf_core::locality::{HostRegistry, ProcessId};
/// use oaf_core::runtime::launch;
/// use oaf_nvmeof::nvme::controller::Controller;
/// use oaf_nvmeof::nvme::namespace::Namespace;
///
/// let mut controller = Controller::new();
/// controller.add_namespace(Namespace::new(1, 4096, 256));
/// let registry = Arc::new(HostRegistry::new());
/// // Same host id on both sides: the helper hot-plugs shared memory.
/// let mut pair = launch(&registry, (ProcessId(1), 7), (ProcessId(2), 7),
///                       controller, FabricSettings::default()).unwrap();
/// assert!(pair.client.shm_active());
///
/// let mut buf = pair.client.alloc(4096).unwrap(); // zero-copy lease
/// buf[0] = 42;
/// pair.client.write(1, 0, 1, buf, Duration::from_secs(5)).unwrap();
/// let back = pair.client.read(1, 0, 1, 4096, Duration::from_secs(5)).unwrap();
/// assert_eq!(back[0], 42);
/// # pair.client.disconnect().unwrap();
/// # pair.target.shutdown().unwrap();
/// ```
pub fn launch(
    registry: &Arc<HostRegistry>,
    client: (ProcessId, u64),
    target: (ProcessId, u64),
    controller: Controller,
    settings: FabricSettings,
) -> Result<AfPair, NvmeofError> {
    registry.register(client.0, client.1);
    registry.register(target.0, target.1);
    let cm = ConnectionManager::new(registry.clone());
    register_store_metrics(&controller, cm.telemetry());
    let EstablishedFabric {
        initiator,
        endpoint,
        shm,
        target,
    } = cm.establish(client.0, target.0, controller, &settings)?;
    // Pool buffers are sized generously past the slot/chunk size so
    // block-level read-modify-write spans (payload + straddled blocks)
    // still fit in one buffer.
    let pool = DpdkPool::new(
        settings.slot_size.max(settings.read_chunk) * 2,
        settings.depth.max(8),
    );
    let bufmgr = BufferManager::new(pool, shm);
    let stats = ClientStats::new();
    let telemetry = cm.telemetry().clone();
    stats.register(&telemetry.scope("app"));
    Ok(AfPair {
        client: AfClient {
            initiator,
            bufmgr,
            endpoint,
            stats,
            inflight_meta: std::collections::HashMap::new(),
        },
        target,
        telemetry,
    })
}

/// Handles returned by [`launch_many`]: the clients plus the shared
/// storage-service handle.
pub struct AfGroup {
    /// One connected client per requested `(ProcessId, host)`.
    pub clients: Vec<AfClient>,
    /// The single storage-service reactor serving all of them.
    pub target: oaf_nvmeof::target::TargetHandle,
    /// Telemetry registry with per-connection scopes: `client<i>`,
    /// `target_conn<i>`, `transport_client<i>`, and `app<i>` for each
    /// requested client index.
    pub telemetry: Arc<Registry>,
}

/// Registers the durable-store telemetry of every file-backed namespace
/// under a `store_ns<id>` scope, so journal appends, fsync latency and
/// recovery counters land in the same registry as the fabric metrics.
/// RAM-backed namespaces have no store metrics and are skipped.
fn register_store_metrics(controller: &Controller, telemetry: &Registry) {
    for id in controller.namespace_ids() {
        if let Some(m) = controller.namespace(id).and_then(|ns| ns.store_metrics()) {
            m.register(&telemetry.scope(&format!("store_ns{id}")));
        }
    }
}

/// Per-client wiring produced by [`wire_clients`]: the client's process
/// id, its control transport, and its side of the shm payload channel
/// (when co-located).
type ClientSide = (
    ProcessId,
    ControlTransport,
    Option<Arc<crate::payload_impl::ShmPayloadChannel>>,
);

/// Builds the target-side [`ConnectionSpec`]s and client-side transport
/// endpoints for every requested client — the wiring shared by
/// [`launch_many`] and [`launch_many_sharded`].
///
/// [`ConnectionSpec`]: oaf_nvmeof::server::ConnectionSpec
fn wire_clients(
    registry: &Arc<HostRegistry>,
    clients: &[(ProcessId, u64)],
    target: (ProcessId, u64),
    settings: &FabricSettings,
    telemetry: &Registry,
) -> (Vec<oaf_nvmeof::server::ConnectionSpec>, Vec<ClientSide>) {
    use oaf_nvmeof::payload::PayloadChannel;
    use oaf_nvmeof::pdu::{AF_CAP_SHM, AF_CAP_SHM_INCAPSULE, AF_CAP_ZERO_COPY};
    use oaf_nvmeof::server::ConnectionSpec;
    use oaf_nvmeof::target::TargetConfig;
    use oaf_shmem::channel::Side;

    let mut specs = Vec::new();
    let mut client_sides = Vec::new();
    for (i, &(pid, host)) in clients.iter().enumerate() {
        registry.register(pid, host);
        // The helper process hot-plugs an isolated region per co-located
        // client (the §6 security model).
        let hotplug = registry.hotplug(pid, target.0, settings.depth, settings.slot_size);
        // Co-located clients keep the in-memory control channel next to
        // their shm payload region; remote clients ride the real-socket
        // NVMe/TCP data plane (§4.5), falling back to the in-memory
        // stand-in only where the environment forbids sockets.
        let (ct, tt) = if hotplug.is_some() {
            let (c, t) = MemTransport::pair();
            (ControlTransport::Mem(c), ControlTransport::Mem(t))
        } else {
            match oaf_nvmeof::tcp::TcpTransport::loopback_pair(oaf_nvmeof::tcp::TcpConfig {
                backoff: settings.backoff(),
                ..oaf_nvmeof::tcp::TcpConfig::default()
            }) {
                Ok((c, t)) => (ControlTransport::Tcp(c), ControlTransport::Tcp(t)),
                Err(_) => {
                    let (c, t) = MemTransport::pair();
                    (ControlTransport::Mem(c), ControlTransport::Mem(t))
                }
            }
        };
        ct.metrics()
            .register(&telemetry.scope(&format!("transport_client{i}")));
        if let Some(m) = ct.tcp_metrics() {
            m.register(&telemetry.scope(&format!("tcp_client{i}")));
        }
        if let Some(m) = tt.tcp_metrics() {
            m.register(&telemetry.scope(&format!("tcp_target{i}")));
        }
        let (client_shm, target_shm) = match &hotplug {
            Some(hp) => {
                let c = crate::payload_impl::ShmPayloadChannel::new(&hp.channel, Side::Client);
                let t = crate::payload_impl::ShmPayloadChannel::new(&hp.channel, Side::Target);
                c.lease_stats()
                    .register(&telemetry.scope(&format!("bufmgr_client{i}")));
                t.lease_stats()
                    .register(&telemetry.scope(&format!("bufmgr_target{i}")));
                (Some(c), Some(t))
            }
            None => (None, None),
        };
        specs.push(ConnectionSpec {
            transport: Box::new(tt),
            cfg: TargetConfig {
                in_capsule_max: settings.in_capsule_max,
                read_chunk: settings.read_chunk,
                af_caps: AF_CAP_SHM | AF_CAP_SHM_INCAPSULE | AF_CAP_ZERO_COPY,
                target_id: target.0 .0,
            },
            payload: target_shm.map(|t| t as Arc<dyn PayloadChannel>),
            scope: Some(format!("target_conn{i}")),
        });
        client_sides.push((pid, ct, client_shm));
    }
    (specs, client_sides)
}

/// Connects every wired client side and wraps it in the co-designed
/// [`AfClient`] API — the second half shared by [`launch_many`] and
/// [`launch_many_sharded`].
fn connect_clients(
    client_sides: Vec<ClientSide>,
    target_pid: ProcessId,
    settings: &FabricSettings,
    telemetry: &Registry,
) -> Result<Vec<AfClient>, NvmeofError> {
    use oaf_nvmeof::initiator::InitiatorOptions;
    use oaf_nvmeof::payload::PayloadChannel;
    use oaf_nvmeof::pdu::{AF_CAP_SHM, AF_CAP_SHM_INCAPSULE, AF_CAP_ZERO_COPY};

    // Fig. 9 runtime chunking for whichever clients landed on sockets.
    let socket_chunk = {
        use oaf_nvmeof::tune::{ChunkCostModel, ChunkSelector, KIB, MIB};
        let selector = ChunkSelector::new(ChunkCostModel::for_link_gbps(settings.link_gbps));
        selector.select(&[128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB]) as usize
    };
    let mut afs = Vec::new();
    for (i, (pid, ct, client_shm)) in client_sides.into_iter().enumerate() {
        let af_caps = if client_shm.is_some() {
            AF_CAP_SHM | AF_CAP_SHM_INCAPSULE | AF_CAP_ZERO_COPY
        } else {
            0
        };
        let write_chunk = if ct.is_socket() { socket_chunk } else { 0 };
        let initiator = Initiator::connect(
            ct,
            InitiatorOptions {
                host_id: pid.0,
                af_caps,
                flow: settings.flow,
                maxr2t: 16,
                write_chunk,
                cmd_deadline: settings.cmd_deadline,
                max_retries: settings.max_retries,
                retry_backoff: settings.retry_backoff,
                keepalive: settings
                    .keepalive_interval
                    .map(oaf_nvmeof::initiator::KeepAliveConfig::with_interval),
                backoff: settings.backoff(),
                ..InitiatorOptions::default()
            },
            client_shm.clone().map(|c| c as Arc<dyn PayloadChannel>),
            Duration::from_secs(5),
        )?;
        initiator
            .metrics()
            .register(&telemetry.scope(&format!("client{i}")));
        let endpoint = AfEndpoint::new(pid.0);
        endpoint.connect(
            target_pid.0,
            if initiator.shm_active() {
                crate::endpoint::ChannelKind::Shm
            } else {
                crate::endpoint::ChannelKind::Tcp
            },
        );
        let pool = DpdkPool::new(
            settings.slot_size.max(settings.read_chunk) * 2,
            settings.depth.max(8),
        );
        let stats = ClientStats::new();
        stats.register(&telemetry.scope(&format!("app{i}")));
        afs.push(AfClient {
            initiator,
            bufmgr: BufferManager::new(pool, client_shm),
            endpoint,
            stats,
            inflight_meta: std::collections::HashMap::new(),
        });
    }
    Ok(afs)
}

/// Multi-client setup matching the paper's architecture (Fig. 1): one
/// storage service, several client applications, each over its own
/// connection with its own isolated shared-memory channel when
/// co-located (§4.2/§6).
pub fn launch_many(
    registry: &Arc<HostRegistry>,
    clients: &[(ProcessId, u64)],
    target: (ProcessId, u64),
    controller: Controller,
    settings: FabricSettings,
) -> Result<AfGroup, NvmeofError> {
    use oaf_nvmeof::server::spawn_multi_observed;

    registry.register(target.0, target.1);
    let telemetry = Arc::new(Registry::new());
    register_store_metrics(&controller, &telemetry);
    let (specs, client_sides) = wire_clients(registry, clients, target, &settings, &telemetry);
    let target_handle = spawn_multi_observed(controller, specs, Some(&telemetry));
    let afs = connect_clients(client_sides, target.0, &settings, &telemetry)?;
    Ok(AfGroup {
        clients: afs,
        target: target_handle,
        telemetry,
    })
}

/// Handles returned by [`launch_many_sharded`]: the clients, their shard
/// assignment, and the sharded storage service.
pub struct AfShardedGroup {
    /// One connected client per requested `(ProcessId, host)`.
    pub clients: Vec<AfClient>,
    /// `shard_of[i]` is the reactor shard serving client `i`.
    pub shard_of: Vec<usize>,
    /// The sharded storage service (per-shard stats, admin mailboxes).
    pub target: oaf_nvmeof::shard::ShardedTarget,
    /// Telemetry registry. Client-side scopes are flat (`client<i>`,
    /// `transport_client<i>`, `app<i>`, …); target-side scopes arrive
    /// merged from the per-shard registries under `shard<n>_…` prefixes
    /// (`shard0_target_conn0`, `shard1_reactor`, …).
    pub telemetry: Arc<Registry>,
}

/// [`launch_many`] scaled out: the storage service runs one reactor
/// thread per shard, each exclusively owning the connections steered to
/// it (round-robin: client `i` → shard `i % shards`) and its own
/// controller view over the one storage. No lock crosses shards on the
/// data path; each shard records telemetry into its own registry, merged
/// into the returned registry under `shard<n>` prefixes.
pub fn launch_many_sharded(
    registry: &Arc<HostRegistry>,
    clients: &[(ProcessId, u64)],
    target: (ProcessId, u64),
    controller: Controller,
    settings: FabricSettings,
    shards: usize,
) -> Result<AfShardedGroup, NvmeofError> {
    use oaf_nvmeof::shard::{spawn_sharded, ShardConfig, Steering};

    registry.register(target.0, target.1);
    let telemetry = Arc::new(Registry::new());
    register_store_metrics(&controller, &telemetry);
    let (specs, client_sides) = wire_clients(registry, clients, target, &settings, &telemetry);
    let cfg = ShardConfig::new(shards);
    let shard_of: Vec<usize> = (0..clients.len())
        .map(|i| cfg.steering.shard_for(i, shards))
        .collect();
    debug_assert!(matches!(cfg.steering, Steering::RoundRobin));
    let sharded = spawn_sharded(controller, specs, cfg, Some(&telemetry));
    let afs = connect_clients(client_sides, target.0, &settings, &telemetry)?;
    Ok(AfShardedGroup {
        clients: afs,
        shard_of,
        target: sharded,
        telemetry,
    })
}

impl AfClient {
    /// The client's AF endpoint object.
    pub fn endpoint(&self) -> &Arc<AfEndpoint> {
        &self.endpoint
    }

    /// Whether the shared-memory data path is active.
    pub fn shm_active(&self) -> bool {
        self.initiator.shm_active()
    }

    /// Allocates an I/O buffer of `len` bytes through the Buffer Manager;
    /// returns a zero-copy lease when the fabric is local.
    pub fn alloc(&self, len: usize) -> Result<IoBuffer, NvmeofError> {
        self.bufmgr
            .alloc(len)
            .map_err(|e| NvmeofError::Payload(e.to_string()))
    }

    /// Largest single buffer [`AfClient::alloc`] can provide; larger
    /// transfers must be split by the caller.
    pub fn max_buffer(&self) -> usize {
        self.bufmgr.max_alloc()
    }

    /// Writes a buffer obtained from [`AfClient::alloc`]. Zero-copy
    /// leases publish in place; pooled buffers take the TCP (or one-copy
    /// shared-memory) path.
    pub fn write(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        buf: IoBuffer,
        timeout: Duration,
    ) -> Result<(), NvmeofError> {
        let t0 = std::time::Instant::now();
        let cid = self.submit_write(nsid, slba, nlb, buf)?;
        let result = self.wait(cid, timeout);
        self.stats.record_blocking(t0.elapsed());
        match result {
            Ok(r) if r.status.is_ok() => Ok(()),
            Ok(r) => Err(NvmeofError::Nvme(r.status)),
            Err(e) => Err(e),
        }
    }

    /// Asynchronous variant of [`AfClient::write`]: returns the command
    /// id; match completions via [`AfClient::poll`].
    pub fn submit_write(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        buf: IoBuffer,
    ) -> Result<u16, NvmeofError> {
        let bytes = buf.len() as u64;
        let zero_copy = buf.is_zero_copy();
        let cid = match buf {
            // The lease publishes in place: the slot the application
            // filled is handed to the target untouched (§4.4.3).
            IoBuffer::Shm(lease) => self.initiator.submit_write_lease(nsid, slba, nlb, lease)?,
            IoBuffer::Pooled(b) => {
                // The copy-out the zero-copy design eliminates (§4.4.3):
                // the pooled buffer must be materialized for the wire.
                self.initiator
                    .submit_write(nsid, slba, nlb, Bytes::copy_from_slice(&b))?
            }
        };
        self.inflight_meta.insert(cid, (bytes, zero_copy, false));
        Ok(cid)
    }

    /// Blocking read.
    pub fn read(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
        timeout: Duration,
    ) -> Result<Vec<u8>, NvmeofError> {
        let t0 = std::time::Instant::now();
        let cid = self.submit_read(nsid, slba, nlb, expected_len)?;
        let result = self.wait(cid, timeout);
        self.stats.record_blocking(t0.elapsed());
        match result {
            Ok(r) if r.status.is_ok() => Ok(r.data),
            Ok(r) => Err(NvmeofError::Nvme(r.status)),
            Err(e) => Err(e),
        }
    }

    /// Blocking read that lends the payload to `f` instead of returning
    /// an owned `Vec`. On a local fabric the slice borrows the target's
    /// shared-memory slot directly — no client-side copy or allocation —
    /// which is the read half of the Fig. 8 zero-copy step; on TCP it
    /// borrows the reassembled receive buffer.
    pub fn read_with(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
        timeout: Duration,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), NvmeofError> {
        let t0 = std::time::Instant::now();
        let cid = self
            .initiator
            .submit_read_borrowed(nsid, slba, nlb, expected_len)?;
        self.inflight_meta
            .insert(cid, (expected_len as u64, false, true));
        let result = self.wait(cid, timeout);
        self.stats.record_blocking(t0.elapsed());
        match result {
            Ok(mut r) if r.status.is_ok() => self.initiator.consume_read_with(&mut r, f),
            Ok(r) => Err(NvmeofError::Nvme(r.status)),
            Err(e) => Err(e),
        }
    }

    /// A snapshot of this client's I/O counters (lock-free; readable from
    /// any thread via a cloned handle from [`AfClient::stats_handle`]).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Shares the live counter set with an observer thread.
    pub fn stats_handle(&self) -> Arc<ClientStats> {
        self.stats.clone()
    }

    /// Asynchronous read submission.
    pub fn submit_read(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
    ) -> Result<u16, NvmeofError> {
        let cid = self.initiator.submit_read(nsid, slba, nlb, expected_len)?;
        self.inflight_meta
            .insert(cid, (expected_len as u64, false, true));
        Ok(cid)
    }

    fn account(&mut self, r: &oaf_nvmeof::initiator::IoResult) {
        let Some((bytes, zero_copy, is_read)) = self.inflight_meta.remove(&r.cid) else {
            return;
        };
        if !r.status.is_ok() {
            self.stats.record_error();
        } else if is_read {
            self.stats.record_read(bytes);
        } else {
            self.stats.record_write(bytes, zero_copy);
        }
    }

    /// Polls for completions.
    pub fn poll(&mut self) -> Result<Vec<oaf_nvmeof::initiator::IoResult>, NvmeofError> {
        let results = self.initiator.poll()?;
        for r in &results {
            self.account(r);
        }
        Ok(results)
    }

    /// Waits for a specific command.
    pub fn wait(
        &mut self,
        cid: u16,
        timeout: Duration,
    ) -> Result<oaf_nvmeof::initiator::IoResult, NvmeofError> {
        match self.initiator.wait(cid, timeout) {
            Ok(r) => {
                self.account(&r);
                Ok(r)
            }
            Err(e) => {
                if matches!(e, NvmeofError::Timeout { .. }) {
                    self.stats.record_error();
                }
                Err(e)
            }
        }
    }

    /// Blocking durability barrier: every write acknowledged before this
    /// returns survives target power loss (an `fdatasync` on file-backed
    /// namespaces, an ack on RAM disks).
    pub fn flush(&mut self, nsid: u32, timeout: Duration) -> Result<(), NvmeofError> {
        let t0 = std::time::Instant::now();
        let cid = self.initiator.submit_flush(nsid)?;
        let result = self.wait(cid, timeout);
        self.stats.record_blocking(t0.elapsed());
        match result {
            Ok(r) if r.status.is_ok() => Ok(()),
            Ok(r) => Err(NvmeofError::Nvme(r.status)),
            Err(e) => Err(e),
        }
    }

    /// Blocking Dataset Management deallocate (TRIM): the range is
    /// dropped from the device and reads back as zeroes.
    pub fn trim(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        timeout: Duration,
    ) -> Result<(), NvmeofError> {
        let t0 = std::time::Instant::now();
        let cid = self.initiator.submit_trim(nsid, slba, nlb)?;
        let result = self.wait(cid, timeout);
        self.stats.record_blocking(t0.elapsed());
        match result {
            Ok(r) if r.status.is_ok() => Ok(()),
            Ok(r) => Err(NvmeofError::Nvme(r.status)),
            Err(e) => Err(e),
        }
    }

    /// Blocking FUA write: like [`AfClient::write`], but the completion
    /// is not posted until the payload is durable on the target's media.
    pub fn write_fua(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        buf: IoBuffer,
        timeout: Duration,
    ) -> Result<(), NvmeofError> {
        let t0 = std::time::Instant::now();
        let bytes = buf.len() as u64;
        // FUA rides the payload-retaining submit path; a zero-copy lease
        // cannot be replayed after an abort, so the payload is
        // materialized here (durability over copy elision).
        let data = Bytes::copy_from_slice(&buf);
        let cid = self.initiator.submit_write_fua(nsid, slba, nlb, data)?;
        self.inflight_meta.insert(cid, (bytes, false, false));
        let result = self.wait(cid, timeout);
        self.stats.record_blocking(t0.elapsed());
        match result {
            Ok(r) if r.status.is_ok() => Ok(()),
            Ok(r) => Err(NvmeofError::Nvme(r.status)),
            Err(e) => Err(e),
        }
    }

    /// Asynchronous variant of [`AfClient::write_fua`]: returns the
    /// command id; match completions via [`AfClient::poll`]. With many
    /// FUA submissions in flight the target's group-commit coordinator
    /// retires their barriers on shared `fdatasync`es.
    pub fn submit_write_fua(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        buf: IoBuffer,
    ) -> Result<u16, NvmeofError> {
        let bytes = buf.len() as u64;
        // Same materialization rule as the blocking form: a zero-copy
        // lease cannot be replayed after an abort.
        let data = Bytes::copy_from_slice(&buf);
        let cid = self.initiator.submit_write_fua(nsid, slba, nlb, data)?;
        self.inflight_meta.insert(cid, (bytes, false, false));
        Ok(cid)
    }

    /// Namespace geometry.
    pub fn identify(&mut self, nsid: u32) -> Result<IdentifyInfo, NvmeofError> {
        self.initiator.identify(nsid, DEFAULT_TIMEOUT)
    }

    /// Graceful disconnect.
    pub fn disconnect(&mut self) -> Result<(), NvmeofError> {
        self.endpoint.close();
        self.initiator.disconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_nvmeof::nvme::namespace::Namespace;

    fn controller() -> Controller {
        let mut c = Controller::new();
        c.add_namespace(Namespace::new(1, 4096, 2048));
        c
    }

    fn launch_pair(local: bool) -> AfPair {
        let registry = Arc::new(HostRegistry::new());
        launch(
            &registry,
            (ProcessId(1), 10),
            (ProcessId(2), if local { 10 } else { 11 }),
            controller(),
            FabricSettings::default(),
        )
        .unwrap()
    }

    #[test]
    fn local_client_gets_zero_copy_buffers() {
        let mut pair = launch_pair(true);
        assert!(pair.client.shm_active());
        let buf = pair.client.alloc(64 * 1024).unwrap();
        assert!(buf.is_zero_copy());
        drop(buf);
        pair.client.disconnect().unwrap();
        pair.target.shutdown().unwrap();
    }

    #[test]
    fn remote_client_gets_pooled_buffers() {
        let mut pair = launch_pair(false);
        assert!(!pair.client.shm_active());
        let buf = pair.client.alloc(64 * 1024).unwrap();
        assert!(!buf.is_zero_copy());
        drop(buf);
        pair.client.disconnect().unwrap();
        pair.target.shutdown().unwrap();
    }

    #[test]
    fn zero_copy_write_roundtrip() {
        let mut pair = launch_pair(true);
        let mut buf = pair.client.alloc(128 * 1024).unwrap();
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let expected: Vec<u8> = (0..128 * 1024).map(|i| (i % 251) as u8).collect();
        pair.client.write(1, 0, 32, buf, DEFAULT_TIMEOUT).unwrap();
        let back = pair
            .client
            .read(1, 0, 32, 128 * 1024, DEFAULT_TIMEOUT)
            .unwrap();
        assert_eq!(back, expected);
        pair.client.disconnect().unwrap();
        pair.target.shutdown().unwrap();
    }

    #[test]
    fn pooled_write_roundtrip_over_tcp() {
        let mut pair = launch_pair(false);
        let mut buf = pair.client.alloc(64 * 1024).unwrap();
        buf.fill(0x77);
        pair.client.write(1, 4, 16, buf, DEFAULT_TIMEOUT).unwrap();
        let back = pair
            .client
            .read(1, 4, 16, 64 * 1024, DEFAULT_TIMEOUT)
            .unwrap();
        assert!(back.iter().all(|&b| b == 0x77));
        pair.client.disconnect().unwrap();
        pair.target.shutdown().unwrap();
    }

    #[test]
    fn pipelined_zero_copy_writes() {
        let mut pair = launch_pair(true);
        let qd = 16;
        let mut cids = Vec::new();
        for i in 0..qd {
            let mut buf = pair.client.alloc(4096).unwrap();
            buf.fill(i as u8);
            cids.push(pair.client.submit_write(1, i as u64, 1, buf).unwrap());
        }
        for cid in cids {
            let r = pair.client.wait(cid, DEFAULT_TIMEOUT).unwrap();
            assert!(r.status.is_ok());
        }
        for i in 0..qd {
            let back = pair
                .client
                .read(1, i as u64, 1, 4096, DEFAULT_TIMEOUT)
                .unwrap();
            assert!(back.iter().all(|&b| b == i as u8), "lba {i}");
        }
        pair.client.disconnect().unwrap();
        pair.target.shutdown().unwrap();
    }

    #[test]
    fn in_region_control_runtime_roundtrip() {
        use crate::conn::ControlPath;
        let registry = Arc::new(HostRegistry::new());
        let mut pair = launch(
            &registry,
            (ProcessId(1), 10),
            (ProcessId(2), 10),
            controller(),
            FabricSettings {
                control: ControlPath::InRegion,
                ..FabricSettings::default()
            },
        )
        .unwrap();
        assert!(pair.client.shm_active());
        let mut buf = pair.client.alloc(64 * 1024).unwrap();
        buf.fill(0x3c);
        pair.client.write(1, 8, 16, buf, DEFAULT_TIMEOUT).unwrap();
        let back = pair
            .client
            .read(1, 8, 16, 64 * 1024, DEFAULT_TIMEOUT)
            .unwrap();
        assert!(back.iter().all(|&b| b == 0x3c));
        pair.client.disconnect().unwrap();
        pair.target.shutdown().unwrap();
    }

    #[test]
    fn identify_through_af() {
        let mut pair = launch_pair(true);
        let info = pair.client.identify(1).unwrap();
        assert_eq!(info.block_size, 4096);
        pair.client.disconnect().unwrap();
        pair.target.shutdown().unwrap();
    }

    #[test]
    fn sharded_launch_serves_all_clients_over_one_storage() {
        let registry = Arc::new(HostRegistry::new());
        let clients: Vec<(ProcessId, u64)> = (0..4).map(|i| (ProcessId(10 + i), 10)).collect();
        let mut group = launch_many_sharded(
            &registry,
            &clients,
            (ProcessId(2), 10),
            controller(),
            FabricSettings::default(),
            2,
        )
        .unwrap();
        assert_eq!(group.target.shards(), 2);
        assert_eq!(group.shard_of, vec![0, 1, 0, 1]);

        // Every client writes its own block; every write is visible from
        // a client on the *other* shard: one storage behind the shards.
        for (i, c) in group.clients.iter_mut().enumerate() {
            let mut buf = c.alloc(4096).unwrap();
            buf.fill(0x40 + i as u8);
            c.write(1, i as u64, 1, buf, DEFAULT_TIMEOUT).unwrap();
        }
        for i in 0..4usize {
            let reader = (i + 1) % 4; // always a different shard (RR over 2)
            let back = group.clients[reader]
                .read(1, i as u64, 1, 4096, DEFAULT_TIMEOUT)
                .unwrap();
            assert!(back.iter().all(|&b| b == 0x40 + i as u8), "lba {i}");
        }

        // Target-side telemetry arrives merged under shard prefixes and
        // both shards actually served commands.
        let snap = group.telemetry.snapshot();
        for shard in 0..2 {
            assert!(
                snap.counter(&format!("shard{shard}_reactor"), "ops") > 0,
                "shard {shard} reactor saw no ops"
            );
        }
        assert!(snap.counter("shard0_target_conn0", "ops") > 0);
        assert!(snap.counter("shard1_target_conn1", "ops") > 0);

        for c in &mut group.clients {
            c.disconnect().unwrap();
        }
        group.target.shutdown().unwrap();
    }
}
