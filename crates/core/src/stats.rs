//! Runtime observability: per-client I/O statistics.
//!
//! A storage service operator needs to see what each fabric connection is
//! doing — ops, bytes, channel mix, latency of the synchronous paths —
//! without perturbing the data path. [`ClientStats`] is a thin shim over
//! [`oaf_telemetry`] counters the runtime updates inline; reading them is
//! free of locks and safe from any thread, and the same handles can be
//! published into a [`oaf_telemetry::Registry`] scope for export.

use std::sync::Arc;
use std::time::Duration;

use oaf_telemetry::{Counter, Scope};

/// Snapshot of a client's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed writes.
    pub writes: u64,
    /// Completed reads.
    pub reads: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// Payload bytes read.
    pub bytes_read: u64,
    /// Writes that used a zero-copy shared-memory lease.
    pub zero_copy_writes: u64,
    /// Failed operations (NVMe errors, timeouts, transport errors).
    pub errors: u64,
    /// Cumulative wall-clock microseconds spent in blocking I/O calls.
    pub blocking_micros: u64,
}

impl StatsSnapshot {
    /// Total completed operations.
    pub fn ops(&self) -> u64 {
        self.writes + self.reads
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes_written + self.bytes_read
    }

    /// Mean blocking-call latency, if any blocking ops completed.
    pub fn mean_blocking_latency(&self) -> Option<Duration> {
        let ops = self.ops();
        (ops > 0).then(|| Duration::from_micros(self.blocking_micros / ops))
    }

    /// Fraction of writes that were zero-copy.
    pub fn zero_copy_fraction(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.zero_copy_writes as f64 / self.writes as f64
        }
    }
}

/// Lock-free counter set shared between the client and its observers.
#[derive(Default)]
pub struct ClientStats {
    writes: Counter,
    reads: Counter,
    bytes_written: Counter,
    bytes_read: Counter,
    zero_copy_writes: Counter,
    errors: Counter,
    blocking_micros: Counter,
}

impl ClientStats {
    /// Fresh zeroed counters behind an `Arc` for sharing with observers.
    pub fn new() -> Arc<Self> {
        Arc::new(ClientStats::default())
    }

    /// Publishes every counter into `scope`, so the client's application
    /// view exports alongside the rest of the runtime telemetry.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("writes", &self.writes);
        scope.adopt_counter("reads", &self.reads);
        scope.adopt_counter("bytes_written", &self.bytes_written);
        scope.adopt_counter("bytes_read", &self.bytes_read);
        scope.adopt_counter("zero_copy_writes", &self.zero_copy_writes);
        scope.adopt_counter("errors", &self.errors);
        scope.adopt_counter("blocking_micros", &self.blocking_micros);
    }

    /// Records a completed write of `bytes` (zero-copy or not).
    pub fn record_write(&self, bytes: u64, zero_copy: bool) {
        self.writes.inc();
        self.bytes_written.add(bytes);
        if zero_copy {
            self.zero_copy_writes.inc();
        }
    }

    /// Records a completed read of `bytes`.
    pub fn record_read(&self, bytes: u64) {
        self.reads.inc();
        self.bytes_read.add(bytes);
    }

    /// Records a failed operation.
    pub fn record_error(&self) {
        self.errors.inc();
    }

    /// Adds blocking wall-clock time.
    pub fn record_blocking(&self, d: Duration) {
        self.blocking_micros.add(d.as_micros() as u64);
    }

    /// A coherent-enough snapshot (individual counters are exact; the set
    /// is racy by design — observability, not accounting).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            writes: self.writes.get(),
            reads: self.reads.get(),
            bytes_written: self.bytes_written.get(),
            bytes_read: self.bytes_read.get(),
            zero_copy_writes: self.zero_copy_writes.get(),
            errors: self.errors.get(),
            blocking_micros: self.blocking_micros.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ClientStats::new();
        s.record_write(4096, true);
        s.record_write(4096, false);
        s.record_read(8192);
        s.record_error();
        s.record_blocking(Duration::from_micros(300));
        let snap = s.snapshot();
        assert_eq!(snap.ops(), 3);
        assert_eq!(snap.bytes(), 16384);
        assert_eq!(snap.zero_copy_writes, 1);
        assert_eq!(snap.errors, 1);
        assert!((snap.zero_copy_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(
            snap.mean_blocking_latency(),
            Some(Duration::from_micros(100))
        );
    }

    #[test]
    fn empty_snapshot_is_quiet() {
        let s = ClientStats::new();
        let snap = s.snapshot();
        assert_eq!(snap.ops(), 0);
        assert_eq!(snap.mean_blocking_latency(), None);
        assert_eq!(snap.zero_copy_fraction(), 0.0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = ClientStats::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.record_write(1, false);
                        s.record_read(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.writes, 40_000);
        assert_eq!(snap.reads, 40_000);
    }

    #[test]
    fn registers_into_a_registry_scope() {
        let s = ClientStats::new();
        s.record_write(4096, true);
        let registry = oaf_telemetry::Registry::new();
        s.register(&registry.scope("app"));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("app", "writes"), 1);
        assert_eq!(snap.counter("app", "bytes_written"), 4096);
    }
}
