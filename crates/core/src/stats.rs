//! Runtime observability: per-client I/O statistics.
//!
//! A storage service operator needs to see what each fabric connection is
//! doing — ops, bytes, channel mix, latency of the synchronous paths —
//! without perturbing the data path. [`ClientStats`] is a set of relaxed
//! atomic counters the runtime updates inline; reading them is free of
//! locks and safe from any thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Snapshot of a client's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed writes.
    pub writes: u64,
    /// Completed reads.
    pub reads: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
    /// Payload bytes read.
    pub bytes_read: u64,
    /// Writes that used a zero-copy shared-memory lease.
    pub zero_copy_writes: u64,
    /// Failed operations (NVMe errors, timeouts, transport errors).
    pub errors: u64,
    /// Cumulative wall-clock microseconds spent in blocking I/O calls.
    pub blocking_micros: u64,
}

impl StatsSnapshot {
    /// Total completed operations.
    pub fn ops(&self) -> u64 {
        self.writes + self.reads
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes_written + self.bytes_read
    }

    /// Mean blocking-call latency, if any blocking ops completed.
    pub fn mean_blocking_latency(&self) -> Option<Duration> {
        let ops = self.ops();
        (ops > 0).then(|| Duration::from_micros(self.blocking_micros / ops))
    }

    /// Fraction of writes that were zero-copy.
    pub fn zero_copy_fraction(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.zero_copy_writes as f64 / self.writes as f64
        }
    }
}

/// Lock-free counter set shared between the client and its observers.
#[derive(Default)]
pub struct ClientStats {
    writes: AtomicU64,
    reads: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    zero_copy_writes: AtomicU64,
    errors: AtomicU64,
    blocking_micros: AtomicU64,
}

impl ClientStats {
    /// Fresh zeroed counters behind an `Arc` for sharing with observers.
    pub fn new() -> Arc<Self> {
        Arc::new(ClientStats::default())
    }

    /// Records a completed write of `bytes` (zero-copy or not).
    pub fn record_write(&self, bytes: u64, zero_copy: bool) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        if zero_copy {
            self.zero_copy_writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a completed read of `bytes`.
    pub fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a failed operation.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds blocking wall-clock time.
    pub fn record_blocking(&self, d: Duration) {
        self.blocking_micros
            .fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// A coherent-enough snapshot (individual counters are exact; the set
    /// is racy by design — observability, not accounting).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            zero_copy_writes: self.zero_copy_writes.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            blocking_micros: self.blocking_micros.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ClientStats::new();
        s.record_write(4096, true);
        s.record_write(4096, false);
        s.record_read(8192);
        s.record_error();
        s.record_blocking(Duration::from_micros(300));
        let snap = s.snapshot();
        assert_eq!(snap.ops(), 3);
        assert_eq!(snap.bytes(), 16384);
        assert_eq!(snap.zero_copy_writes, 1);
        assert_eq!(snap.errors, 1);
        assert!((snap.zero_copy_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(
            snap.mean_blocking_latency(),
            Some(Duration::from_micros(100))
        );
    }

    #[test]
    fn empty_snapshot_is_quiet() {
        let s = ClientStats::new();
        let snap = s.snapshot();
        assert_eq!(snap.ops(), 0);
        assert_eq!(snap.mean_blocking_latency(), None);
        assert_eq!(snap.zero_copy_fraction(), 0.0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = ClientStats::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.record_write(1, false);
                        s.record_read(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.writes, 40_000);
        assert_eq!(snap.reads, 40_000);
    }
}
