//! Seeded kill-point crash soak for the durable store.
//!
//! Each iteration runs a random workload (writes, FUA writes, flushes,
//! TRIMs, Write Zeroes) over a [`CrashVfs`] that dies at a seeded
//! mutating-syscall index — mid-record-append, between the log append
//! and the data apply, inside an fsync, anywhere. The wreckage is then
//! mounted read-only and checked against a per-LBA *allowed-set* model
//! (the same discipline as the fabric's `failure_injection` soak):
//!
//! * every recovered byte must be a value some crash-consistent history
//!   could have left there — acknowledged-but-unflushed writes may be
//!   old or new, torn in-flight writes may be a prefix;
//! * bytes acknowledged under a sync barrier (flush, FUA) before the
//!   last successful barrier MUST hold exactly their synced value: a
//!   lost acknowledged-durable write is the one unforgivable bug;
//! * mounting twice yields the identical image: replay is idempotent
//!   and detects the same durable prefix both times.
//!
//! A failing run prints its seed; `OAF_CHAOS_SEED=<seed>` (plus
//! `OAF_CRASH_PHASE=<phase>` and `OAF_CACHE_BLOCKS=<n>`) replays it
//! bit-for-bit. CI's `crash` job runs the seed × phase matrix in
//! release mode, with a cache-enabled leg.
//!
//! Every round runs *through* the block cache at several capacities
//! (0 = uncached, 1 = pure thrash, 8 = mixed hit/evict) — deferred
//! applies, dirty-eviction write-backs and barrier drains all happen
//! under the same kill points and must satisfy the same model.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use oaf_chaos::rng::ChaosRng;
use oaf_chaos::CrashPoint;
use oaf_ssd::BlockStore;
use oaf_store::vfs::{CrashVfs, MemVfs, Vfs};
use oaf_store::FileDisk;

const BLOCK: usize = 512;
const BLOCKS: u64 = 64;
const LOG_BYTES: u64 = 64 * 1024;

/// Kill-window upper bound: the workload loops until the crash fires,
/// so any point in [1, MAX_OPS] is reachable.
const MAX_OPS: u64 = 600;

/// A [`CrashVfs`] handle the test keeps after boxing the other clone
/// into the disk, so the post-crash durable image stays reachable.
#[derive(Clone)]
struct SharedCrashVfs(Arc<Mutex<CrashVfs>>);

impl SharedCrashVfs {
    fn new(seed: u64, crash_at: u64) -> SharedCrashVfs {
        SharedCrashVfs(Arc::new(Mutex::new(CrashVfs::new(seed, Some(crash_at)))))
    }

    fn durable_image(&self) -> Vec<u8> {
        self.0.lock().unwrap().durable_image()
    }

    fn crashed(&self) -> bool {
        self.0.lock().unwrap().crashed()
    }
}

impl Vfs for SharedCrashVfs {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.0.lock().unwrap().read_at(off, buf)
    }
    fn write_at(&mut self, off: u64, buf: &[u8]) -> std::io::Result<()> {
        self.0.lock().unwrap().write_at(off, buf)
    }
    fn sync(&mut self) -> std::io::Result<()> {
        self.0.lock().unwrap().sync()
    }
    fn len(&self) -> std::io::Result<u64> {
        self.0.lock().unwrap().len()
    }
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        self.0.lock().unwrap().set_len(len)
    }
}

fn chaos_seed() -> u64 {
    std::env::var("OAF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15C_C4A5)
}

/// Workload phase: which operation mix drives the store into the crash.
/// Selected by `OAF_CRASH_PHASE` so CI can matrix over it.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    Write,
    Flush,
    Trim,
    Mixed,
}

fn crash_phase() -> Phase {
    match std::env::var("OAF_CRASH_PHASE").as_deref() {
        Ok("write") => Phase::Write,
        Ok("flush") => Phase::Flush,
        Ok("trim") => Phase::Trim,
        _ => Phase::Mixed,
    }
}

/// `OAF_SYNC_OFFLOAD=1` runs the soak through a [`SharedFileDisk`] with
/// the async sync worker attached: every barrier parks on the worker's
/// `fdatasync`, so kill points land *inside the offloaded sync* with
/// acknowledged-volatile state outstanding. The worker thread's
/// syscalls interleave with the workload's, so the seeded kill point is
/// reproducible in distribution rather than bit-for-bit — the
/// allowed-set model is ack-driven and holds for every interleaving.
///
/// [`SharedFileDisk`]: oaf_store::SharedFileDisk
fn sync_offload() -> bool {
    std::env::var("OAF_SYNC_OFFLOAD").as_deref() == Ok("1")
}

/// Block-cache capacities the soak sweeps per round; `OAF_CACHE_BLOCKS`
/// pins a single capacity for exact replay / CI matrix legs.
fn cache_capacities() -> Vec<usize> {
    match std::env::var("OAF_CACHE_BLOCKS")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(n) => vec![n],
        None => vec![0, 1, 8],
    }
}

/// The per-LBA uncertainty model. Blocks are always filled with a single
/// stamp byte, so torn in-flight writes (prefix-of-new + suffix-of-old)
/// stay checkable byte-by-byte.
struct Model {
    /// Values a post-crash mount may legally find in each block's bytes.
    allowed: Vec<HashSet<u8>>,
    /// The definite content of the running (pre-crash) store.
    current: Vec<u8>,
}

impl Model {
    fn new() -> Model {
        Model {
            allowed: (0..BLOCKS).map(|_| HashSet::from([0u8])).collect(),
            current: vec![0u8; BLOCKS as usize],
        }
    }

    /// An acknowledged, not-yet-synced mutation: the platter may hold
    /// old or new.
    fn acked_volatile(&mut self, lba: u64, nlb: u32, stamp: u8) {
        for b in lba..lba + u64::from(nlb) {
            self.allowed[b as usize].insert(stamp);
            self.current[b as usize] = stamp;
        }
    }

    /// A mutation whose submission *errored with the crash*: it was
    /// never acknowledged, so old-or-new (or torn) is within contract.
    fn unacked(&mut self, lba: u64, nlb: u32, stamp: u8) {
        for b in lba..lba + u64::from(nlb) {
            self.allowed[b as usize].insert(stamp);
        }
    }

    /// A successful sync barrier (flush ack or FUA write ack): every
    /// acknowledged byte is now guaranteed on the platter.
    fn synced(&mut self) {
        for (b, set) in self.allowed.iter_mut().enumerate() {
            set.clear();
            set.insert(self.current[b]);
        }
    }
}

/// One crash iteration: workload (through a `cache_blocks`-entry block
/// cache) until the kill point fires, then mount the wreckage (twice)
/// and hold it against the model.
fn crash_round(seed: u64, phase: Phase, cache_blocks: usize) {
    let point = CrashPoint::seeded(seed, MAX_OPS);
    let vfs = SharedCrashVfs::new(seed ^ 0x5EED, point.fire_at());
    let mut rng = ChaosRng::new(seed.wrapping_mul(0x9E37_79B9));

    let created = FileDisk::create_on(Box::new(vfs.clone()), BLOCK as u32, BLOCKS, LOG_BYTES)
        .and_then(|d| d.with_cache(cache_blocks));
    let mut disk: Box<dyn BlockStore> = match created {
        Ok(d) if sync_offload() => {
            Box::new(d.into_shared().with_sync_worker(Box::new(vfs.clone())))
        }
        Ok(d) => Box::new(d),
        Err(_) => {
            // Died formatting (kill point 1 or 2): the wreckage has no
            // fully-synced superblock yet, so the only guarantee is a
            // clean typed failure on mount — no panic, no garbage disk.
            assert!(vfs.crashed(), "create may only fail via injected crash");
            assert!(
                FileDisk::open_on(Box::new(MemVfs::from_image(vfs.durable_image()))).is_err(),
                "a half-formatted store must refuse to mount"
            );
            return;
        }
    };

    let mut model = Model::new();
    let mut stamp: u8 = 0;
    let mut crashed = false;
    for _ in 0..10_000 {
        // Stamp 0 is reserved for trimmed/zeroed/initial blocks.
        stamp = if stamp >= 250 { 1 } else { stamp + 1 };
        let lba = rng.range(0, BLOCKS - 3);
        let nlb = rng.range(1, 4) as u32;
        let roll = rng.range(0, 100);
        // Phase-dependent op mix; every phase keeps plain writes in the
        // stream so there is always volatile state at the kill point.
        let res: Result<&str, _> = match phase {
            Phase::Write => {
                if roll < 80 {
                    let buf = vec![stamp; nlb as usize * BLOCK];
                    disk.write(lba, nlb, &buf, false).map(|_| "write")
                } else {
                    let buf = vec![stamp; nlb as usize * BLOCK];
                    disk.write(lba, nlb, &buf, true).map(|_| "fua")
                }
            }
            Phase::Flush => {
                if roll < 60 {
                    let buf = vec![stamp; nlb as usize * BLOCK];
                    disk.write(lba, nlb, &buf, false).map(|_| "write")
                } else {
                    disk.flush().map(|_| "flush")
                }
            }
            Phase::Trim => {
                if roll < 45 {
                    let buf = vec![stamp; nlb as usize * BLOCK];
                    disk.write(lba, nlb, &buf, false).map(|_| "write")
                } else if roll < 80 {
                    disk.trim(lba, nlb).map(|_| "trim")
                } else {
                    disk.write_zeroes(lba, nlb).map(|_| "zeroes")
                }
            }
            Phase::Mixed => {
                if roll < 45 {
                    let buf = vec![stamp; nlb as usize * BLOCK];
                    disk.write(lba, nlb, &buf, false).map(|_| "write")
                } else if roll < 60 {
                    let buf = vec![stamp; nlb as usize * BLOCK];
                    disk.write(lba, nlb, &buf, true).map(|_| "fua")
                } else if roll < 75 {
                    disk.trim(lba, nlb).map(|_| "trim")
                } else if roll < 85 {
                    disk.write_zeroes(lba, nlb).map(|_| "zeroes")
                } else {
                    disk.flush().map(|_| "flush")
                }
            }
        };
        match res {
            Ok("write") => model.acked_volatile(lba, nlb, stamp),
            Ok("fua") => {
                model.acked_volatile(lba, nlb, stamp);
                model.synced();
            }
            Ok("trim") | Ok("zeroes") => model.acked_volatile(lba, nlb, 0),
            Ok("flush") => model.synced(),
            Ok(_) => unreachable!(),
            Err(_) => {
                assert!(
                    vfs.crashed(),
                    "seed {seed} phase {phase:?}: I/O failed without an injected crash \
                     (replay with OAF_CHAOS_SEED={seed})"
                );
                // The op that died was never acknowledged: its stamp is
                // a legal (possibly torn) survivor. A dying flush sync
                // grants nothing. Re-derive the in-flight op's effect
                // on the model from the roll.
                let in_flight_stamp = match phase {
                    Phase::Write => Some(stamp),
                    Phase::Flush => {
                        if roll < 60 {
                            Some(stamp)
                        } else {
                            None
                        }
                    }
                    Phase::Trim => {
                        if roll < 45 {
                            Some(stamp)
                        } else {
                            Some(0)
                        }
                    }
                    Phase::Mixed => {
                        if roll < 60 {
                            Some(stamp)
                        } else if roll < 85 {
                            Some(0)
                        } else {
                            None
                        }
                    }
                };
                if let Some(s) = in_flight_stamp {
                    model.unacked(lba, nlb, s);
                }
                crashed = true;
                break;
            }
        }
    }
    assert!(
        crashed,
        "seed {seed}: kill point {} never fired in 10k ops",
        point.fire_at()
    );

    // Tear the dead store down first: in the offload leg this joins the
    // sync worker, so no thread races the durable-image snapshot.
    drop(disk);

    // Mount the wreckage — reads go back through a cache of the same
    // capacity. Recovery must always succeed: the superblock was fully
    // synced at create time and is never overwritten in place.
    let image = vfs.durable_image();
    let mounted = FileDisk::open_on(Box::new(MemVfs::from_image(image.clone())))
        .and_then(|d| d.with_cache(cache_blocks))
        .unwrap_or_else(|e| panic!("seed {seed}: post-crash mount failed: {e}"));

    let read_all = |d: &FileDisk| {
        let mut out = vec![0u8; (BLOCKS as usize) * BLOCK];
        d.read(0, BLOCKS as u32, &mut out).expect("recovered read");
        out
    };
    let state = read_all(&mounted);

    // Allowed-set check, byte granular: torn in-flight data writes may
    // mix two stamps inside one block, but never invent a third.
    let mut violations = 0;
    for b in 0..BLOCKS as usize {
        for (i, &byte) in state[b * BLOCK..(b + 1) * BLOCK].iter().enumerate() {
            if !model.allowed[b].contains(&byte) {
                violations += 1;
                if violations <= 5 {
                    eprintln!(
                        "seed {seed} phase {phase:?} cache {cache_blocks}: lba {b} byte {i} = \
                         {byte:#x}, allowed {:?} (replay with OAF_CHAOS_SEED={seed} \
                         OAF_CACHE_BLOCKS={cache_blocks})",
                        model.allowed[b]
                    );
                }
            }
        }
    }
    assert_eq!(
        violations, 0,
        "seed {seed} phase {phase:?} cache {cache_blocks}: {violations} bytes outside the \
         allowed set (replay with OAF_CHAOS_SEED={seed} OAF_CACHE_BLOCKS={cache_blocks})"
    );

    // Idempotence: a second mount of the same wreckage sees the same
    // world — same replayed prefix, same torn-tail truncation.
    let remounted = FileDisk::open_on(Box::new(MemVfs::from_image(image))).unwrap();
    assert_eq!(
        state,
        read_all(&remounted),
        "seed {seed}: double mount diverged (replay with OAF_CHAOS_SEED={seed})"
    );
    assert_eq!(
        mounted.metrics().replay_ops.get(),
        remounted.metrics().replay_ops.get(),
        "seed {seed}: replay op counts diverged"
    );
}

#[test]
fn crash_soak_allowed_set_holds() {
    let base = chaos_seed();
    let phase = crash_phase();
    let caps = cache_capacities();
    let rounds: u64 = if std::env::var("OAF_CHAOS_SEED").is_ok() {
        1 // exact replay of one seed
    } else {
        24
    };
    let mut torn_total = 0u64;
    for &cap in &caps {
        for i in 0..rounds {
            let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            crash_round(seed, phase, cap);
            torn_total += 1;
        }
    }
    eprintln!(
        "crash soak: {torn_total} kill points survived (phase {phase:?}, caches {caps:?}, \
         offload {}, base seed {base:#x})",
        sync_offload()
    );
}

#[test]
fn crash_during_checkpoint_is_survivable() {
    // Force checkpoints with a minimal log, then kill inside the
    // checkpoint window across a seed sweep: the dual-slot superblock
    // must leave either the old epoch (replayable) or the new one
    // mountable at every kill point. Runs uncached and through a small
    // cache, whose dirty entries must drain before every epoch roll.
    for cap in [0usize, 4] {
        for seed in 0..32u64 {
            let point = CrashPoint::seeded(seed, 400);
            let vfs = SharedCrashVfs::new(seed ^ (cap as u64) << 32, point.fire_at());
            let created = FileDisk::create_on(Box::new(vfs.clone()), 512, 16, 64 * 1024)
                .and_then(|d| d.with_cache(cap));
            let mut disk = match created {
                Ok(d) => d,
                Err(_) => continue, // died formatting; covered elsewhere
            };
            let mut last_synced: Option<Vec<u8>> = None;
            let mut synced_at = 0usize;
            let mut wrote = vec![];
            for i in 0..2_000u64 {
                let lba = i % 16;
                let buf = vec![(i % 200) as u8 + 1; 512];
                if disk.write(lba, 1, &buf, false).is_err() {
                    break;
                }
                wrote.push((lba, (i % 200) as u8 + 1));
                if i % 64 == 63 {
                    if disk.flush().is_err() {
                        break;
                    }
                    synced_at = wrote.len();
                    let mut img = vec![0u8; 16 * 512];
                    disk.read(0, 16, &mut img).unwrap();
                    last_synced = Some(img);
                }
            }
            assert!(vfs.crashed(), "seed {seed}: never crashed");
            let mounted = FileDisk::open_on(Box::new(MemVfs::from_image(vfs.durable_image())))
                .unwrap_or_else(|e| panic!("seed {seed}: mount after checkpoint crash: {e}"));
            // Everything under the last successful flush must be intact.
            if let Some(synced) = last_synced {
                let mut now = vec![0u8; 16 * 512];
                mounted.read(0, 16, &mut now).unwrap();
                // Blocks whose last mutation predates the flush must match
                // exactly; later-written blocks may hold newer stamps, so
                // only check blocks untouched after the flush.
                let touched_after: std::collections::HashSet<u64> =
                    wrote[synced_at..].iter().map(|&(lba, _)| lba).collect();
                for lba in 0..16u64 {
                    if !touched_after.contains(&lba) {
                        let a = &synced[lba as usize * 512..(lba as usize + 1) * 512];
                        let b = &now[lba as usize * 512..(lba as usize + 1) * 512];
                        assert_eq!(a, b, "seed {seed} cache {cap}: flushed lba {lba} regressed");
                    }
                }
            }
        }
    }
}
