//! Property: log replay is idempotent and equals the longest durable
//! prefix.
//!
//! Images are constructed *directly from the on-disk codec* — a
//! superblock, arbitrary record interleavings, and an optionally torn
//! or corrupted tail — bypassing `FileDisk`'s write path entirely, so
//! these properties hold for any bytes a crash could have left, not
//! just ones this implementation happens to produce. For every
//! generated image:
//!
//! 1. opening it twice yields byte-identical states (idempotence);
//! 2. the recovered state equals a model replay of exactly the
//!    complete, valid record prefix (torn tails truncated, never
//!    half-applied);
//! 3. `replay_ops` counts that prefix, and a corrupted-but-addressed
//!    tail is detected as torn.

use proptest::prelude::*;

use oaf_ssd::BlockStore;
use oaf_store::log::{rec_len, record_crc, RecordHeader, RecordKind, Superblock, LOG_OFFSET};
use oaf_store::vfs::MemVfs;
use oaf_store::FileDisk;

const BLOCK: usize = 512;
const BLOCKS: u64 = 16;
const LOG_BYTES: u64 = 64 * 1024;

#[derive(Clone, Debug)]
struct Op {
    kind: RecordKind,
    lba: u64,
    nlb: u32,
    stamp: u8,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..4, 0u64..BLOCKS - 4, 1u32..4, any::<u8>()).prop_map(|(k, lba, nlb, stamp)| Op {
        kind: match k {
            0 => RecordKind::Write,
            1 => RecordKind::Trim,
            2 => RecordKind::Flush,
            _ => RecordKind::Zeroes,
        },
        lba,
        nlb,
        stamp,
    })
}

/// How the tail of the log is damaged, if at all.
#[derive(Clone, Debug)]
enum Tail {
    /// Every record fully durable.
    Clean,
    /// The last record's final `cut` bytes never reached the platter.
    Torn { cut: usize },
    /// One byte of the last record flipped (media corruption / mixed
    /// old-new sector).
    Flipped { at: usize },
}

fn arb_tail() -> impl Strategy<Value = Tail> {
    prop_oneof![
        Just(Tail::Clean),
        (1usize..600).prop_map(|cut| Tail::Torn { cut }),
        (0usize..40).prop_map(|at| Tail::Flipped { at }),
    ]
}

/// Serializes one record (header ‖ payload ‖ crc) for a Write with a
/// solid `stamp` fill, or a payload-less record otherwise.
fn encode_record(seq: u64, op: &Op) -> Vec<u8> {
    let (nlb, payload): (u32, Vec<u8>) = match op.kind {
        RecordKind::Write => (op.nlb, vec![op.stamp; op.nlb as usize * BLOCK]),
        RecordKind::Trim | RecordKind::Zeroes => (op.nlb, Vec::new()),
        RecordKind::Flush => (0, Vec::new()),
    };
    let hdr = RecordHeader {
        seq,
        epoch: 0,
        kind: op.kind,
        flags: 0,
        lba: if op.kind == RecordKind::Flush {
            0
        } else {
            op.lba
        },
        nlb,
        payload_len: payload.len() as u32,
    };
    let raw = hdr.encode();
    let mut out = Vec::with_capacity(rec_len(payload.len()));
    out.extend_from_slice(&raw);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&record_crc(&raw, &payload).to_le_bytes());
    out
}

/// Builds a full store image: formatted superblock, the op sequence in
/// the log, damage applied to the final record. Returns the image and
/// the number of records a correct recovery must replay.
fn build_image(ops: &[Op], tail: &Tail) -> (Vec<u8>, usize) {
    let sb = Superblock {
        block_size: BLOCK as u32,
        capacity_blocks: BLOCKS,
        log_bytes: LOG_BYTES,
        epoch: 0,
        next_seq: 1,
    };
    let mut image = vec![0u8; sb.file_len() as usize];
    image[..oaf_store::log::SB_SLOT_LEN].copy_from_slice(&Superblock::encode(&sb));

    let mut pos = LOG_OFFSET as usize;
    let mut complete = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let mut rec = encode_record(1 + i as u64, op);
        let last = i == ops.len() - 1;
        if last {
            match tail {
                Tail::Clean => {}
                Tail::Torn { cut } => {
                    let keep = rec.len().saturating_sub(*cut);
                    rec.truncate(keep);
                }
                Tail::Flipped { at } => {
                    let at = at % rec.len();
                    rec[at] ^= 0x40;
                }
            }
        }
        let damaged = last && !matches!(tail, Tail::Clean);
        image[pos..pos + rec.len()].copy_from_slice(&rec);
        pos += rec.len();
        if !damaged {
            complete += 1;
        }
    }
    (image, complete)
}

/// Model replay: apply the first `n` ops to a flat block array.
fn model_state(ops: &[Op], n: usize) -> Vec<u8> {
    let mut state = vec![0u8; BLOCKS as usize * BLOCK];
    for op in &ops[..n] {
        let r = op.lba as usize * BLOCK..(op.lba + u64::from(op.nlb)) as usize * BLOCK;
        match op.kind {
            RecordKind::Write => state[r].fill(op.stamp),
            RecordKind::Trim | RecordKind::Zeroes => state[r].fill(0),
            RecordKind::Flush => {}
        }
    }
    state
}

fn read_all(d: &FileDisk) -> Vec<u8> {
    let mut out = vec![0u8; BLOCKS as usize * BLOCK];
    d.read(0, BLOCKS as u32, &mut out).expect("read");
    out
}

/// Block-cache capacities a recovered disk may be read through — the
/// recovered state must be identical whether reads bypass the cache
/// (0), thrash a single entry (1), or mostly hit (16).
fn arb_cache() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), Just(1usize), Just(4usize), Just(16usize)]
}

proptest! {
    #[test]
    fn replay_equals_longest_durable_prefix(
        ops in proptest::collection::vec(arb_op(), 1..20),
        tail in arb_tail(),
        cache in arb_cache(),
    ) {
        let (image, complete) = build_image(&ops, &tail);

        let once = FileDisk::open_on(Box::new(MemVfs::from_image(image.clone())))
            .expect("formatted image must mount");
        let twice = FileDisk::open_on(Box::new(MemVfs::from_image(image)))
            .and_then(|d| d.with_cache(cache))
            .expect("second mount");

        let a = read_all(&once);
        let b = read_all(&twice);
        prop_assert_eq!(&a, &b, "double replay diverged (cache {})", cache);
        // A second pass through the cached disk (now warm) must agree too.
        prop_assert_eq!(&a, &read_all(&twice), "warm cached re-read diverged");

        // A flipped byte can land in the CRC trailer of a record whose
        // damage the header checks catch earlier, or — for a flip that
        // keeps magic/seq/epoch valid — in the payload; either way the
        // record must not apply. The only subtlety: a flip may leave
        // fewer-but-never-more records valid (e.g. flipping the first
        // record's header kills the whole chain behind it via the seq
        // check). Torn/clean tails are exact.
        let replayed = once.metrics().replay_ops.get() as usize;
        match tail {
            Tail::Flipped { .. } => prop_assert!(
                replayed <= complete,
                "corrupt record applied: {} > {}", replayed, complete
            ),
            _ => prop_assert_eq!(replayed, complete, "replay count mismatch"),
        }
        prop_assert_eq!(&a, &model_state(&ops, replayed), "state != model prefix");
    }

    #[test]
    fn fresh_appends_after_recovery_continue_the_log(
        ops in proptest::collection::vec(arb_op(), 1..10),
        cut in 1usize..600,
        cache in arb_cache(),
    ) {
        // Mount a torn image, then keep writing (through the cache):
        // the new records must land where the valid prefix ended and
        // survive a further clean reopen.
        let (image, _) = build_image(&ops, &Tail::Torn { cut });
        let mut disk = FileDisk::open_on(Box::new(MemVfs::from_image(image)))
            .and_then(|d| d.with_cache(cache))
            .expect("mount torn image");
        disk.write(0, 1, &[0xEEu8; BLOCK], false).expect("post-recovery write");
        disk.flush().expect("post-recovery flush");
        let mut out = [0u8; BLOCK];
        disk.read(0, 1, &mut out).expect("read back");
        prop_assert!(out.iter().all(|&b| b == 0xEE));
    }
}
