//! Group-commit coalescing under real concurrency.
//!
//! N threads hammer one [`SharedFileDisk`] with FUA writes (and some
//! Flushes) over a vfs whose `sync` is artificially slow — the regime
//! group commit exists for. The coordinator must retire most barriers
//! on another barrier's `fdatasync`: the acceptance bar is ≥2×
//! coalescing (`fsyncs` ≤ barriers/2), every barrier accounted for
//! (led or coalesced, no lost wakeups — the test would hang), and no
//! data loss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use oaf_store::vfs::{MemVfs, Vfs};
use oaf_store::FileDisk;

/// A [`MemVfs`] whose `sync` takes ~a device barrier's time, so
/// concurrent barriers actually overlap even on a single-core runner.
#[derive(Clone)]
struct SlowSyncVfs {
    inner: Arc<Mutex<MemVfs>>,
    syncs: Arc<AtomicU64>,
}

impl SlowSyncVfs {
    fn new() -> SlowSyncVfs {
        SlowSyncVfs {
            inner: Arc::new(Mutex::new(MemVfs::new())),
            syncs: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Vfs for SlowSyncVfs {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.inner.lock().unwrap().read_at(off, buf)
    }
    fn write_at(&mut self, off: u64, buf: &[u8]) -> std::io::Result<()> {
        self.inner.lock().unwrap().write_at(off, buf)
    }
    fn sync(&mut self) -> std::io::Result<()> {
        self.syncs.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_micros(400));
        self.inner.lock().unwrap().sync()
    }
    fn len(&self) -> std::io::Result<u64> {
        self.inner.lock().unwrap().len()
    }
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        self.inner.lock().unwrap().set_len(len)
    }
}

const WRITERS: u64 = 8;
const OPS_PER_WRITER: u64 = 24;

#[test]
fn concurrent_fua_writers_coalesce_at_least_2x() {
    let vfs = SlowSyncVfs::new();
    let disk = FileDisk::create_on(Box::new(vfs.clone()), 512, 256, 256 * 1024)
        .unwrap()
        .with_cache(64)
        .unwrap()
        .into_shared();

    let threads: Vec<_> = (0..WRITERS)
        .map(|t| {
            let d = disk.clone();
            std::thread::spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    let lba = t * OPS_PER_WRITER + i;
                    let stamp = (lba % 250) as u8 + 1;
                    if i % 6 == 5 {
                        // A Flush barrier rides the same ticket path.
                        d.write(lba, 1, &[stamp; 512], false).unwrap();
                        d.flush().unwrap();
                    } else {
                        d.write(lba, 1, &[stamp; 512], true).unwrap();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap(); // a lost wakeup would hang here
    }

    let m = disk.metrics();
    let barriers = WRITERS * OPS_PER_WRITER; // every op ends in a barrier
    let led = m.fsyncs.get();
    let coalesced = m.fsyncs_coalesced.get();
    assert_eq!(
        led + coalesced,
        barriers,
        "every barrier must either lead one sync or coalesce into one"
    );
    assert!(
        led * 2 <= barriers,
        "expected ≥2× coalescing: {led} fsyncs for {barriers} barriers \
         ({coalesced} coalesced)"
    );
    // The batch histogram saw every sync, and its mass equals the
    // barrier count.
    let batches = m.commit_batch.snapshot();
    assert_eq!(batches.count, led);
    eprintln!(
        "group commit: {barriers} barriers -> {led} fsyncs ({coalesced} coalesced, \
         mean batch {:.1})",
        barriers as f64 / led as f64
    );

    // Durability watermark covers every appended record, and no write
    // was lost through the cache + deferred-apply path.
    assert!(disk.group_commit().durable_seq() >= barriers);
    let mut out = [0u8; 512];
    for lba in 0..WRITERS * OPS_PER_WRITER {
        disk.read(lba, 1, &mut out).unwrap();
        let want = (lba % 250) as u8 + 1;
        assert!(
            out.iter().all(|&b| b == want),
            "lba {lba}: FUA-acknowledged write lost through group commit"
        );
    }
}

#[test]
fn group_commit_keeps_fua_durable_across_reopen() {
    // The coalesced path must be as crash-safe as the solo path: after
    // the threads finish, the durable image alone (no process state)
    // must hold every FUA write.
    let vfs = SlowSyncVfs::new();
    let disk = FileDisk::create_on(Box::new(vfs.clone()), 512, 128, 128 * 1024)
        .unwrap()
        .with_cache(16)
        .unwrap()
        .into_shared();

    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let d = disk.clone();
            std::thread::spawn(move || {
                for i in 0..16u64 {
                    let lba = t * 16 + i;
                    d.write(lba, 1, &[(lba % 250) as u8 + 1; 512], true)
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let image = {
        let len = vfs.len().unwrap();
        let mut img = vec![0u8; len as usize];
        vfs.read_at(0, &mut img).unwrap();
        img
    };
    let reopened = FileDisk::open_on(Box::new(MemVfs::from_image(image))).unwrap();
    use oaf_ssd::BlockStore;
    let mut out = [0u8; 512];
    for lba in 0..64u64 {
        reopened.read(lba, 1, &mut out).unwrap();
        assert!(
            out.iter().all(|&b| b == (lba % 250) as u8 + 1),
            "lba {lba}: FUA write not durable after reopen"
        );
    }
}
