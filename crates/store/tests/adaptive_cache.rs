//! Convergence proof for the adaptive block-cache controller: a
//! phase-shifted workload (small working set, then a much larger one)
//! ends with the adaptive disk at a larger capacity *and* a higher
//! late-phase hit rate than a fixed-size baseline given the same
//! traffic — and the whole story is readable from the telemetry
//! registry, not just from internal accessors.

use oaf_ssd::block::BlockStore;
use oaf_store::vfs::MemVfs;
use oaf_store::{CacheAdaptConfig, FileDisk};
use oaf_telemetry::Registry;

const BS: usize = 512;
const BLOCKS: u64 = 256;
const LOG_BYTES: u64 = 256 * 1024;

/// The fixed baseline's capacity and the adaptive controller's floor.
const MIN_BLOCKS: usize = 8;
const MAX_BLOCKS: usize = 128;
const WINDOW: u64 = 128;

/// Phase-B working set: spills a `MIN_BLOCKS` cache ~12× over, but fits
/// comfortably under `MAX_BLOCKS`.
const LARGE_SET: u64 = 96;

fn mem_disk() -> FileDisk {
    FileDisk::create_on(Box::new(MemVfs::new()), BS as u32, BLOCKS, LOG_BYTES).expect("format disk")
}

/// One workload pass: write the whole set, then read it back. Both the
/// write (write-allocate) and the read go through the cache, and the
/// write keeps the controller's evaluation window ticking — adaptation
/// only happens on the mutation path.
fn pass(d: &mut FileDisk, set: u64) {
    let payload = [0x5au8; BS];
    let mut out = [0u8; BS];
    for lba in 0..set {
        d.write(lba, 1, &payload, false).expect("write");
    }
    for lba in 0..set {
        d.read(lba, 1, &mut out).expect("read");
    }
}

/// Hit rate over a window of the metrics stream, as (hits, lookups).
fn hit_window(d: &FileDisk) -> (u64, u64) {
    let h = d.metrics().cache_hits.get();
    (h, h + d.metrics().cache_misses.get())
}

#[test]
fn adaptive_cache_converges_past_fixed_baseline_on_phase_shift() {
    let registry = Registry::new();

    let mut fixed = mem_disk().with_cache(MIN_BLOCKS).expect("fixed cache");
    fixed.metrics().register(&registry.scope("fixed"));

    let mut adaptive = mem_disk()
        .with_adaptive_cache(CacheAdaptConfig {
            min_blocks: MIN_BLOCKS,
            max_blocks: MAX_BLOCKS,
            window_lookups: WINDOW,
        })
        .expect("adaptive cache");
    adaptive.metrics().register(&registry.scope("adaptive"));
    assert_eq!(adaptive.cache_capacity(), MIN_BLOCKS, "starts at the floor");

    // Phase A: a working set that fits the floor. Both disks serve it
    // identically; the controller has no reason to move.
    for _ in 0..8 {
        pass(&mut fixed, MIN_BLOCKS as u64);
        pass(&mut adaptive, MIN_BLOCKS as u64);
    }
    assert_eq!(
        adaptive.cache_capacity(),
        MIN_BLOCKS,
        "a fitting working set must not trigger growth"
    );

    // Phase B: the working set jumps to LARGE_SET. The fixed cache
    // thrashes forever; the adaptive controller doubles until the set
    // fits.
    for _ in 0..24 {
        pass(&mut fixed, LARGE_SET);
        pass(&mut adaptive, LARGE_SET);
    }

    // Late-phase hit rate: measured over the tail passes only, after
    // the controller has had every chance to converge.
    let (f_h0, f_l0) = hit_window(&fixed);
    let (a_h0, a_l0) = hit_window(&adaptive);
    for _ in 0..6 {
        pass(&mut fixed, LARGE_SET);
        pass(&mut adaptive, LARGE_SET);
    }
    let (f_h1, f_l1) = hit_window(&fixed);
    let (a_h1, a_l1) = hit_window(&adaptive);
    let fixed_rate = (f_h1 - f_h0) as f64 / (f_l1 - f_l0) as f64;
    let adaptive_rate = (a_h1 - a_h0) as f64 / (a_l1 - a_l0) as f64;
    eprintln!(
        "phase-shift tail: fixed cap={} hit-rate={:.1}% | adaptive cap={} hit-rate={:.1}%",
        fixed.cache_capacity(),
        fixed_rate * 100.0,
        adaptive.cache_capacity(),
        adaptive_rate * 100.0,
    );

    // Ends at a larger capacity…
    assert!(
        adaptive.cache_capacity() >= LARGE_SET as usize,
        "controller stuck at {} blocks",
        adaptive.cache_capacity()
    );
    assert_eq!(fixed.cache_capacity(), MIN_BLOCKS);
    // …and a (much) higher hit rate than the fixed baseline.
    assert!(
        adaptive_rate >= 0.90,
        "converged cache should serve the set from memory: {adaptive_rate:.3}"
    );
    assert!(
        fixed_rate <= 0.50,
        "baseline unexpectedly stopped thrashing: {fixed_rate:.3}"
    );
    assert!(adaptive_rate > fixed_rate);

    // The same story through the telemetry registry: capacity gauge,
    // grow counter, and the hit/miss counters all line up.
    let snap = registry.snapshot();
    let (cap, _) = snap
        .gauge("adaptive", "cache_capacity")
        .expect("capacity gauge registered");
    assert_eq!(cap, adaptive.cache_capacity() as i64);
    assert!(snap.counter("adaptive", "cache_grows") >= 1);
    assert_eq!(snap.counter("adaptive", "cache_shrinks"), 0);
    let (fixed_cap, _) = snap
        .gauge("fixed", "cache_capacity")
        .expect("fixed capacity gauge registered");
    assert_eq!(fixed_cap, MIN_BLOCKS as i64);
    assert_eq!(snap.counter("fixed", "cache_grows"), 0);
    assert_eq!(snap.counter("adaptive", "cache_hits"), a_h1);

    // Correctness across every resize the controller performed.
    let mut out = [0u8; BS];
    for lba in 0..LARGE_SET {
        adaptive.read(lba, 1, &mut out).expect("read back");
        assert!(out.iter().all(|&b| b == 0x5a), "lba {lba} corrupt");
    }
}

/// The controller gives memory back: after the big phase ends (its
/// range is trimmed away) and traffic returns to a small set, ≥95%-hit
/// windows with an idle arena walk the capacity back down toward the
/// floor.
#[test]
fn adaptive_cache_shrinks_when_the_working_set_collapses() {
    let mut d = mem_disk()
        .with_adaptive_cache(CacheAdaptConfig {
            min_blocks: MIN_BLOCKS,
            max_blocks: MAX_BLOCKS,
            window_lookups: WINDOW,
        })
        .expect("adaptive cache");

    // Grow: thrash the large set until it fits.
    for _ in 0..24 {
        pass(&mut d, LARGE_SET);
        if d.cache_capacity() >= LARGE_SET as usize {
            break;
        }
    }
    let grown = d.cache_capacity();
    assert!(grown >= LARGE_SET as usize, "never grew: {grown}");

    // Collapse: drop the large range (trim also invalidates its cache
    // entries), then serve only the small set.
    d.trim(MIN_BLOCKS as u64, (LARGE_SET - MIN_BLOCKS as u64) as u32)
        .expect("trim");
    for _ in 0..80 {
        pass(&mut d, MIN_BLOCKS as u64);
        if d.cache_capacity() <= MIN_BLOCKS * 2 {
            break;
        }
    }
    eprintln!(
        "shrink: grew to {grown}, settled at {} (shrinks={})",
        d.cache_capacity(),
        d.metrics().cache_shrinks.get()
    );
    assert!(
        d.cache_capacity() < grown,
        "controller never shrank from {grown}"
    );
    assert!(d.metrics().cache_shrinks.get() >= 1);
    assert!(d.cache_capacity() >= MIN_BLOCKS, "floor respected");

    // The small set still reads back correctly after the walks.
    let mut out = [0u8; BS];
    for lba in 0..MIN_BLOCKS as u64 {
        d.read(lba, 1, &mut out).expect("read back");
        assert!(out.iter().all(|&b| b == 0x5a));
    }
}
