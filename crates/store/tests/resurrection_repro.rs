//! Reviewer repro: stale log-record resurrection after torn-tail truncation.

use std::sync::{Arc, Mutex};

use oaf_ssd::BlockStore;
use oaf_store::log::{LOG_OFFSET, REC_HDR_LEN};
use oaf_store::vfs::{MemVfs, Vfs};
use oaf_store::FileDisk;

#[derive(Clone)]
struct SharedMem(Arc<Mutex<MemVfs>>);

impl SharedMem {
    fn new(img: Vec<u8>) -> Self {
        SharedMem(Arc::new(Mutex::new(MemVfs::from_image(img))))
    }
    fn image(&self) -> Vec<u8> {
        self.0.lock().unwrap().image()
    }
}

impl Vfs for SharedMem {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.0.lock().unwrap().read_at(off, buf)
    }
    fn write_at(&mut self, off: u64, buf: &[u8]) -> std::io::Result<()> {
        self.0.lock().unwrap().write_at(off, buf)
    }
    fn sync(&mut self) -> std::io::Result<()> {
        Ok(())
    }
    fn len(&self) -> std::io::Result<u64> {
        self.0.lock().unwrap().len()
    }
    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        self.0.lock().unwrap().set_len(len)
    }
}

#[test]
fn stale_record_resurrection_loses_fua_write() {
    // Run 1: two unflushed writes. seq 1 -> lba 0, seq 2 -> lba 1.
    let v1 = SharedMem::new(Vec::new());
    let mut d = FileDisk::create_on(Box::new(v1.clone()), 512, 64, 64 * 1024).unwrap();
    d.write(0, 1, &[0x01u8; 512], false).unwrap(); // seq 1
    d.write(1, 1, &[0x02u8; 512], false).unwrap(); // seq 2

    // Crash 1: record seq 1's payload is torn (CRC fails) while record
    // seq 2 persisted in full (fdatasync-free writes may reorder).
    let mut img = v1.image();
    img[LOG_OFFSET as usize + REC_HDR_LEN] ^= 0xff;

    // Mount 1: recovery truncates at seq 1; both writes rolled back (OK,
    // neither was acknowledged durable).
    let v2 = SharedMem::new(img);
    let mut d2 = FileDisk::open_on(Box::new(v2.clone())).unwrap();

    // New FUA write to lba 1: acknowledged durable.
    d2.write(1, 1, &[0x33u8; 512], true).unwrap();
    let mut out = [0u8; 512];
    d2.read(1, 1, &mut out).unwrap();
    assert!(out.iter().all(|&b| b == 0x33));

    // Crash 2 (SharedMem is always-durable, so the image is exactly the
    // platter). Mount 2 must preserve the FUA-acknowledged 0x33.
    let d3 = FileDisk::open_on(Box::new(MemVfs::from_image(v2.image()))).unwrap();
    d3.read(1, 1, &mut out).unwrap();
    assert!(
        out.iter().all(|&b| b == 0x33),
        "FUA-acknowledged write lost: lba 1 now holds {:#04x} (stale seq-2 record resurrected)",
        out[0]
    );
}
