//! Metric bundle for the durable store, in the workspace's detached
//! style: plain `Arc`-backed [`oaf_telemetry`] handles created with the
//! store and published into a [`Scope`] at wiring time. Recording is
//! always a few relaxed atomics — the write path never branches on
//! whether telemetry is live.

use oaf_telemetry::{Counter, Gauge, Histo, Scope};
use std::sync::Arc;

/// Counters and distributions for one [`FileDisk`](crate::disk::FileDisk)
/// (shared by every queue view of a
/// [`SharedFileDisk`](crate::disk::SharedFileDisk)).
#[derive(Default, Debug)]
pub struct StoreMetrics {
    /// Intent-log records appended.
    pub log_appends: Counter,
    /// Bytes appended to the intent log (headers + payloads + CRCs).
    pub log_bytes: Counter,
    /// Dirty bytes made durable by sync barriers (flush, FUA,
    /// checkpoint).
    pub flushed_bytes: Counter,
    /// Durability barriers issued (`fsync`/`fdatasync`).
    pub fsyncs: Counter,
    /// Latency of each durability barrier, nanoseconds.
    pub fsync_ns: Histo,
    /// TRIM (Dataset Management) ranges deallocated.
    pub trims: Counter,
    /// Torn tail records detected (and truncated) during recovery.
    pub torn_records: Counter,
    /// Log records replayed on open.
    pub replay_ops: Counter,
    /// Checkpoints taken (log full → fold into data region, bump epoch).
    pub checkpoints: Counter,
    /// Durability barriers retired by another barrier's `fdatasync`
    /// (group commit) instead of issuing their own.
    pub fsyncs_coalesced: Counter,
    /// Tickets retired per group-commit sync (batch size).
    pub commit_batch: Histo,
    /// Block-cache read hits (blocks served with zero syscalls).
    pub cache_hits: Counter,
    /// Block-cache read misses (blocks fetched from the data region).
    pub cache_misses: Counter,
    /// Dirty cache blocks written back to the data region (eviction or
    /// barrier drain).
    pub cache_writebacks: Counter,
    /// Cache entries evicted to make room (clean or dirty).
    pub cache_evictions: Counter,
    /// Dirty blocks currently resident in the cache.
    pub cache_dirty: Gauge,
    /// Bytes deallocated by TRIM/Write Zeroes that were live (held
    /// data) when punched — space actually reclaimed.
    pub bytes_reclaimed: Counter,
    /// Bytes of live (written, not deallocated) data in the store.
    pub live_bytes: Gauge,
    /// Barrier tickets submitted to the sync worker and not yet retired
    /// (durable or failed). `hwm()` is the deepest the queue has been.
    pub sync_queue_depth: Gauge,
    /// Barriers handed to the offloaded sync worker instead of running
    /// `fdatasync` on the calling thread.
    pub barriers_offloaded: Counter,
    /// Barriers served by the inline group-commit path (no worker, or
    /// worker not attached).
    pub barriers_inline: Counter,
    /// Current block-cache capacity, in blocks (moves when the adaptive
    /// controller resizes the arena).
    pub cache_capacity: Gauge,
    /// Adaptive cache grow decisions taken.
    pub cache_grows: Counter,
    /// Adaptive cache shrink decisions taken.
    pub cache_shrinks: Counter,
}

impl StoreMetrics {
    /// Fresh, detached bundle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publish every metric of this bundle into `scope`.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("log_appends", &self.log_appends);
        scope.adopt_counter("log_bytes", &self.log_bytes);
        scope.adopt_counter("flushed_bytes", &self.flushed_bytes);
        scope.adopt_counter("fsyncs", &self.fsyncs);
        scope.adopt_histo("fsync_ns", &self.fsync_ns);
        scope.adopt_counter("trims", &self.trims);
        scope.adopt_counter("torn_records", &self.torn_records);
        scope.adopt_counter("replay_ops", &self.replay_ops);
        scope.adopt_counter("checkpoints", &self.checkpoints);
        scope.adopt_counter("fsyncs_coalesced", &self.fsyncs_coalesced);
        scope.adopt_histo("commit_batch", &self.commit_batch);
        scope.adopt_counter("cache_hits", &self.cache_hits);
        scope.adopt_counter("cache_misses", &self.cache_misses);
        scope.adopt_counter("cache_writebacks", &self.cache_writebacks);
        scope.adopt_counter("cache_evictions", &self.cache_evictions);
        scope.adopt_gauge("cache_dirty", &self.cache_dirty);
        scope.adopt_counter("bytes_reclaimed", &self.bytes_reclaimed);
        scope.adopt_gauge("live_bytes", &self.live_bytes);
        scope.adopt_gauge("sync_queue_depth", &self.sync_queue_depth);
        scope.adopt_counter("barriers_offloaded", &self.barriers_offloaded);
        scope.adopt_counter("barriers_inline", &self.barriers_inline);
        scope.adopt_gauge("cache_capacity", &self.cache_capacity);
        scope.adopt_counter("cache_grows", &self.cache_grows);
        scope.adopt_counter("cache_shrinks", &self.cache_shrinks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_telemetry::Registry;

    #[test]
    fn registers_under_store_scope() {
        let m = StoreMetrics::new();
        m.log_appends.inc();
        m.fsync_ns.record(1500);
        let registry = Registry::new();
        m.register(&registry.scope("store"));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store", "log_appends"), 1);
        assert_eq!(snap.histo("store", "fsync_ns").unwrap().count, 1);
        assert_eq!(snap.counter("store", "torn_records"), 0);
    }

    #[test]
    fn cache_and_commit_metrics_register() {
        let m = StoreMetrics::new();
        m.fsyncs_coalesced.inc();
        m.commit_batch.record(4);
        m.cache_hits.add(10);
        m.cache_dirty.set(3);
        m.bytes_reclaimed.add(4096);
        m.live_bytes.set(8192);
        let registry = Registry::new();
        m.register(&registry.scope("store"));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store", "fsyncs_coalesced"), 1);
        assert_eq!(snap.histo("store", "commit_batch").unwrap().count, 1);
        assert_eq!(snap.counter("store", "cache_hits"), 10);
        assert_eq!(snap.gauge("store", "cache_dirty").unwrap().0, 3);
        assert_eq!(snap.counter("store", "bytes_reclaimed"), 4096);
        assert_eq!(snap.gauge("store", "live_bytes").unwrap().0, 8192);
    }

    #[test]
    fn offload_and_adaptive_cache_metrics_register() {
        let m = StoreMetrics::new();
        m.sync_queue_depth.set(2);
        m.barriers_offloaded.add(5);
        m.barriers_inline.inc();
        m.cache_capacity.set(256);
        m.cache_grows.inc();
        let registry = Registry::new();
        m.register(&registry.scope("store"));
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("store", "sync_queue_depth").unwrap().0, 2);
        assert_eq!(snap.counter("store", "barriers_offloaded"), 5);
        assert_eq!(snap.counter("store", "barriers_inline"), 1);
        assert_eq!(snap.gauge("store", "cache_capacity").unwrap().0, 256);
        assert_eq!(snap.counter("store", "cache_grows"), 1);
        assert_eq!(snap.counter("store", "cache_shrinks"), 0);
    }
}
