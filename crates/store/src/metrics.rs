//! Metric bundle for the durable store, in the workspace's detached
//! style: plain `Arc`-backed [`oaf_telemetry`] handles created with the
//! store and published into a [`Scope`] at wiring time. Recording is
//! always a few relaxed atomics — the write path never branches on
//! whether telemetry is live.

use oaf_telemetry::{Counter, Histo, Scope};
use std::sync::Arc;

/// Counters and distributions for one [`FileDisk`](crate::disk::FileDisk)
/// (shared by every queue view of a
/// [`SharedFileDisk`](crate::disk::SharedFileDisk)).
#[derive(Default, Debug)]
pub struct StoreMetrics {
    /// Intent-log records appended.
    pub log_appends: Counter,
    /// Bytes appended to the intent log (headers + payloads + CRCs).
    pub log_bytes: Counter,
    /// Dirty bytes made durable by sync barriers (flush, FUA,
    /// checkpoint).
    pub flushed_bytes: Counter,
    /// Durability barriers issued (`fsync`/`fdatasync`).
    pub fsyncs: Counter,
    /// Latency of each durability barrier, nanoseconds.
    pub fsync_ns: Histo,
    /// TRIM (Dataset Management) ranges deallocated.
    pub trims: Counter,
    /// Torn tail records detected (and truncated) during recovery.
    pub torn_records: Counter,
    /// Log records replayed on open.
    pub replay_ops: Counter,
    /// Checkpoints taken (log full → fold into data region, bump epoch).
    pub checkpoints: Counter,
}

impl StoreMetrics {
    /// Fresh, detached bundle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publish every metric of this bundle into `scope`.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("log_appends", &self.log_appends);
        scope.adopt_counter("log_bytes", &self.log_bytes);
        scope.adopt_counter("flushed_bytes", &self.flushed_bytes);
        scope.adopt_counter("fsyncs", &self.fsyncs);
        scope.adopt_histo("fsync_ns", &self.fsync_ns);
        scope.adopt_counter("trims", &self.trims);
        scope.adopt_counter("torn_records", &self.torn_records);
        scope.adopt_counter("replay_ops", &self.replay_ops);
        scope.adopt_counter("checkpoints", &self.checkpoints);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_telemetry::Registry;

    #[test]
    fn registers_under_store_scope() {
        let m = StoreMetrics::new();
        m.log_appends.inc();
        m.fsync_ns.record(1500);
        let registry = Registry::new();
        m.register(&registry.scope("store"));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("store", "log_appends"), 1);
        assert_eq!(snap.histo("store", "fsync_ns").unwrap().count, 1);
        assert_eq!(snap.counter("store", "torn_records"), 0);
    }
}
