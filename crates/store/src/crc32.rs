//! CRC-32 (IEEE reflected polynomial), slicing-by-8.
//!
//! The single CRC implementation of the workspace: the NVMe/TCP frame
//! digest in `oaf-nvmeof::pdu` and the on-disk log/superblock records of
//! this crate both fold through these tables. It lives here (the lowest
//! crate that needs it above `oaf-ssd`) so the protocol and storage
//! layers cannot drift apart on polynomial or table construction.
//!
//! Tables are built at compile time; the update loop folds 8 bytes per
//! iteration, which is what keeps a CRC-stamped stream ahead of both the
//! socket and the disk.

/// CRC-32 (IEEE reflected polynomial) slicing-by-8 lookup tables, built
/// at compile time so the hot encode/decode paths stay table-driven and
/// allocation free. Table 0 is the classic byte-at-a-time table; table
/// `j` maps a byte to its CRC contribution `j` positions further along,
/// letting the update loop fold 8 payload bytes per iteration.
const CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = t[0][(prev & 0xff) as usize] ^ (prev >> 8);
            i += 1;
        }
        j += 1;
    }
    t
}

/// Folds `bytes` into a running CRC state. Start from `0xFFFF_FFFF`,
/// feed every chunk, and finish with a bitwise NOT ([`crc32`] does the
/// whole dance for a contiguous buffer).
pub fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xff) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xff) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = CRC_TABLES[0][((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    crc
}

/// One-shot CRC-32 of a contiguous buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1021u32).map(|i| (i % 251) as u8).collect();
        let mut c = 0xFFFF_FFFFu32;
        for chunk in data.chunks(13) {
            c = crc32_update(c, chunk);
        }
        assert_eq!(!c, crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0x5au8; 64];
        let base = crc32(&data);
        for i in 0..64 {
            data[i] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {i} undetected");
            data[i] ^= 1;
        }
    }
}
