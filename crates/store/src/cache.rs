//! Fixed-capacity segmented-LRU block cache with write-back dirty
//! tracking pinned to journal sequence numbers.
//!
//! The cache sits between the block API and the data region of the
//! backing file. It is keyed by LBA (one entry per block) over a
//! preallocated arena — a `capacity × block_size` byte slab, a slot
//! table with intrusive prev/next links, and a `HashMap` reserved to
//! capacity — so steady-state hits, inserts and evictions touch no
//! allocator and no syscall.
//!
//! ## Segmented LRU
//!
//! Two intrusive lists: **probation** (first-touch entries) and **hot**
//! (re-referenced entries, capped at ~80% of capacity). A new block
//! enters probation at MRU; a hit promotes probation→hot; hot overflow
//! demotes its LRU back to probation. Scans therefore wash through
//! probation without displacing the re-referenced working set.
//!
//! ## Dirty tracking and the eviction invariant
//!
//! A dirty entry records the *journal sequence number* of the intent
//! record carrying its payload. The write path appends that record
//! **before** inserting the entry, so by construction every dirty block
//! the cache can ever write back is already present in the log:
//! writing it to the data region early (eviction) or late (barrier
//! drain) is indistinguishable from the uncached path's
//! append-then-apply ordering, and recovery's replay heals any torn
//! interleaving. The one order that must never happen — folding the
//! log away (checkpoint) while a journaled payload exists *only* in
//! cache — is excluded by draining every dirty entry before a
//! checkpoint rolls the epoch; [`BlockCache::max_dirty_seq`] lets the
//! disk assert it.
//!
//! Read-miss fills are clean by definition and are **never** allowed to
//! force a dirty write-back: a fill probes a bounded number of LRU
//! candidates for a clean victim and simply skips the fill if every
//! candidate is dirty, keeping the read path free of write syscalls.

use std::collections::HashMap;

use oaf_ssd::ram::BlockError;

/// Write-back callback: `(lba, block bytes) -> Result` — the disk
/// supplies the data-region write, the cache decides when a dirty
/// block must go.
pub type Writeback<'a> = dyn FnMut(u64, &[u8]) -> Result<(), BlockError> + 'a;

/// Slot index sentinel: no slot / end of list.
const NIL: u32 = u32::MAX;

/// Clean-victim probe budget for read-miss fills.
const CLEAN_PROBES: usize = 8;

/// Sequence sentinel for clean entries (real record sequences start
/// at 1 and only grow).
const CLEAN: u64 = 0;

/// Which list a slot is on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Seg {
    Free,
    Probation,
    Hot,
}

struct Slot {
    lba: u64,
    /// Journal sequence of the record carrying this payload, or
    /// [`CLEAN`] if the data region already holds these bytes.
    seq: u64,
    seg: Seg,
    prev: u32,
    next: u32,
}

/// One intrusive doubly-linked list over the slot arena.
#[derive(Default, Clone, Copy)]
struct List {
    head: u32, // MRU
    tail: u32, // LRU
    len: usize,
}

/// The block cache. Capacity 0 is a valid, always-miss configuration —
/// every method degenerates to a no-op.
pub struct BlockCache {
    block_size: usize,
    map: HashMap<u64, u32>,
    slots: Vec<Slot>,
    data: Vec<u8>,
    free_head: u32,
    probation: List,
    hot: List,
    hot_target: usize,
    dirty_len: usize,
}

impl BlockCache {
    /// A cache holding up to `capacity` blocks of `block_size` bytes.
    /// All memory — arena, slot table, hash map — is allocated here.
    pub fn new(block_size: usize, capacity: usize) -> BlockCache {
        let mut slots = Vec::with_capacity(capacity);
        for i in 0..capacity {
            slots.push(Slot {
                lba: 0,
                seq: CLEAN,
                seg: Seg::Free,
                prev: NIL,
                next: if i + 1 < capacity { i as u32 + 1 } else { NIL },
            });
        }
        BlockCache {
            block_size,
            map: HashMap::with_capacity(capacity.max(1)),
            slots,
            data: vec![0u8; block_size * capacity],
            free_head: if capacity > 0 { 0 } else { NIL },
            probation: List {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            hot: List {
                head: NIL,
                tail: NIL,
                len: 0,
            },
            hot_target: capacity * 4 / 5,
            dirty_len: 0,
        }
    }

    /// Capacity in blocks (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// True if the cache can hold anything at all.
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// No resident entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Dirty (not-yet-written-back) entries.
    pub fn dirty_blocks(&self) -> usize {
        self.dirty_len
    }

    /// Highest journal sequence pinned by a dirty entry (`CLEAN`/0 if
    /// none) — the checkpoint-drain invariant's witness.
    pub fn max_dirty_seq(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.seg != Seg::Free)
            .map(|s| s.seq)
            .max()
            .unwrap_or(CLEAN)
    }

    /// Whether `lba` is resident, without touching recency.
    pub fn contains(&self, lba: u64) -> bool {
        self.map.contains_key(&lba)
    }

    fn data_range(&self, i: u32) -> std::ops::Range<usize> {
        let i = i as usize;
        i * self.block_size..(i + 1) * self.block_size
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next, seg) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next, s.seg)
        };
        let list = match seg {
            Seg::Probation => &mut self.probation,
            Seg::Hot => &mut self.hot,
            Seg::Free => unreachable!("unlink of a free slot"),
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            list.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            list.tail = prev;
        }
        list.len -= 1;
        self.slots[i as usize].seg = Seg::Free;
    }

    fn push_mru(&mut self, i: u32, seg: Seg) {
        let list = match seg {
            Seg::Probation => &mut self.probation,
            Seg::Hot => &mut self.hot,
            Seg::Free => unreachable!("push onto the free segment"),
        };
        let old_head = list.head;
        list.head = i;
        if list.tail == NIL {
            list.tail = i;
        }
        list.len += 1;
        let s = &mut self.slots[i as usize];
        s.seg = seg;
        s.prev = NIL;
        s.next = old_head;
        if old_head != NIL {
            self.slots[old_head as usize].prev = i;
        }
    }

    /// A hit: probation promotes to hot (demoting hot's LRU if over
    /// target); hot moves to its MRU position.
    fn touch(&mut self, i: u32) {
        match self.slots[i as usize].seg {
            Seg::Probation => {
                self.unlink(i);
                self.push_mru(i, Seg::Hot);
                while self.hot.len > self.hot_target.max(1) {
                    let demote = self.hot.tail;
                    self.unlink(demote);
                    self.push_mru(demote, Seg::Probation);
                }
            }
            Seg::Hot => {
                if self.hot.head != i {
                    self.unlink(i);
                    self.push_mru(i, Seg::Hot);
                }
            }
            Seg::Free => unreachable!("touch of a free slot"),
        }
    }

    /// Copies the cached block into `out` and refreshes recency.
    /// `out` must be exactly one block.
    pub fn get(&mut self, lba: u64, out: &mut [u8]) -> bool {
        debug_assert_eq!(out.len(), self.block_size);
        let Some(&i) = self.map.get(&lba) else {
            return false;
        };
        out.copy_from_slice(&self.data[self.data_range(i)]);
        self.touch(i);
        true
    }

    /// The global eviction victim: probation LRU first, hot LRU if
    /// probation is empty.
    fn victim(&self) -> u32 {
        if self.probation.tail != NIL {
            self.probation.tail
        } else {
            self.hot.tail
        }
    }

    /// Takes a slot for a new entry, evicting (and writing back through
    /// `wb`) if no free slot remains. Returns the slot and whether an
    /// eviction happened.
    fn take_slot(&mut self, wb: &mut Writeback<'_>) -> Result<(u32, bool), BlockError> {
        if self.free_head != NIL {
            let i = self.free_head;
            self.free_head = self.slots[i as usize].next;
            return Ok((i, false));
        }
        let i = self.victim();
        debug_assert_ne!(i, NIL, "capacity > 0 but no victim");
        let (vlba, vseq) = {
            let s = &self.slots[i as usize];
            (s.lba, s.seq)
        };
        if vseq != CLEAN {
            // The victim's intent record is already in the journal
            // (appended before the entry went dirty), so this write-back
            // is the deferred in-place apply — crash-safe at any time
            // within the current epoch.
            wb(vlba, &self.data[self.data_range(i)])?;
            self.dirty_len -= 1;
        }
        self.unlink(i);
        self.map.remove(&vlba);
        Ok((i, true))
    }

    /// Inserts (or overwrites) `lba` with `data`, dirty under journal
    /// sequence `seq`. A dirty victim is written back through `wb`
    /// before its slot is reused. Returns true if an eviction occurred.
    pub fn put_write(
        &mut self,
        lba: u64,
        data: &[u8],
        seq: u64,
        wb: &mut Writeback<'_>,
    ) -> Result<bool, BlockError> {
        debug_assert_eq!(data.len(), self.block_size);
        debug_assert_ne!(seq, CLEAN, "record sequences start at 1");
        if !self.enabled() {
            return Err(BlockError::Io("put_write on a disabled cache".into()));
        }
        if let Some(&i) = self.map.get(&lba) {
            let r = self.data_range(i);
            self.data[r].copy_from_slice(data);
            let s = &mut self.slots[i as usize];
            if s.seq == CLEAN {
                self.dirty_len += 1;
            }
            s.seq = seq;
            self.touch(i);
            return Ok(false);
        }
        let (i, evicted) = self.take_slot(wb)?;
        let r = self.data_range(i);
        self.data[r].copy_from_slice(data);
        let s = &mut self.slots[i as usize];
        s.lba = lba;
        s.seq = seq;
        self.dirty_len += 1;
        self.map.insert(lba, i);
        self.push_mru(i, Seg::Probation);
        Ok(evicted)
    }

    /// A clean read-miss fill. Probes up to `CLEAN_PROBES` LRU
    /// candidates for a clean victim; if every candidate is dirty the
    /// fill is skipped (returns false) so the read path never issues a
    /// write. Already-resident blocks are left as they are.
    pub fn fill_clean(&mut self, lba: u64, data: &[u8]) -> bool {
        debug_assert_eq!(data.len(), self.block_size);
        if !self.enabled() || self.map.contains_key(&lba) {
            return false;
        }
        let i = if self.free_head != NIL {
            let i = self.free_head;
            self.free_head = self.slots[i as usize].next;
            i
        } else {
            // Walk probation LRU→MRU, then hot LRU→MRU, for a clean
            // victim within the probe budget.
            let mut found = NIL;
            let mut probes = 0;
            'scan: for list in [self.probation, self.hot] {
                let mut cur = list.tail;
                while cur != NIL && probes < CLEAN_PROBES {
                    if self.slots[cur as usize].seq == CLEAN {
                        found = cur;
                        break 'scan;
                    }
                    probes += 1;
                    cur = self.slots[cur as usize].prev;
                }
            }
            if found == NIL {
                return false;
            }
            let vlba = self.slots[found as usize].lba;
            self.unlink(found);
            self.map.remove(&vlba);
            found
        };
        let r = self.data_range(i);
        self.data[r].copy_from_slice(data);
        let s = &mut self.slots[i as usize];
        s.lba = lba;
        s.seq = CLEAN;
        self.map.insert(lba, i);
        self.push_mru(i, Seg::Probation);
        true
    }

    /// Writes every dirty entry back through `wb` and marks it clean.
    /// Returns how many blocks were written back. Entries stay resident
    /// (they now match the data region byte-for-byte).
    pub fn drain_dirty(&mut self, wb: &mut Writeback<'_>) -> Result<u64, BlockError> {
        if self.dirty_len == 0 {
            return Ok(0);
        }
        let mut written = 0u64;
        for i in 0..self.slots.len() {
            if self.slots[i].seg != Seg::Free && self.slots[i].seq != CLEAN {
                let r = i * self.block_size..(i + 1) * self.block_size;
                wb(self.slots[i].lba, &self.data[r])?;
                self.slots[i].seq = CLEAN;
                self.dirty_len -= 1;
                written += 1;
            }
        }
        debug_assert_eq!(self.dirty_len, 0);
        Ok(written)
    }

    /// Resizes the arena to `new_capacity` blocks in place — the
    /// adaptive controller's lever. Growing appends free slots and
    /// extends the data slab; shrinking writes back (through `wb`) and
    /// drops every entry resident in the removed tail slots, then
    /// truncates. Survivor recency and dirty pins are untouched; the
    /// hot-list target is re-derived and any overflow demoted, exactly
    /// as a hit would. This is a control-plane operation: it allocates,
    /// and is meant to run at controller cadence, not per I/O.
    pub fn resize(
        &mut self,
        new_capacity: usize,
        wb: &mut Writeback<'_>,
    ) -> Result<(), BlockError> {
        let old = self.slots.len();
        if new_capacity == old {
            return Ok(());
        }
        if new_capacity > old {
            self.data.resize(new_capacity * self.block_size, 0);
            self.slots.reserve(new_capacity - old);
            for i in old..new_capacity {
                self.slots.push(Slot {
                    lba: 0,
                    seq: CLEAN,
                    seg: Seg::Free,
                    prev: NIL,
                    next: NIL,
                });
                // Chain the fresh slot onto the free list.
                self.slots[i].next = self.free_head;
                self.free_head = i as u32;
            }
            self.map.reserve(new_capacity - old);
        } else {
            // Evict everything living in the doomed tail slots.
            for i in new_capacity..old {
                if self.slots[i].seg == Seg::Free {
                    continue;
                }
                let (vlba, vseq) = (self.slots[i].lba, self.slots[i].seq);
                if vseq != CLEAN {
                    let r = i * self.block_size..(i + 1) * self.block_size;
                    wb(vlba, &self.data[r])?;
                    self.dirty_len -= 1;
                }
                self.unlink(i as u32);
                self.map.remove(&vlba);
            }
            // The free list may thread through dropped indices; rebuild
            // it from the surviving free slots.
            self.free_head = NIL;
            for i in (0..new_capacity).rev() {
                if self.slots[i].seg == Seg::Free {
                    self.slots[i].next = self.free_head;
                    self.free_head = i as u32;
                }
            }
            self.slots.truncate(new_capacity);
            self.data.truncate(new_capacity * self.block_size);
        }
        self.hot_target = new_capacity * 4 / 5;
        while self.hot.len > self.hot_target.max(1) && self.hot.tail != NIL {
            let demote = self.hot.tail;
            self.unlink(demote);
            self.push_mru(demote, Seg::Probation);
        }
        Ok(())
    }

    /// Drops every entry covering `[lba, lba + nlb)` — dirty ones too,
    /// *without* write-back: the caller just journaled a TRIM/Write
    /// Zeroes that supersedes them and is about to punch the range.
    pub fn invalidate_range(&mut self, lba: u64, nlb: u32) {
        if !self.enabled() {
            return;
        }
        for b in lba..lba + u64::from(nlb) {
            if let Some(i) = self.map.remove(&b) {
                if self.slots[i as usize].seq != CLEAN {
                    self.dirty_len -= 1;
                }
                self.unlink(i);
                self.slots[i as usize].next = self.free_head;
                self.free_head = i;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_wb() -> impl FnMut(u64, &[u8]) -> Result<(), BlockError> {
        |lba, _| panic!("unexpected write-back of lba {lba}")
    }

    fn block(v: u8) -> Vec<u8> {
        vec![v; 64]
    }

    #[test]
    fn hit_miss_and_promotion() {
        let mut c = BlockCache::new(64, 4);
        assert!(c.enabled());
        let mut out = vec![0u8; 64];
        assert!(!c.get(7, &mut out));
        c.put_write(7, &block(0xaa), 1, &mut no_wb()).unwrap();
        assert!(c.get(7, &mut out), "just-inserted block must hit");
        assert_eq!(out, block(0xaa));
        assert_eq!(c.len(), 1);
        assert_eq!(c.dirty_blocks(), 1);
        assert_eq!(c.max_dirty_seq(), 1);
    }

    #[test]
    fn capacity_zero_is_inert() {
        let mut c = BlockCache::new(64, 0);
        assert!(!c.enabled());
        assert!(!c.fill_clean(0, &block(1)));
        assert!(!c.get(0, &mut block(0)));
        c.invalidate_range(0, 8);
        assert_eq!(c.drain_dirty(&mut no_wb()).unwrap(), 0);
    }

    #[test]
    fn dirty_eviction_writes_back_lru_first() {
        let mut c = BlockCache::new(64, 2);
        c.put_write(1, &block(1), 1, &mut no_wb()).unwrap();
        c.put_write(2, &block(2), 2, &mut no_wb()).unwrap();
        let mut wrote = Vec::new();
        let evicted = c
            .put_write(3, &block(3), 3, &mut |lba, data| {
                wrote.push((lba, data[0]));
                Ok(())
            })
            .unwrap();
        assert!(evicted);
        assert_eq!(wrote, vec![(1, 1)], "LRU victim, correct payload");
        assert!(c.contains(2) && c.contains(3) && !c.contains(1));
        assert_eq!(c.dirty_blocks(), 2);
    }

    #[test]
    fn hot_entries_survive_a_scan() {
        let mut c = BlockCache::new(64, 8); // hot target 6
        let mut out = vec![0u8; 64];
        // Build a re-referenced working set of 3 hot blocks.
        for lba in 0..3 {
            c.put_write(lba, &block(lba as u8 + 1), lba + 1, &mut no_wb())
                .unwrap();
            assert!(c.get(lba, &mut out)); // promote to hot
        }
        // Scan 32 one-touch blocks through the cache; they must wash
        // through probation without displacing the hot set.
        let mut dropped = Vec::new();
        for lba in 100..132 {
            c.put_write(lba, &block(9), lba, &mut |l, _| {
                dropped.push(l);
                Ok(())
            })
            .unwrap();
        }
        for lba in 0..3u64 {
            assert!(c.contains(lba), "hot lba {lba} displaced by scan");
        }
        assert!(!dropped.contains(&0) && !dropped.contains(&1) && !dropped.contains(&2));
    }

    #[test]
    fn fill_clean_never_writes_back() {
        let mut c = BlockCache::new(64, 2);
        c.put_write(1, &block(1), 1, &mut no_wb()).unwrap();
        c.put_write(2, &block(2), 2, &mut no_wb()).unwrap();
        // All candidates dirty: the fill must skip, not write back.
        assert!(!c.fill_clean(3, &block(3)));
        assert!(c.contains(1) && c.contains(2));
        // After a drain, fills may evict the now-clean entries.
        let mut wrote = 0;
        c.drain_dirty(&mut |_, _| {
            wrote += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(wrote, 2);
        assert!(c.fill_clean(3, &block(3)));
        let mut out = vec![0u8; 64];
        assert!(c.get(3, &mut out));
        assert_eq!(out, block(3));
    }

    #[test]
    fn overwrite_updates_in_place_without_eviction() {
        let mut c = BlockCache::new(64, 1);
        c.put_write(5, &block(1), 1, &mut no_wb()).unwrap();
        let evicted = c.put_write(5, &block(2), 2, &mut no_wb()).unwrap();
        assert!(!evicted, "overwrite reuses the entry");
        let mut out = vec![0u8; 64];
        assert!(c.get(5, &mut out));
        assert_eq!(out, block(2));
        assert_eq!(c.max_dirty_seq(), 2);
    }

    #[test]
    fn single_entry_thrash_is_correct() {
        let mut c = BlockCache::new(64, 1);
        let mut wrote = Vec::new();
        for i in 0..16u64 {
            c.put_write(i, &block(i as u8), i + 1, &mut |lba, d| {
                wrote.push((lba, d[0]));
                Ok(())
            })
            .unwrap();
        }
        // Every insert evicted (and wrote back) the previous dirty block.
        assert_eq!(wrote.len(), 15);
        for (i, &(lba, v)) in wrote.iter().enumerate() {
            assert_eq!((lba, v), (i as u64, i as u8));
        }
        assert!(c.contains(15));
    }

    #[test]
    fn invalidate_drops_dirty_without_writeback() {
        let mut c = BlockCache::new(64, 4);
        for lba in 0..4 {
            c.put_write(lba, &block(lba as u8), lba + 1, &mut no_wb())
                .unwrap();
        }
        c.invalidate_range(1, 2);
        assert!(c.contains(0) && !c.contains(1) && !c.contains(2) && c.contains(3));
        assert_eq!(c.dirty_blocks(), 2);
        // Freed slots are reusable without eviction.
        c.put_write(9, &block(9), 9, &mut no_wb()).unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn drain_marks_clean_and_keeps_residency() {
        let mut c = BlockCache::new(64, 4);
        c.put_write(1, &block(1), 1, &mut no_wb()).unwrap();
        c.put_write(2, &block(2), 2, &mut no_wb()).unwrap();
        assert_eq!(c.drain_dirty(&mut |_, _| Ok(())).unwrap(), 2);
        assert_eq!(c.dirty_blocks(), 0);
        assert_eq!(c.max_dirty_seq(), CLEAN);
        let mut out = vec![0u8; 64];
        assert!(c.get(1, &mut out), "drained entries stay resident");
        // A redirty after drain pins the new sequence.
        c.put_write(1, &block(3), 7, &mut no_wb()).unwrap();
        assert_eq!(c.max_dirty_seq(), 7);
        assert_eq!(c.dirty_blocks(), 1);
    }

    #[test]
    fn grow_keeps_entries_and_adds_room() {
        let mut c = BlockCache::new(64, 2);
        c.put_write(1, &block(1), 1, &mut no_wb()).unwrap();
        c.put_write(2, &block(2), 2, &mut no_wb()).unwrap();
        c.resize(4, &mut no_wb()).unwrap();
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.dirty_blocks(), 2);
        // Two more inserts fit without eviction now.
        c.put_write(3, &block(3), 3, &mut no_wb()).unwrap();
        c.put_write(4, &block(4), 4, &mut no_wb()).unwrap();
        let mut out = vec![0u8; 64];
        for lba in 1..=4u64 {
            assert!(c.get(lba, &mut out), "lba {lba} lost across grow");
            assert_eq!(out, block(lba as u8));
        }
    }

    #[test]
    fn shrink_writes_back_dropped_dirty_entries() {
        let mut c = BlockCache::new(64, 4);
        for lba in 0..4 {
            c.put_write(lba, &block(lba as u8 + 1), lba + 1, &mut no_wb())
                .unwrap();
        }
        let mut wrote = Vec::new();
        c.resize(2, &mut |lba, d| {
            wrote.push((lba, d[0]));
            Ok(())
        })
        .unwrap();
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.len() + wrote.len(), 4, "every entry kept or written back");
        for &(lba, v) in &wrote {
            assert_eq!(v, lba as u8 + 1, "dropped lba {lba} wrote back its bytes");
        }
        assert_eq!(c.dirty_blocks(), c.len(), "survivors keep their dirty pin");
        // The shrunken cache still behaves: insert evicts, data correct.
        let mut out = vec![0u8; 64];
        c.put_write(9, &block(9), 9, &mut |_, _| Ok(())).unwrap();
        assert!(c.get(9, &mut out));
        assert_eq!(out, block(9));
    }

    #[test]
    fn resize_roundtrip_preserves_correctness_under_thrash() {
        let mut c = BlockCache::new(64, 1);
        let mut sink = |_: u64, _: &[u8]| Ok(());
        for i in 0..8u64 {
            c.put_write(i, &block(i as u8), i + 1, &mut sink).unwrap();
        }
        c.resize(8, &mut sink).unwrap();
        for i in 8..16u64 {
            c.put_write(i, &block(i as u8), i + 1, &mut sink).unwrap();
        }
        c.resize(2, &mut sink).unwrap();
        assert!(c.capacity() == 2 && c.len() <= 2);
        let mut out = vec![0u8; 64];
        for i in 0..16u64 {
            if c.get(i, &mut out) {
                assert_eq!(out, block(i as u8), "resident lba {i} corrupted");
            }
        }
    }
}
