//! The syscall boundary of the store, made swappable so crashes can be
//! injected exactly where a real power loss bites.
//!
//! [`FileDisk`](crate::disk::FileDisk) never touches `std::fs` directly;
//! every byte goes through a [`Vfs`]. Four implementations:
//!
//! * [`RealVfs`] — a real file with positional I/O and `fdatasync`;
//! * [`MemVfs`] — a flat in-memory image with no volatile cache
//!   (always "durable"), for unit tests and allocation-budget tests;
//! * [`SharedMemVfs`] — a clone-shareable [`MemVfs`] with slow-sync /
//!   failing-sync knobs, the harness for sync-worker (offloaded
//!   durability) tests;
//! * [`CrashVfs`] — the chaos layer: a volatile-cache model over an
//!   in-memory image. Writes land in a pending cache and only
//!   [`Vfs::sync`] makes them durable. At a chosen syscall index the
//!   "machine dies": a seeded-random subset of the pending cache —
//!   including a possibly *torn prefix* of the in-flight write — reaches
//!   the durable image, and every later operation fails. Reopening from
//!   [`CrashVfs::durable_image`] is exactly a post-power-loss mount.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Positional I/O + durability barrier: the five syscalls the store is
/// allowed to make.
#[allow(clippy::len_without_is_empty)] // `len` is a file size, not a collection
pub trait Vfs: Send {
    /// Reads `buf.len()` bytes at absolute offset `off`. The store only
    /// reads inside the file it sized with [`Vfs::set_len`], so short
    /// reads are errors.
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Writes all of `buf` at absolute offset `off`.
    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<()>;

    /// Durability barrier: every write acknowledged before this call
    /// must survive a crash after it (`fdatasync` semantics).
    fn sync(&mut self) -> io::Result<()>;

    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;

    /// Grows (or truncates) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// A real file. `sync` is `fdatasync` — the store's own metadata lives
/// inside the file body, so inode timestamps need not be durable.
pub struct RealVfs {
    file: File,
}

impl RealVfs {
    /// Creates (or truncates) `path` for read/write.
    pub fn create(path: &Path) -> io::Result<RealVfs> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(RealVfs { file })
    }

    /// Opens an existing store file at `path` for read/write.
    pub fn open(path: &Path) -> io::Result<RealVfs> {
        let file = File::options().read(true).write(true).open(path)?;
        Ok(RealVfs { file })
    }
}

impl Vfs for RealVfs {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.read_exact_at(buf, off)
    }

    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<()> {
        self.file.write_all_at(buf, off)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }
}

/// A flat in-memory image with no volatile cache: every write is
/// immediately "durable", `sync` is a no-op. Writes inside the sized
/// image never allocate, so the store's steady-state allocation budget
/// can be pinned over this backend.
#[derive(Default)]
pub struct MemVfs {
    image: Vec<u8>,
}

impl MemVfs {
    /// An empty image (size it with [`Vfs::set_len`] — `FileDisk::create`
    /// does).
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// An image holding `bytes` — e.g. a [`CrashVfs::durable_image`] to
    /// mount what survived a crash.
    pub fn from_image(bytes: Vec<u8>) -> MemVfs {
        MemVfs { image: bytes }
    }

    /// A copy of the current image.
    pub fn image(&self) -> Vec<u8> {
        self.image.clone()
    }
}

fn range_of(off: u64, len: usize, file_len: usize) -> io::Result<std::ops::Range<usize>> {
    let start = usize::try_from(off).map_err(|_| io::Error::other("offset overflow"))?;
    let end = start
        .checked_add(len)
        .filter(|&e| e <= file_len)
        .ok_or_else(|| io::Error::other(format!("access [{start}, +{len}) beyond {file_len}")))?;
    Ok(start..end)
}

impl Vfs for MemVfs {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        let r = range_of(off, buf.len(), self.image.len())?;
        buf.copy_from_slice(&self.image[r]);
        Ok(())
    }

    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<()> {
        let r = range_of(off, buf.len(), self.image.len())?;
        self.image[r].copy_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.image.len() as u64)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.image.resize(len as usize, 0);
        Ok(())
    }
}

/// Sync-behaviour knobs shared by every clone of a [`SharedMemVfs`].
#[derive(Default)]
struct SyncCtl {
    delay_ns: AtomicU64,
    fail: AtomicBool,
    hold: AtomicBool,
    syncs: AtomicU64,
}

/// A clone-shareable [`MemVfs`]: every clone views the same image, so a
/// disk and its sync worker can hold two handles onto one "file" — the
/// [`RealVfs`] analogue is the same path opened twice.
///
/// The sync knobs model a slow or failing device. The configured delay
/// and hold are served *before* the image lock is taken, so reads and
/// writes through other clones keep flowing while a sync is "in
/// flight" — exactly how a real file behaves while `fdatasync` runs on
/// another fd.
#[derive(Clone, Default)]
pub struct SharedMemVfs {
    image: Arc<Mutex<MemVfs>>,
    ctl: Arc<SyncCtl>,
}

impl SharedMemVfs {
    /// An empty shared image.
    pub fn new() -> SharedMemVfs {
        SharedMemVfs::default()
    }

    /// A shared image holding `bytes`.
    pub fn from_image(bytes: Vec<u8>) -> SharedMemVfs {
        SharedMemVfs {
            image: Arc::new(Mutex::new(MemVfs::from_image(bytes))),
            ctl: Arc::default(),
        }
    }

    /// A copy of the current image.
    pub fn image(&self) -> Vec<u8> {
        self.image.lock().unwrap().image()
    }

    /// Every future [`Vfs::sync`] (on any clone) sleeps this long
    /// before touching the image — a slow device.
    pub fn set_sync_delay(&self, delay: Duration) {
        let ns = u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX);
        self.ctl.delay_ns.store(ns, Ordering::SeqCst);
    }

    /// Every future [`Vfs::sync`] fails with an injected I/O error
    /// until cleared — a dying device.
    pub fn set_fail_sync(&self, fail: bool) {
        self.ctl.fail.store(fail, Ordering::SeqCst);
    }

    /// While held, [`Vfs::sync`] spins (allocation-free) without
    /// touching the image — a sync frozen in flight, released on
    /// demand.
    pub fn hold_syncs(&self, hold: bool) {
        self.ctl.hold.store(hold, Ordering::SeqCst);
    }

    /// Completed (successful) syncs across all clones.
    pub fn syncs(&self) -> u64 {
        self.ctl.syncs.load(Ordering::SeqCst)
    }
}

impl Vfs for SharedMemVfs {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        self.image.lock().unwrap().read_at(off, buf)
    }

    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<()> {
        self.image.lock().unwrap().write_at(off, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        let delay = self.ctl.delay_ns.load(Ordering::SeqCst);
        if delay > 0 {
            std::thread::sleep(Duration::from_nanos(delay));
        }
        while self.ctl.hold.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        if self.ctl.fail.load(Ordering::SeqCst) {
            return Err(io::Error::other("injected sync failure"));
        }
        self.image.lock().unwrap().sync()?;
        self.ctl.syncs.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        self.image.lock().unwrap().len()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.image.lock().unwrap().set_len(len)
    }
}

/// One write parked in the volatile cache.
struct PendingWrite {
    off: u64,
    data: Vec<u8>,
}

/// The volatile-cache crash model.
///
/// `view` is what the running store observes (page-cache semantics:
/// reads see unsynced writes); `durable` is what the platter holds.
/// [`Vfs::sync`] reconciles them. When the syscall counter reaches
/// `crash_at` the machine dies mid-syscall: each cached write survives
/// with probability ½ (drawn from a splitmix64 stream seeded by `seed`,
/// the same generator family `oaf-chaos` uses, so a failing seed replays
/// bit-for-bit), the in-flight write survives as a random — possibly
/// empty, possibly torn — prefix, and every subsequent call fails.
pub struct CrashVfs {
    view: Vec<u8>,
    durable: Vec<u8>,
    pending: Vec<PendingWrite>,
    /// Syscall index (1-based) at which to crash; `None` = never.
    crash_at: Option<u64>,
    syscalls: u64,
    rng: u64,
    crashed: bool,
}

/// splitmix64 step — the seed expander behind `oaf_chaos::rng`, inlined
/// here because the dependency points the other way (`oaf-chaos` sits
/// above `oaf-nvmeof`, which sits above this crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CrashVfs {
    /// A crash layer over an empty image. `crash_at` counts mutating
    /// syscalls (`write_at`, `sync`) from 1; the counter is exposed via
    /// [`CrashVfs::syscalls`] so tests can size kill windows.
    pub fn new(seed: u64, crash_at: Option<u64>) -> CrashVfs {
        CrashVfs {
            view: Vec::new(),
            durable: Vec::new(),
            pending: Vec::new(),
            crash_at,
            syscalls: 0,
            rng: seed,
            crashed: false,
        }
    }

    /// A crash layer over an existing durable image (e.g. to crash a
    /// store that already survived one crash).
    pub fn over_image(bytes: Vec<u8>, seed: u64, crash_at: Option<u64>) -> CrashVfs {
        CrashVfs {
            view: bytes.clone(),
            durable: bytes,
            pending: Vec::new(),
            crash_at,
            syscalls: 0,
            rng: seed,
            crashed: false,
        }
    }

    /// Mutating syscalls issued so far.
    pub fn syscalls(&self) -> u64 {
        self.syscalls
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// What the platter holds: the bytes a post-crash mount would see.
    /// (Before a crash this is the synced prefix of history.)
    pub fn durable_image(&self) -> Vec<u8> {
        self.durable
            .iter()
            .copied()
            .chain(std::iter::repeat_n(
                0,
                self.view.len().saturating_sub(self.durable.len()),
            ))
            .collect()
    }

    fn dead() -> io::Error {
        io::Error::other("injected crash: store is dead")
    }

    /// Counts one mutating syscall; returns true when this is the one
    /// that dies.
    fn tick(&mut self) -> bool {
        self.syscalls += 1;
        self.crash_at == Some(self.syscalls)
    }

    /// The power cut: a random subset of the volatile cache — in write
    /// order, so later survivors still overwrite earlier ones — plus a
    /// random prefix of `inflight` reaches the platter.
    fn crash(&mut self, inflight: Option<(u64, &[u8])>) {
        self.crashed = true;
        self.durable.resize(self.view.len(), 0);
        let pending = std::mem::take(&mut self.pending);
        for w in pending {
            if splitmix64(&mut self.rng) & 1 == 0 {
                let end = (w.off as usize + w.data.len()).min(self.durable.len());
                let start = (w.off as usize).min(end);
                self.durable[start..end].copy_from_slice(&w.data[..end - start]);
            }
        }
        if let Some((off, data)) = inflight {
            let keep = (splitmix64(&mut self.rng) as usize) % (data.len() + 1);
            let end = (off as usize + keep).min(self.durable.len());
            let start = (off as usize).min(end);
            self.durable[start..end].copy_from_slice(&data[..end - start]);
        }
    }
}

impl Vfs for CrashVfs {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        if self.crashed {
            return Err(Self::dead());
        }
        let r = range_of(off, buf.len(), self.view.len())?;
        buf.copy_from_slice(&self.view[r]);
        Ok(())
    }

    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<()> {
        if self.crashed {
            return Err(Self::dead());
        }
        if self.tick() {
            self.crash(Some((off, buf)));
            return Err(Self::dead());
        }
        let r = range_of(off, buf.len(), self.view.len())?;
        self.view[r].copy_from_slice(buf);
        self.pending.push(PendingWrite {
            off,
            data: buf.to_vec(),
        });
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(Self::dead());
        }
        if self.tick() {
            // Dying inside fsync: the kernel may have written any subset
            // back already — same policy as a write-boundary crash.
            self.crash(None);
            return Err(Self::dead());
        }
        self.durable = self.view.clone();
        self.pending.clear();
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        if self.crashed {
            return Err(Self::dead());
        }
        Ok(self.view.len() as u64)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if self.crashed {
            return Err(Self::dead());
        }
        self.view.resize(len as usize, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_roundtrip_and_bounds() {
        let mut v = MemVfs::new();
        v.set_len(64).unwrap();
        v.write_at(8, &[7u8; 4]).unwrap();
        let mut out = [0u8; 4];
        v.read_at(8, &mut out).unwrap();
        assert_eq!(out, [7u8; 4]);
        assert!(v.write_at(62, &[0u8; 4]).is_err());
        assert!(v.read_at(64, &mut out).is_err());
        assert_eq!(v.len().unwrap(), 64);
    }

    #[test]
    fn crash_vfs_unsynced_writes_may_die() {
        // Crash at syscall 3: writes 1 and 2 are pending, write 3 is
        // in-flight. Whatever survives must be a subset; synced data
        // must survive in full.
        let mut v = CrashVfs::new(0xD15C, Some(4));
        v.set_len(32).unwrap();
        v.write_at(0, &[1u8; 8]).unwrap(); // syscall 1
        v.sync().unwrap(); // syscall 2 — [1; 8] is now guaranteed
        v.write_at(8, &[2u8; 8]).unwrap(); // syscall 3
        let err = v.write_at(16, &[3u8; 8]).unwrap_err(); // syscall 4: dies
        assert!(err.to_string().contains("crash"));
        assert!(v.crashed());
        assert!(
            v.read_at(0, &mut [0u8; 1]).is_err(),
            "dead store stays dead"
        );
        let img = v.durable_image();
        assert_eq!(&img[0..8], &[1u8; 8], "synced bytes must survive");
        // Unsynced regions hold either the old or the new bytes.
        assert!(img[8..16].iter().all(|&b| b == 0 || b == 2));
        assert!(img[16..24].iter().all(|&b| b == 0 || b == 3));
    }

    #[test]
    fn crash_vfs_same_seed_same_wreckage() {
        let run = |seed| {
            let mut v = CrashVfs::new(seed, Some(5));
            v.set_len(128).unwrap();
            for i in 0..5u64 {
                let _ = v.write_at(i * 16, &[i as u8 + 1; 16]);
            }
            v.durable_image()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn crash_vfs_sync_barrier_is_total() {
        let mut v = CrashVfs::new(7, Some(4));
        v.set_len(16).unwrap();
        v.write_at(0, &[0xaa; 16]).unwrap();
        v.sync().unwrap();
        v.write_at(0, &[0xbb; 16]).unwrap(); // syscall 3, pending
        let _ = v.sync(); // syscall 4: dies mid-fsync
        let img = v.durable_image();
        // Every byte is old-or-new; never garbage.
        assert!(img.iter().all(|&b| b == 0xaa || b == 0xbb));
    }
}
