//! Group commit: one `fdatasync` retires many durability barriers.
//!
//! Every record appended to the intent log carries a monotonic sequence
//! number, and a durability barrier (FUA write, Flush) only needs *its*
//! sequence to reach the platter. Because a single `fdatasync` makes the
//! whole file durable, any barrier whose sequence is ≤ the highest
//! sequence appended when some sync started is retired by that sync —
//! there is no reason for N concurrent barriers to issue N syncs.
//!
//! ## Ticket protocol
//!
//! A barrier takes a *ticket* for its record's sequence number and loops
//! on three states under one mutex:
//!
//! 1. **retired** — `durable_seq >= ticket`: some sync (ours or another
//!    queue's) already covered the ticket; return. If this barrier never
//!    led a sync itself, it was coalesced (`fsyncs_coalesced`).
//! 2. **leader** — no sync in flight: mark one in flight, drop the
//!    coordination lock, take the disk lock, and sync *everything
//!    appended so far* (the covered sequence is read under the disk
//!    lock, so no append can sneak past it). Publish the covered
//!    sequence, wake every waiter.
//! 3. **follower** — a sync is in flight: park on the condvar. The
//!    leader's wakeup re-runs the loop, so a ticket the finished sync
//!    did not cover elects the next leader instead of being lost — no
//!    lost-wakeup hang, no barrier completes early.
//!
//! Batch telemetry: each sync records how many tickets it retired
//! (`commit_batch`); with K concurrent writers the histogram's mass
//! sits near K while `fsyncs` grows ~1/K as fast as barriers.

use std::sync::{Condvar, Mutex};

use oaf_ssd::ram::BlockError;

use crate::metrics::StoreMetrics;

/// Coordinator state: the durability watermark plus the in-flight flag.
#[derive(Default)]
struct CommitState {
    /// Highest record sequence known durable on the platter.
    durable_seq: u64,
    /// A leader is inside the sync syscall right now.
    sync_in_flight: bool,
    /// Tickets enrolled since the last sync completed (for the
    /// batch-size histogram; includes the future leader itself).
    tickets: u64,
}

/// The sync coordinator shared by every queue view of one
/// [`SharedFileDisk`](crate::disk::SharedFileDisk).
#[derive(Default)]
pub struct GroupCommit {
    state: Mutex<CommitState>,
    retired: Condvar,
}

impl GroupCommit {
    /// A fresh coordinator with nothing durable.
    pub fn new() -> GroupCommit {
        GroupCommit::default()
    }

    /// Highest sequence known durable (telemetry/tests).
    pub fn durable_seq(&self) -> u64 {
        self.state.lock().expect("commit lock poisoned").durable_seq
    }

    /// Blocks until every record with sequence ≤ `seq` is durable.
    ///
    /// `sync` performs one device barrier and returns the highest
    /// sequence it covered; it is invoked at most once per elected
    /// leader and never concurrently with itself. A barrier that
    /// returns without having led a sync was coalesced into another
    /// barrier's `fdatasync`.
    pub fn barrier(
        &self,
        seq: u64,
        metrics: &StoreMetrics,
        mut sync: impl FnMut() -> Result<u64, BlockError>,
    ) -> Result<(), BlockError> {
        let mut led_sync = false;
        let mut guard = self.state.lock().expect("commit lock poisoned");
        if guard.durable_seq < seq {
            guard.tickets += 1;
        }
        loop {
            if guard.durable_seq >= seq {
                if !led_sync {
                    metrics.fsyncs_coalesced.inc();
                }
                return Ok(());
            }
            if !guard.sync_in_flight {
                // Leader: sync outside the coordination lock so arriving
                // barriers can enroll as followers meanwhile.
                guard.sync_in_flight = true;
                drop(guard);
                let res = sync();
                led_sync = true;
                guard = self.state.lock().expect("commit lock poisoned");
                guard.sync_in_flight = false;
                match res {
                    Ok(covered) => {
                        guard.durable_seq = guard.durable_seq.max(covered);
                        // Every enrolled ticket's record predates the
                        // sync we just led, so the batch is all of them;
                        // a ticket the watermark somehow missed re-enrolls
                        // below.
                        metrics.commit_batch.record(guard.tickets.max(1));
                        guard.tickets = 0;
                        if guard.durable_seq < seq {
                            guard.tickets += 1;
                        }
                    }
                    Err(e) => {
                        // Dead store: wake everyone so they fail fast on
                        // their own sync attempt instead of hanging.
                        self.retired.notify_all();
                        return Err(e);
                    }
                }
                self.retired.notify_all();
            } else {
                guard = self.retired.wait(guard).expect("commit lock poisoned");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_barrier_syncs_once() {
        let gc = GroupCommit::new();
        let m = StoreMetrics::new();
        let syncs = AtomicU64::new(0);
        gc.barrier(5, &m, || {
            syncs.fetch_add(1, Ordering::SeqCst);
            Ok(7)
        })
        .unwrap();
        assert_eq!(syncs.load(Ordering::SeqCst), 1);
        assert_eq!(gc.durable_seq(), 7);
        assert_eq!(m.fsyncs_coalesced.get(), 0);
        assert_eq!(m.commit_batch.snapshot().count, 1);
    }

    #[test]
    fn covered_barrier_never_syncs() {
        let gc = GroupCommit::new();
        let m = StoreMetrics::new();
        gc.barrier(3, &m, || Ok(10)).unwrap();
        // Seqs 4..=10 were covered by the first sync.
        gc.barrier(10, &m, || panic!("must not sync")).unwrap();
        assert_eq!(m.fsyncs_coalesced.get(), 1);
    }

    #[test]
    fn sync_error_propagates_and_unblocks() {
        let gc = Arc::new(GroupCommit::new());
        let m = StoreMetrics::new();
        let err = gc
            .barrier(1, &m, || Err(BlockError::Io("dead".into())))
            .unwrap_err();
        assert!(matches!(err, BlockError::Io(_)));
        // The coordinator is not wedged: a later barrier can still lead.
        gc.barrier(1, &m, || Ok(1)).unwrap();
        assert_eq!(gc.durable_seq(), 1);
    }

    #[test]
    fn concurrent_barriers_coalesce() {
        let gc = Arc::new(GroupCommit::new());
        let m = StoreMetrics::new();
        let appended = Arc::new(AtomicU64::new(0));
        let syncs = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gc = Arc::clone(&gc);
                let m = Arc::clone(&m);
                let appended = Arc::clone(&appended);
                let syncs = Arc::clone(&syncs);
                std::thread::spawn(move || {
                    for _ in 0..32 {
                        let seq = appended.fetch_add(1, Ordering::SeqCst) + 1;
                        let appended = Arc::clone(&appended);
                        let syncs = Arc::clone(&syncs);
                        gc.barrier(seq, &m, move || {
                            syncs.fetch_add(1, Ordering::SeqCst);
                            // Emulate a slow device barrier so queues pile
                            // up behind the leader.
                            std::thread::sleep(std::time::Duration::from_micros(200));
                            Ok(appended.load(Ordering::SeqCst))
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = 8 * 32u64;
        let s = syncs.load(Ordering::SeqCst);
        assert!(s < total, "no coalescing: {s} syncs for {total} barriers");
        assert_eq!(m.fsyncs_coalesced.get(), total - s);
        assert_eq!(gc.durable_seq(), total);
    }
}
