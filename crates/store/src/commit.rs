//! Group commit: one `fdatasync` retires many durability barriers.
//!
//! Every record appended to the intent log carries a monotonic sequence
//! number, and a durability barrier (FUA write, Flush) only needs *its*
//! sequence to reach the platter. Because a single `fdatasync` makes the
//! whole file durable, any barrier whose sequence is ≤ the highest
//! sequence appended when some sync started is retired by that sync —
//! there is no reason for N concurrent barriers to issue N syncs.
//!
//! ## Ticket protocol
//!
//! A barrier takes a *ticket* for its record's sequence number and loops
//! on three states under one mutex:
//!
//! 1. **retired** — `durable_seq >= ticket`: some sync (ours or another
//!    queue's) already covered the ticket; return. If this barrier never
//!    led a sync itself, it was coalesced (`fsyncs_coalesced`).
//! 2. **leader** — no sync in flight: mark one in flight, drop the
//!    coordination lock, take the disk lock, and sync *everything
//!    appended so far* (the covered sequence is read under the disk
//!    lock, so no append can sneak past it). Publish the covered
//!    sequence, wake every waiter.
//! 3. **follower** — a sync is in flight: park on the condvar. The
//!    leader's wakeup re-runs the loop, so a ticket the finished sync
//!    did not cover elects the next leader instead of being lost — no
//!    lost-wakeup hang, no barrier completes early.
//!
//! Batch telemetry: each sync records how many tickets it retired
//! (`commit_batch`); with K concurrent writers the histogram's mass
//! sits near K while `fsyncs` grows ~1/K as fast as barriers.
//!
//! ## Offloaded mode (async durability pipeline)
//!
//! When a sync worker thread is attached (see
//! [`SharedFileDisk::with_sync_worker`](crate::disk::SharedFileDisk::with_sync_worker)),
//! the coordinator grows a second, *completion-decoupled* face:
//!
//! - [`submit_sync`](GroupCommit::submit_sync) enrolls a barrier ticket
//!   and returns a [`SyncHandle`] immediately — no blocking, no
//!   allocation. The worker is woken through a condvar.
//! - The worker loops on `next_sync_request` / `complete_sync`
//!   (crate-private worker rounds): each round snapshots
//!   the highest requested sequence, runs one device barrier *off every
//!   reactor thread*, and publishes either a new `durable_seq` or a
//!   `failed_seq` watermark equal to the snapshot target — so an error
//!   fails exactly the set of tickets that were parked behind that sync
//!   and nothing submitted after it.
//! - [`poll_sync`](GroupCommit::poll_sync) is a lock-free read of two
//!   monotonic atomics, cheap enough for a reactor to probe every pass.
//!   Durability wins over failure: a ticket covered by a *later*
//!   successful sync is durable no matter what an earlier round said.
//!
//! The blocking [`barrier`](GroupCommit::barrier) rides the worker when
//! one is attached (enroll, wait on the retired condvar) so legacy
//! callers keep group-commit batching without ever issuing their own
//! `fdatasync`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use oaf_ssd::ram::BlockError;

use crate::metrics::StoreMetrics;

/// Outcome of polling a submitted barrier ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncStatus {
    /// The covering sync has not finished yet; poll again later.
    Pending,
    /// Every record at or below the ticket's sequence is on the platter.
    Durable,
    /// The sync covering this ticket failed; the write is journaled but
    /// not known durable. Later tickets may still succeed.
    Failed,
}

/// A parked durability barrier: the sequence number whose durability the
/// submitter is waiting on. `Copy` and allocation-free by design — the
/// reactor parks these in preallocated rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncHandle {
    seq: u64,
}

impl SyncHandle {
    /// The record sequence this ticket waits on.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Coordinator state: the durability watermark plus the in-flight flag.
#[derive(Default)]
struct CommitState {
    /// Highest record sequence known durable on the platter.
    durable_seq: u64,
    /// A leader is inside the sync syscall right now.
    sync_in_flight: bool,
    /// Tickets enrolled since the last sync completed (for the
    /// batch-size histogram; includes the future leader itself).
    tickets: u64,
    /// Tickets the worker moved into its current sync round (their
    /// sequences all predate the round's snapshot target).
    syncing_tickets: u64,
    /// Highest sequence any ticket has asked the worker to cover.
    requested_seq: u64,
    /// Highest snapshot target a failed worker sync covered.
    failed_seq: u64,
    /// A sync worker thread is attached and draining requests.
    worker_attached: bool,
    /// The worker has been asked to exit.
    worker_shutdown: bool,
    /// Last worker sync error, kept for blocking waiters to surface.
    fail_msg: Option<String>,
}

/// The sync coordinator shared by every queue view of one
/// [`SharedFileDisk`](crate::disk::SharedFileDisk).
#[derive(Default)]
pub struct GroupCommit {
    state: Mutex<CommitState>,
    retired: Condvar,
    /// Wakes the sync worker when new tickets arrive or shutdown is set.
    work: Condvar,
    /// Lock-free mirror of `durable_seq` for reactor-side polling.
    durable: AtomicU64,
    /// Lock-free mirror of `failed_seq` for reactor-side polling.
    failed: AtomicU64,
    /// Mirror of `worker_attached` readable without the lock.
    offloaded: AtomicBool,
}

impl GroupCommit {
    /// A fresh coordinator with nothing durable.
    pub fn new() -> GroupCommit {
        GroupCommit::default()
    }

    /// Highest sequence known durable (telemetry/tests).
    pub fn durable_seq(&self) -> u64 {
        self.state.lock().expect("commit lock poisoned").durable_seq
    }

    /// True when a sync worker thread is attached: barriers should be
    /// submitted (or ridden through the worker) rather than leading
    /// their own `fdatasync`.
    pub fn offloaded(&self) -> bool {
        self.offloaded.load(Ordering::Acquire)
    }

    /// Enroll a non-blocking barrier ticket for `seq` and wake the sync
    /// worker. Allocation-free. The returned handle is resolved with
    /// [`poll_sync`](GroupCommit::poll_sync); a ticket that is already
    /// durable resolves on the first poll.
    pub fn submit_sync(&self, seq: u64, metrics: &StoreMetrics) -> SyncHandle {
        let mut guard = self.state.lock().expect("commit lock poisoned");
        metrics.barriers_offloaded.inc();
        if guard.durable_seq < seq {
            guard.tickets += 1;
            if guard.requested_seq < seq {
                guard.requested_seq = seq;
            }
            metrics
                .sync_queue_depth
                .set((guard.tickets + guard.syncing_tickets) as i64);
            self.work.notify_one();
        }
        SyncHandle { seq }
    }

    /// Lock-free status probe for a submitted ticket. Durability is
    /// checked first: a later successful sync genuinely covered the
    /// ticket even if an earlier round failed.
    #[inline]
    pub fn poll_sync(&self, handle: SyncHandle) -> SyncStatus {
        if self.durable.load(Ordering::Acquire) >= handle.seq {
            SyncStatus::Durable
        } else if self.failed.load(Ordering::Acquire) >= handle.seq {
            SyncStatus::Failed
        } else {
            SyncStatus::Pending
        }
    }

    /// Marks a worker thread attached; subsequent barriers ride it.
    pub(crate) fn attach_worker(&self) {
        let mut guard = self.state.lock().expect("commit lock poisoned");
        guard.worker_attached = true;
        guard.worker_shutdown = false;
        self.offloaded.store(true, Ordering::Release);
    }

    /// Asks the worker to exit and detaches offloaded mode. Blocking
    /// waiters are woken so they can fall back to the inline path.
    pub(crate) fn shutdown_worker(&self) {
        let mut guard = self.state.lock().expect("commit lock poisoned");
        guard.worker_shutdown = true;
        guard.worker_attached = false;
        self.offloaded.store(false, Ordering::Release);
        drop(guard);
        self.work.notify_all();
        self.retired.notify_all();
    }

    /// Worker side: block until there is something to sync (or shutdown).
    /// Returns the snapshot target — the highest requested sequence at
    /// the moment the round starts. Tickets enrolled *after* this call
    /// belong to the next round.
    pub(crate) fn next_sync_request(&self) -> Option<u64> {
        let mut guard = self.state.lock().expect("commit lock poisoned");
        loop {
            if guard.worker_shutdown {
                return None;
            }
            let retired_hi = guard.durable_seq.max(guard.failed_seq);
            if guard.requested_seq > retired_hi {
                guard.syncing_tickets += guard.tickets;
                guard.tickets = 0;
                return Some(guard.requested_seq);
            }
            guard = self.work.wait(guard).expect("commit lock poisoned");
        }
    }

    /// Worker side: publish one round's outcome. On success the durable
    /// watermark advances to `covered` (≥ the snapshot target, since the
    /// device barrier covers everything appended when it ran). On error
    /// the failed watermark advances to exactly `target`, failing the
    /// parked set behind this round and nothing newer.
    pub(crate) fn complete_sync(
        &self,
        target: u64,
        res: Result<u64, BlockError>,
        metrics: &StoreMetrics,
    ) {
        let mut guard = self.state.lock().expect("commit lock poisoned");
        match res {
            Ok(covered) => {
                guard.durable_seq = guard.durable_seq.max(covered);
                self.durable.store(guard.durable_seq, Ordering::Release);
                metrics.commit_batch.record(guard.syncing_tickets.max(1));
            }
            Err(e) => {
                guard.failed_seq = guard.failed_seq.max(target);
                self.failed.store(guard.failed_seq, Ordering::Release);
                guard.fail_msg = Some(e.to_string());
                if guard.requested_seq <= guard.failed_seq {
                    // Every outstanding request is covered by the failure;
                    // nothing left for a future batch to count.
                    guard.tickets = 0;
                }
            }
        }
        guard.syncing_tickets = 0;
        metrics
            .sync_queue_depth
            .set((guard.tickets + guard.syncing_tickets) as i64);
        drop(guard);
        self.retired.notify_all();
    }

    /// Blocks until every record with sequence ≤ `seq` is durable.
    ///
    /// `sync` performs one device barrier and returns the highest
    /// sequence it covered; it is invoked at most once per elected
    /// leader and never concurrently with itself. A barrier that
    /// returns without having led a sync was coalesced into another
    /// barrier's `fdatasync`.
    pub fn barrier(
        &self,
        seq: u64,
        metrics: &StoreMetrics,
        mut sync: impl FnMut() -> Result<u64, BlockError>,
    ) -> Result<(), BlockError> {
        if self.offloaded() {
            if let Some(res) = self.barrier_via_worker(seq, metrics) {
                return res;
            }
            // Worker detached while we waited: fall through and lead.
        }
        metrics.barriers_inline.inc();
        let mut led_sync = false;
        let mut guard = self.state.lock().expect("commit lock poisoned");
        if guard.durable_seq < seq {
            guard.tickets += 1;
        }
        loop {
            if guard.durable_seq >= seq {
                if !led_sync {
                    metrics.fsyncs_coalesced.inc();
                }
                return Ok(());
            }
            if !guard.sync_in_flight {
                // Leader: sync outside the coordination lock so arriving
                // barriers can enroll as followers meanwhile.
                guard.sync_in_flight = true;
                drop(guard);
                let res = sync();
                led_sync = true;
                guard = self.state.lock().expect("commit lock poisoned");
                guard.sync_in_flight = false;
                match res {
                    Ok(covered) => {
                        guard.durable_seq = guard.durable_seq.max(covered);
                        self.durable.store(guard.durable_seq, Ordering::Release);
                        // Every enrolled ticket's record predates the
                        // sync we just led, so the batch is all of them;
                        // a ticket the watermark somehow missed re-enrolls
                        // below.
                        metrics.commit_batch.record(guard.tickets.max(1));
                        guard.tickets = 0;
                        if guard.durable_seq < seq {
                            guard.tickets += 1;
                        }
                    }
                    Err(e) => {
                        // Dead store: wake everyone so they fail fast on
                        // their own sync attempt instead of hanging.
                        self.retired.notify_all();
                        return Err(e);
                    }
                }
                self.retired.notify_all();
            } else {
                guard = self.retired.wait(guard).expect("commit lock poisoned");
            }
        }
    }

    /// Blocking barrier in offloaded mode: enroll a ticket, wake the
    /// worker, and park on the retired condvar until the watermark
    /// passes. Returns `None` if the worker detaches mid-wait (the
    /// caller falls back to leading its own sync).
    fn barrier_via_worker(
        &self,
        seq: u64,
        metrics: &StoreMetrics,
    ) -> Option<Result<(), BlockError>> {
        let mut guard = self.state.lock().expect("commit lock poisoned");
        if guard.durable_seq >= seq {
            metrics.fsyncs_coalesced.inc();
            return Some(Ok(()));
        }
        if !guard.worker_attached {
            return None;
        }
        metrics.barriers_offloaded.inc();
        guard.tickets += 1;
        if guard.requested_seq < seq {
            guard.requested_seq = seq;
        }
        metrics
            .sync_queue_depth
            .set((guard.tickets + guard.syncing_tickets) as i64);
        self.work.notify_one();
        loop {
            if guard.durable_seq >= seq {
                return Some(Ok(()));
            }
            if guard.failed_seq >= seq {
                let msg = guard
                    .fail_msg
                    .clone()
                    .unwrap_or_else(|| "sync worker failed".to_string());
                return Some(Err(BlockError::Io(msg)));
            }
            if !guard.worker_attached {
                return None;
            }
            guard = self.retired.wait(guard).expect("commit lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_barrier_syncs_once() {
        let gc = GroupCommit::new();
        let m = StoreMetrics::new();
        let syncs = AtomicU64::new(0);
        gc.barrier(5, &m, || {
            syncs.fetch_add(1, Ordering::SeqCst);
            Ok(7)
        })
        .unwrap();
        assert_eq!(syncs.load(Ordering::SeqCst), 1);
        assert_eq!(gc.durable_seq(), 7);
        assert_eq!(m.fsyncs_coalesced.get(), 0);
        assert_eq!(m.commit_batch.snapshot().count, 1);
    }

    #[test]
    fn covered_barrier_never_syncs() {
        let gc = GroupCommit::new();
        let m = StoreMetrics::new();
        gc.barrier(3, &m, || Ok(10)).unwrap();
        // Seqs 4..=10 were covered by the first sync.
        gc.barrier(10, &m, || panic!("must not sync")).unwrap();
        assert_eq!(m.fsyncs_coalesced.get(), 1);
    }

    #[test]
    fn sync_error_propagates_and_unblocks() {
        let gc = Arc::new(GroupCommit::new());
        let m = StoreMetrics::new();
        let err = gc
            .barrier(1, &m, || Err(BlockError::Io("dead".into())))
            .unwrap_err();
        assert!(matches!(err, BlockError::Io(_)));
        // The coordinator is not wedged: a later barrier can still lead.
        gc.barrier(1, &m, || Ok(1)).unwrap();
        assert_eq!(gc.durable_seq(), 1);
    }

    #[test]
    fn concurrent_barriers_coalesce() {
        let gc = Arc::new(GroupCommit::new());
        let m = StoreMetrics::new();
        let appended = Arc::new(AtomicU64::new(0));
        let syncs = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gc = Arc::clone(&gc);
                let m = Arc::clone(&m);
                let appended = Arc::clone(&appended);
                let syncs = Arc::clone(&syncs);
                std::thread::spawn(move || {
                    for _ in 0..32 {
                        let seq = appended.fetch_add(1, Ordering::SeqCst) + 1;
                        let appended = Arc::clone(&appended);
                        let syncs = Arc::clone(&syncs);
                        gc.barrier(seq, &m, move || {
                            syncs.fetch_add(1, Ordering::SeqCst);
                            // Emulate a slow device barrier so queues pile
                            // up behind the leader.
                            std::thread::sleep(std::time::Duration::from_micros(200));
                            Ok(appended.load(Ordering::SeqCst))
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = 8 * 32u64;
        let s = syncs.load(Ordering::SeqCst);
        assert!(s < total, "no coalescing: {s} syncs for {total} barriers");
        assert_eq!(m.fsyncs_coalesced.get(), total - s);
        assert_eq!(gc.durable_seq(), total);
    }

    #[test]
    fn submit_poll_roundtrip_through_a_manual_worker() {
        let gc = GroupCommit::new();
        let m = StoreMetrics::new();
        gc.attach_worker();
        let h1 = gc.submit_sync(1, &m);
        let h2 = gc.submit_sync(2, &m);
        assert_eq!(gc.poll_sync(h1), SyncStatus::Pending);
        assert_eq!(m.sync_queue_depth.get(), 2);
        assert_eq!(m.barriers_offloaded.get(), 2);
        // Play the worker: one round covers both tickets.
        let target = gc.next_sync_request().expect("work pending");
        assert_eq!(target, 2);
        gc.complete_sync(target, Ok(5), &m);
        assert_eq!(gc.poll_sync(h1), SyncStatus::Durable);
        assert_eq!(gc.poll_sync(h2), SyncStatus::Durable);
        assert_eq!(m.sync_queue_depth.get(), 0);
        assert_eq!(m.commit_batch.snapshot().count, 1);
        // Already-durable submits resolve on the first poll, no new work.
        let h3 = gc.submit_sync(4, &m);
        assert_eq!(gc.poll_sync(h3), SyncStatus::Durable);
    }

    #[test]
    fn sync_error_fails_exactly_the_parked_set() {
        let gc = GroupCommit::new();
        let m = StoreMetrics::new();
        gc.attach_worker();
        let h1 = gc.submit_sync(1, &m);
        let h2 = gc.submit_sync(2, &m);
        let target = gc.next_sync_request().unwrap();
        gc.complete_sync(target, Err(BlockError::Io("dead".into())), &m);
        assert_eq!(gc.poll_sync(h1), SyncStatus::Failed);
        assert_eq!(gc.poll_sync(h2), SyncStatus::Failed);
        // A ticket submitted after the failure is NOT failed by it…
        let h3 = gc.submit_sync(3, &m);
        assert_eq!(gc.poll_sync(h3), SyncStatus::Pending);
        // …and a later successful round makes everything durable —
        // including the earlier tickets, whose records the new device
        // barrier genuinely covered (durability wins over failure).
        let target = gc.next_sync_request().unwrap();
        assert_eq!(target, 3);
        gc.complete_sync(target, Ok(3), &m);
        assert_eq!(gc.poll_sync(h3), SyncStatus::Durable);
        assert_eq!(gc.poll_sync(h1), SyncStatus::Durable);
    }

    #[test]
    fn blocking_barrier_rides_the_attached_worker() {
        let gc = Arc::new(GroupCommit::new());
        let m = StoreMetrics::new();
        gc.attach_worker();
        let waiter = {
            let gc = Arc::clone(&gc);
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                gc.barrier(7, &m, || -> Result<u64, BlockError> {
                    panic!("offloaded barrier must never lead its own sync")
                })
            })
        };
        // Worker side: serve rounds until the waiter's seq is requested.
        let target = gc.next_sync_request().expect("waiter enrolls a ticket");
        assert_eq!(target, 7);
        gc.complete_sync(target, Ok(7), &m);
        waiter.join().unwrap().unwrap();
        assert_eq!(gc.durable_seq(), 7);
        assert_eq!(m.barriers_offloaded.get(), 1);
        assert_eq!(m.barriers_inline.get(), 0);
    }

    #[test]
    fn blocking_barrier_surfaces_worker_failure() {
        let gc = Arc::new(GroupCommit::new());
        let m = StoreMetrics::new();
        gc.attach_worker();
        let waiter = {
            let gc = Arc::clone(&gc);
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                gc.barrier(1, &m, || -> Result<u64, BlockError> {
                    panic!("offloaded barrier must never lead its own sync")
                })
            })
        };
        let target = gc.next_sync_request().unwrap();
        gc.complete_sync(target, Err(BlockError::Io("dead".into())), &m);
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, BlockError::Io(_)), "got {err:?}");
    }

    #[test]
    fn shutdown_wakes_the_worker_loop() {
        let gc = Arc::new(GroupCommit::new());
        gc.attach_worker();
        let worker = {
            let gc = Arc::clone(&gc);
            std::thread::spawn(move || gc.next_sync_request())
        };
        // Give the worker a moment to park, then shut it down.
        std::thread::sleep(std::time::Duration::from_millis(10));
        gc.shutdown_worker();
        assert_eq!(worker.join().unwrap(), None);
        assert!(!gc.offloaded());
    }
}
