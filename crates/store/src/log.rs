//! On-disk format: superblock and intent-log records.
//!
//! ```text
//! byte 0                512              1024     4096
//! ┌──────────────────────┬────────────────┬─┄┄─┬──────────────┬──────────────┄┄
//! │ superblock slot A    │ superblock B   │rsvd│  intent log  │  data region
//! └──────────────────────┴────────────────┴─┄┄─┴──────────────┴──────────────┄┄
//!                                               ◄─ log_bytes ─► ◄─ blocks·bs ─►
//! ```
//!
//! The two superblock slots alternate by epoch parity so a torn
//! superblock write can never destroy the last good one: a checkpoint
//! writes epoch `e+1` into slot `(e+1) % 2` while slot `e % 2` still
//! holds epoch `e`. On open, the valid slot with the larger epoch wins.
//!
//! Log records are appended with strictly consecutive sequence numbers
//! and carry the full payload (data journaling), so replay is
//! idempotent: applying a record twice writes the same bytes twice. A
//! record is only trusted if its magic, epoch, *expected* sequence
//! number, geometry-bounded payload length and CRC all check out —
//! anything else is the end of the durable prefix (a torn tail or
//! residue of a previous epoch).

use crate::crc32::{crc32, crc32_update};

/// Superblock magic: "OAFSTORE".
pub const SB_MAGIC: u64 = 0x4F41_4653_544F_5245;
/// On-disk format version.
pub const SB_VERSION: u32 = 1;
/// Byte size of one superblock slot.
pub const SB_SLOT_LEN: usize = 512;
/// Offset of the fixed-position log region.
pub const LOG_OFFSET: u64 = 4096;
/// Serialized superblock length (the rest of the slot is zero).
pub const SB_WIRE_LEN: usize = 52;

/// Log-record magic: "LGRC".
pub const REC_MAGIC: u32 = 0x4C47_5243;
/// Serialized record header length (payload follows, then a CRC32 word).
pub const REC_HDR_LEN: usize = 40;
/// Full serialized length of a record with `payload_len` payload bytes.
pub const fn rec_len(payload_len: usize) -> usize {
    REC_HDR_LEN + payload_len + 4
}

/// The store's durable root: geometry plus the log epoch/sequence
/// watermark as of the last checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Block size in bytes.
    pub block_size: u32,
    /// Capacity in blocks.
    pub capacity_blocks: u64,
    /// Byte size of the intent-log region.
    pub log_bytes: u64,
    /// Checkpoint epoch; only log records stamped with this epoch are
    /// live. Bumped by every checkpoint.
    pub epoch: u64,
    /// Sequence number the first live log record must carry.
    pub next_seq: u64,
}

impl Superblock {
    /// Offset of the slot this superblock (by epoch parity) lands in.
    pub fn slot_offset(epoch: u64) -> u64 {
        (epoch % 2) * SB_SLOT_LEN as u64
    }

    /// Offset of the data region for this geometry.
    pub fn data_offset(&self) -> u64 {
        LOG_OFFSET + self.log_bytes
    }

    /// Total file length for this geometry.
    pub fn file_len(&self) -> u64 {
        self.data_offset() + self.capacity_blocks * u64::from(self.block_size)
    }

    /// Serializes into a zero-padded superblock slot.
    pub fn encode(&self) -> [u8; SB_SLOT_LEN] {
        let mut out = [0u8; SB_SLOT_LEN];
        out[0..8].copy_from_slice(&SB_MAGIC.to_le_bytes());
        out[8..12].copy_from_slice(&SB_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.block_size.to_le_bytes());
        out[16..24].copy_from_slice(&self.capacity_blocks.to_le_bytes());
        out[24..32].copy_from_slice(&self.log_bytes.to_le_bytes());
        out[32..40].copy_from_slice(&self.epoch.to_le_bytes());
        // next_seq is folded into the CRC'd prefix length below.
        out[40..48].copy_from_slice(&self.next_seq.to_le_bytes());
        let crc = crc32(&out[0..48]);
        out[48..52].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes one slot; `None` if magic, version or CRC disagree.
    pub fn decode(raw: &[u8]) -> Option<Superblock> {
        if raw.len() < 52 {
            return None;
        }
        let word = |r: std::ops::Range<usize>| u64::from_le_bytes(raw[r].try_into().unwrap());
        if word(0..8) != SB_MAGIC {
            return None;
        }
        if u32::from_le_bytes(raw[8..12].try_into().unwrap()) != SB_VERSION {
            return None;
        }
        let crc = u32::from_le_bytes(raw[48..52].try_into().unwrap());
        if crc32(&raw[0..48]) != crc {
            return None;
        }
        Some(Superblock {
            block_size: u32::from_le_bytes(raw[12..16].try_into().unwrap()),
            capacity_blocks: word(16..24),
            log_bytes: word(24..32),
            epoch: word(32..40),
            next_seq: word(40..48),
        })
    }
}

/// What a log record instructs replay to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// Write the carried payload at `lba`.
    Write = 1,
    /// Deallocate (zero) the range.
    Trim = 2,
    /// Durability barrier (no data effect; recorded so the log mirrors
    /// the command stream).
    Flush = 3,
    /// Zero the range (Write Zeroes — distinct from Trim only in
    /// intent/telemetry).
    Zeroes = 4,
}

impl RecordKind {
    fn from_u8(v: u8) -> Option<RecordKind> {
        Some(match v {
            1 => RecordKind::Write,
            2 => RecordKind::Trim,
            3 => RecordKind::Flush,
            4 => RecordKind::Zeroes,
            _ => return None,
        })
    }
}

/// Record flag: the originating write carried FUA.
pub const REC_FLAG_FUA: u8 = 0x01;

/// A decoded intent-log record (header view; the payload stays in the
/// caller's buffer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordHeader {
    /// Monotonic sequence number (consecutive within an epoch).
    pub seq: u64,
    /// Epoch the record belongs to.
    pub epoch: u64,
    /// Operation.
    pub kind: RecordKind,
    /// [`REC_FLAG_FUA`] et al.
    pub flags: u8,
    /// First LBA of the affected range.
    pub lba: u64,
    /// Block count of the affected range.
    pub nlb: u32,
    /// Payload bytes following the header ([`RecordKind::Write`] only).
    pub payload_len: u32,
}

impl RecordHeader {
    /// Serializes the header into a stack buffer. The caller writes
    /// `hdr ‖ payload ‖ crc_trailer` — see [`record_crc`].
    pub fn encode(&self) -> [u8; REC_HDR_LEN] {
        let mut out = [0u8; REC_HDR_LEN];
        out[0..4].copy_from_slice(&REC_MAGIC.to_le_bytes());
        out[4..12].copy_from_slice(&self.seq.to_le_bytes());
        out[12..20].copy_from_slice(&self.epoch.to_le_bytes());
        out[20] = self.kind as u8;
        out[21] = self.flags;
        // out[22..24] reserved
        out[24..32].copy_from_slice(&self.lba.to_le_bytes());
        out[32..36].copy_from_slice(&self.nlb.to_le_bytes());
        out[36..40].copy_from_slice(&self.payload_len.to_le_bytes());
        out
    }

    /// Deserializes a header; `None` on bad magic or unknown kind (the
    /// caller still has to validate epoch, sequence and CRC).
    pub fn decode(raw: &[u8]) -> Option<RecordHeader> {
        if raw.len() < REC_HDR_LEN {
            return None;
        }
        if u32::from_le_bytes(raw[0..4].try_into().unwrap()) != REC_MAGIC {
            return None;
        }
        Some(RecordHeader {
            seq: u64::from_le_bytes(raw[4..12].try_into().unwrap()),
            epoch: u64::from_le_bytes(raw[12..20].try_into().unwrap()),
            kind: RecordKind::from_u8(raw[20])?,
            flags: raw[21],
            lba: u64::from_le_bytes(raw[24..32].try_into().unwrap()),
            nlb: u32::from_le_bytes(raw[32..36].try_into().unwrap()),
            payload_len: u32::from_le_bytes(raw[36..40].try_into().unwrap()),
        })
    }
}

/// CRC32 over `hdr ‖ payload` — the record trailer.
pub fn record_crc(hdr: &[u8; REC_HDR_LEN], payload: &[u8]) -> u32 {
    let mut c = crc32_update(0xFFFF_FFFF, hdr);
    c = crc32_update(c, payload);
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip_and_corruption() {
        let sb = Superblock {
            block_size: 4096,
            capacity_blocks: 1024,
            log_bytes: 1 << 20,
            epoch: 7,
            next_seq: 991,
        };
        let mut raw = sb.encode();
        assert_eq!(Superblock::decode(&raw), Some(sb));
        raw[17] ^= 1;
        assert_eq!(Superblock::decode(&raw), None, "CRC must catch bit flips");
        assert_eq!(Superblock::decode(&[0u8; SB_SLOT_LEN]), None);
        assert_eq!(Superblock::slot_offset(7), 512);
        assert_eq!(Superblock::slot_offset(8), 0);
        assert_eq!(sb.data_offset(), 4096 + (1 << 20));
        assert_eq!(sb.file_len(), 4096 + (1 << 20) + 1024 * 4096);
    }

    #[test]
    fn record_header_roundtrip() {
        let h = RecordHeader {
            seq: 42,
            epoch: 3,
            kind: RecordKind::Write,
            flags: REC_FLAG_FUA,
            lba: 17,
            nlb: 4,
            payload_len: 16384,
        };
        let raw = h.encode();
        assert_eq!(RecordHeader::decode(&raw), Some(h));
        let payload = vec![0x5au8; 64];
        let crc = record_crc(&raw, &payload);
        assert_ne!(crc, record_crc(&raw, &payload[..63]));
        // Unknown kind byte rejected.
        let mut bad = raw;
        bad[20] = 9;
        assert_eq!(RecordHeader::decode(&bad), None);
    }
}
