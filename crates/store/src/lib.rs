//! # oaf-store — durable log-structured file-backed block device
//!
//! The persistence layer behind the NVMe-oAF target: a
//! [`FileDisk`]/[`SharedFileDisk`] pair that slots in behind a
//! `Namespace` anywhere `RamDisk`/`SharedRamDisk` does, but survives
//! process death.
//!
//! * **Data journaling.** Every mutation (write, TRIM, Write Zeroes,
//!   flush) is appended to an intent log with a CRC32 trailer and a
//!   strictly consecutive sequence number, then applied in place.
//! * **Crash-consistent recovery.** [`FileDisk::open`] replays the live
//!   log prefix idempotently; a torn tail record fails its CRC or
//!   sequence check and is truncated, never applied.
//! * **Real durability.** Flush and FUA map to `fdatasync`; nothing is
//!   acknowledged as durable that a kill `-9` can lose.
//! * **Checkpoints.** When the log fills, it is folded into the data
//!   region under a dual-slot superblock protocol that tolerates a torn
//!   superblock write.
//!
//! * **Group commit.** Concurrent durability barriers from multi-queue
//!   views coalesce into one `fdatasync` per batch window via a ticket
//!   protocol ([`commit::GroupCommit`]).
//! * **Async durability pipeline.** With a sync worker attached
//!   ([`SharedFileDisk::with_sync_worker`]), barriers are *submitted*
//!   as tickets ([`commit::SyncHandle`]) and resolved by a lock-free
//!   poll — the `fdatasync` runs on the worker with the disk lock
//!   released, so reads and journaled writes flow at full rate while a
//!   sync is in flight.
//! * **Block cache.** A fixed-capacity segmented-LRU write-back cache
//!   ([`cache::BlockCache`]) serves read hits with zero syscalls and
//!   defers in-place applies; dirty entries are pinned to journal
//!   sequences so eviction order can never outrun the log. An optional
//!   controller ([`FileDisk::with_adaptive_cache`]) resizes capacity
//!   between configured bounds from hit-rate/eviction telemetry.
//!
//! Crash testing injects [`vfs::CrashVfs`] underneath the disk: a
//! volatile-cache file model that kills the store at a seeded syscall
//! boundary and hands back only a plausible durable image.

#![warn(missing_docs)]

pub mod cache;
pub mod commit;
pub mod crc32;
pub mod disk;
pub mod log;
pub mod metrics;
pub mod vfs;

pub use cache::BlockCache;
pub use commit::{GroupCommit, SyncHandle, SyncStatus};
pub use disk::{CacheAdaptConfig, FileDisk, SharedFileDisk, DEFAULT_LOG_BYTES};
pub use metrics::StoreMetrics;
