//! The log-structured file-backed block device.
//!
//! ## Write path
//!
//! Every mutation appends an *intent record* to the log (full payload —
//! data journaling), then applies in place to the data region:
//!
//! ```text
//! write(lba, buf, fua):
//!   1. checkpoint if the record would not fit the log
//!   2. append  [hdr ‖ payload ‖ crc]  at log tail      (intent)
//!   3. write payload at data_offset + lba·bs            (apply)
//!   4. if fua: sync                                     (retire durably)
//! ```
//!
//! Nothing is durable until a sync barrier (FUA, Flush, checkpoint), so
//! a crash may keep any subset of steps — recovery makes that safe, not
//! write ordering.
//!
//! ## Recovery invariants
//!
//! On open the log is replayed idempotently from the checkpoint
//! superblock. A record is live iff magic, epoch, *consecutive*
//! sequence number, geometry bounds and CRC all validate; the first
//! record that doesn't is the end of the durable prefix (a torn tail —
//! counted and truncated — or residue of an earlier epoch). Replay
//! rewrites every live record's full payload, so:
//!
//! * a write whose data apply was torn is healed by its log record;
//! * a write whose *log append* was torn is rolled back to the previous
//!   durable prefix — it was never acknowledged as durable, so the
//!   old-or-new outcome is within the device contract;
//! * replaying twice is a no-op (same bytes, same order): the state
//!   after recovery equals the longest durable prefix, always.
//!
//! ## Checkpoint
//!
//! When the log fills: sync everything, bump the epoch, write the
//! superblock into the *alternate* slot, sync again, reset the tail.
//! Records of the old epoch left in the log region fail the epoch check
//! on the next open, so the log is logically empty without being
//! erased.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use oaf_ssd::block::BlockStore;
use oaf_ssd::ram::{check_range, BlockError};

use crate::log::{
    rec_len, RecordHeader, RecordKind, Superblock, LOG_OFFSET, REC_FLAG_FUA, REC_HDR_LEN,
    SB_SLOT_LEN,
};
use crate::metrics::StoreMetrics;
use crate::vfs::{RealVfs, Vfs};

/// Default intent-log size for path-based constructors.
pub const DEFAULT_LOG_BYTES: u64 = 4 << 20;

/// Zero source for allocation-free range punching.
static ZERO_CHUNK: [u8; 4096] = [0u8; 4096];

fn io_err(ctx: &str, e: std::io::Error) -> BlockError {
    BlockError::Io(format!("{ctx}: {e}"))
}

/// A durable, log-structured, file-backed block device. Drop-in behind
/// a `Namespace` wherever `RamDisk` goes; [`FileDisk::into_shared`] is
/// the multi-queue form.
pub struct FileDisk {
    vfs: Box<dyn Vfs>,
    sb: Superblock,
    /// Byte offset of the next append within the log region.
    log_tail: u64,
    /// Sequence number of the next record.
    next_seq: u64,
    /// Bytes written since the last sync barrier (for `flushed_bytes`).
    dirty_bytes: u64,
    metrics: Arc<StoreMetrics>,
}

impl FileDisk {
    /// Creates a fresh store file at `path` (truncating any previous
    /// content) with [`DEFAULT_LOG_BYTES`] of intent log.
    pub fn create(
        path: impl AsRef<Path>,
        block_size: u32,
        blocks: u64,
    ) -> Result<FileDisk, BlockError> {
        let vfs = RealVfs::create(path.as_ref()).map_err(|e| io_err("create", e))?;
        Self::create_on(Box::new(vfs), block_size, blocks, DEFAULT_LOG_BYTES)
    }

    /// Opens an existing store file at `path`, replaying the intent log.
    pub fn open(path: impl AsRef<Path>) -> Result<FileDisk, BlockError> {
        let vfs = RealVfs::open(path.as_ref()).map_err(|e| io_err("open", e))?;
        Self::open_on(Box::new(vfs))
    }

    /// Creates a fresh store on an arbitrary [`Vfs`] (tests inject
    /// [`MemVfs`]/[`CrashVfs`] here).
    ///
    /// [`MemVfs`]: crate::vfs::MemVfs
    /// [`CrashVfs`]: crate::vfs::CrashVfs
    pub fn create_on(
        mut vfs: Box<dyn Vfs>,
        block_size: u32,
        blocks: u64,
        log_bytes: u64,
    ) -> Result<FileDisk, BlockError> {
        assert!(
            block_size > 0 && block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(log_bytes >= 64 * 1024, "intent log must be at least 64 KiB");
        let sb = Superblock {
            block_size,
            capacity_blocks: blocks,
            log_bytes,
            epoch: 0,
            next_seq: 1,
        };
        vfs.set_len(sb.file_len()).map_err(|e| io_err("size", e))?;
        vfs.write_at(Superblock::slot_offset(sb.epoch), &sb.encode())
            .map_err(|e| io_err("superblock", e))?;
        vfs.sync().map_err(|e| io_err("sync", e))?;
        Ok(FileDisk {
            vfs,
            sb,
            log_tail: 0,
            next_seq: 1,
            dirty_bytes: 0,
            metrics: StoreMetrics::new(),
        })
    }

    /// Opens a store on an arbitrary [`Vfs`]: validates the superblock
    /// slots, replays the live log prefix idempotently, truncates any
    /// torn tail, and syncs the recovered state. Never checkpoints —
    /// opening twice replays the identical prefix twice.
    pub fn open_on(vfs: Box<dyn Vfs>) -> Result<FileDisk, BlockError> {
        let mut disk = Self::mount(vfs)?;
        disk.recover()?;
        Ok(disk)
    }

    /// Reads + validates superblocks only (no replay) — recovery's
    /// first half, split out for tests that inspect the scan itself.
    fn mount(vfs: Box<dyn Vfs>) -> Result<FileDisk, BlockError> {
        let mut slot = [0u8; SB_SLOT_LEN];
        let mut best: Option<Superblock> = None;
        for i in 0..2u64 {
            if vfs.read_at(i * SB_SLOT_LEN as u64, &mut slot).is_ok() {
                if let Some(sb) = Superblock::decode(&slot) {
                    if best.map(|b| sb.epoch > b.epoch).unwrap_or(true) {
                        best = Some(sb);
                    }
                }
            }
        }
        let sb = best.ok_or_else(|| BlockError::Io("no valid superblock".into()))?;
        let len = vfs.len().map_err(|e| io_err("len", e))?;
        if len < sb.file_len() {
            return Err(BlockError::Io(format!(
                "file truncated: {len} < {}",
                sb.file_len()
            )));
        }
        Ok(FileDisk {
            vfs,
            next_seq: sb.next_seq,
            sb,
            log_tail: 0,
            dirty_bytes: 0,
            metrics: StoreMetrics::new(),
        })
    }

    /// Scans the log from the checkpoint, replaying every record that
    /// validates and stopping at the first that does not.
    fn recover(&mut self) -> Result<(), BlockError> {
        let mut hdr_raw = [0u8; REC_HDR_LEN];
        let mut payload: Vec<u8> = Vec::new();
        let mut pos: u64 = 0;
        let mut expected_seq = self.sb.next_seq;
        while pos + rec_len(0) as u64 <= self.sb.log_bytes {
            self.vfs
                .read_at(LOG_OFFSET + pos, &mut hdr_raw)
                .map_err(|e| io_err("log read", e))?;
            let Some(hdr) = RecordHeader::decode(&hdr_raw) else {
                break; // residue / zeroes: clean end of the log
            };
            if hdr.epoch != self.sb.epoch || hdr.seq != expected_seq {
                break; // record of a previous epoch: clean end
            }
            // From here the record claims to be ours; anything invalid
            // about it is a torn append.
            if !self.header_sane(&hdr)
                || pos + rec_len(hdr.payload_len as usize) as u64 > self.sb.log_bytes
            {
                self.metrics.torn_records.inc();
                break;
            }
            let plen = hdr.payload_len as usize;
            payload.clear();
            payload.resize(plen, 0);
            self.vfs
                .read_at(LOG_OFFSET + pos + REC_HDR_LEN as u64, &mut payload)
                .map_err(|e| io_err("log read", e))?;
            let mut crc_raw = [0u8; 4];
            self.vfs
                .read_at(LOG_OFFSET + pos + (REC_HDR_LEN + plen) as u64, &mut crc_raw)
                .map_err(|e| io_err("log read", e))?;
            if u32::from_le_bytes(crc_raw) != crate::log::record_crc(&hdr_raw, &payload) {
                self.metrics.torn_records.inc();
                break;
            }
            self.replay(&hdr, &payload)?;
            self.metrics.replay_ops.inc();
            pos += rec_len(plen) as u64;
            expected_seq += 1;
        }
        self.log_tail = pos;
        self.next_seq = expected_seq;
        // The replayed state must itself survive the next crash.
        self.sync_barrier()?;
        Ok(())
    }

    /// Geometry validation for a scanned record header.
    fn header_sane(&self, hdr: &RecordHeader) -> bool {
        let bs = u64::from(self.sb.block_size);
        let in_range = hdr
            .lba
            .checked_add(u64::from(hdr.nlb))
            .map(|end| end <= self.sb.capacity_blocks)
            .unwrap_or(false);
        match hdr.kind {
            RecordKind::Write => {
                hdr.nlb > 0 && in_range && u64::from(hdr.payload_len) == u64::from(hdr.nlb) * bs
            }
            RecordKind::Trim | RecordKind::Zeroes => {
                hdr.nlb > 0 && in_range && hdr.payload_len == 0
            }
            RecordKind::Flush => hdr.nlb == 0 && hdr.payload_len == 0,
        }
    }

    /// Applies one recovered record to the data region.
    fn replay(&mut self, hdr: &RecordHeader, payload: &[u8]) -> Result<(), BlockError> {
        match hdr.kind {
            RecordKind::Write => {
                let off = self.data_off(hdr.lba);
                self.vfs
                    .write_at(off, payload)
                    .map_err(|e| io_err("replay write", e))?;
                self.dirty_bytes += payload.len() as u64;
            }
            RecordKind::Trim | RecordKind::Zeroes => {
                self.punch(hdr.lba, hdr.nlb)?;
            }
            RecordKind::Flush => {}
        }
        Ok(())
    }

    fn data_off(&self, lba: u64) -> u64 {
        self.sb.data_offset() + lba * u64::from(self.sb.block_size)
    }

    /// Zero-fills `count` blocks from the static chunk — no staging
    /// buffer, so TRIM/Write Zeroes stay allocation-free.
    fn punch(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        let mut off = self.data_off(lba);
        let mut left = u64::from(count) * u64::from(self.sb.block_size);
        while left > 0 {
            let n = left.min(ZERO_CHUNK.len() as u64) as usize;
            self.vfs
                .write_at(off, &ZERO_CHUNK[..n])
                .map_err(|e| io_err("punch", e))?;
            off += n as u64;
            left -= n as u64;
        }
        self.dirty_bytes += u64::from(count) * u64::from(self.sb.block_size);
        Ok(())
    }

    /// One durability barrier: `fdatasync` + the flushed-bytes/latency
    /// bookkeeping.
    fn sync_barrier(&mut self) -> Result<(), BlockError> {
        let t0 = Instant::now();
        self.vfs.sync().map_err(|e| io_err("fsync", e))?;
        self.metrics.fsyncs.inc();
        self.metrics.fsync_ns.record_nanos(t0.elapsed());
        self.metrics.flushed_bytes.add(self.dirty_bytes);
        self.dirty_bytes = 0;
        Ok(())
    }

    /// Appends one intent record at the log tail, checkpointing first if
    /// it would not fit. Three positional writes (header, payload, CRC
    /// trailer) — the payload is never copied into a staging buffer.
    fn append_record(
        &mut self,
        kind: RecordKind,
        flags: u8,
        lba: u64,
        nlb: u32,
        payload: &[u8],
    ) -> Result<(), BlockError> {
        let total = rec_len(payload.len()) as u64;
        if total > self.sb.log_bytes {
            return Err(BlockError::Io(format!(
                "I/O of {} bytes cannot be journaled in a {}-byte log",
                payload.len(),
                self.sb.log_bytes
            )));
        }
        if self.log_tail + total > self.sb.log_bytes {
            self.checkpoint()?;
        }
        let hdr = RecordHeader {
            seq: self.next_seq,
            epoch: self.sb.epoch,
            kind,
            flags,
            lba,
            nlb,
            payload_len: payload.len() as u32,
        };
        let hdr_raw = hdr.encode();
        let crc = crate::log::record_crc(&hdr_raw, payload).to_le_bytes();
        let base = LOG_OFFSET + self.log_tail;
        self.vfs
            .write_at(base, &hdr_raw)
            .map_err(|e| io_err("log append", e))?;
        if !payload.is_empty() {
            self.vfs
                .write_at(base + REC_HDR_LEN as u64, payload)
                .map_err(|e| io_err("log append", e))?;
        }
        self.vfs
            .write_at(base + (REC_HDR_LEN + payload.len()) as u64, &crc)
            .map_err(|e| io_err("log append", e))?;
        self.log_tail += total;
        self.next_seq += 1;
        self.dirty_bytes += total;
        self.metrics.log_appends.inc();
        self.metrics.log_bytes.add(total);
        Ok(())
    }

    /// Folds the log into the data region: sync everything, bump the
    /// epoch, persist the superblock into the alternate slot, sync
    /// again, reset the tail. Crash-safe at every step — either the old
    /// epoch (replayable log) or the new one (empty log over synced
    /// data) mounts.
    fn checkpoint(&mut self) -> Result<(), BlockError> {
        self.sync_barrier()?;
        let next = Superblock {
            epoch: self.sb.epoch + 1,
            next_seq: self.next_seq,
            ..self.sb
        };
        self.vfs
            .write_at(Superblock::slot_offset(next.epoch), &next.encode())
            .map_err(|e| io_err("superblock", e))?;
        self.sync_barrier()?;
        self.sb = next;
        self.log_tail = 0;
        self.metrics.checkpoints.inc();
        Ok(())
    }

    /// This store's metric bundle (detached until registered into a
    /// [`oaf_telemetry::Registry`] scope — conventionally `store`).
    pub fn metrics(&self) -> &Arc<StoreMetrics> {
        &self.metrics
    }

    /// Current checkpoint epoch (bumped once per checkpoint).
    pub fn epoch(&self) -> u64 {
        self.sb.epoch
    }

    /// Converts this disk into a [`SharedFileDisk`] over the same file,
    /// for multi-queue access from several reactor threads.
    pub fn into_shared(self) -> SharedFileDisk {
        SharedFileDisk {
            block_size: self.sb.block_size,
            capacity_blocks: self.sb.capacity_blocks,
            metrics: Arc::clone(&self.metrics),
            inner: Arc::new(parking_lot::Mutex::new(self)),
        }
    }

    fn check(&self, lba: u64, count: u32, buf_len: usize) -> Result<(usize, usize), BlockError> {
        check_range(
            self.sb.block_size,
            self.sb.capacity_blocks,
            lba,
            count,
            buf_len,
        )
    }
}

impl BlockStore for FileDisk {
    fn block_size(&self) -> u32 {
        self.sb.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.sb.capacity_blocks
    }

    fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        self.check(lba, count, buf.len())?;
        self.vfs
            .read_at(self.data_off(lba), buf)
            .map_err(|e| io_err("read", e))
    }

    fn write(&mut self, lba: u64, count: u32, buf: &[u8], fua: bool) -> Result<(), BlockError> {
        self.check(lba, count, buf.len())?;
        let flags = if fua { REC_FLAG_FUA } else { 0 };
        self.append_record(RecordKind::Write, flags, lba, count, buf)?;
        self.vfs
            .write_at(self.data_off(lba), buf)
            .map_err(|e| io_err("write", e))?;
        self.dirty_bytes += buf.len() as u64;
        if fua {
            self.sync_barrier()?;
        }
        Ok(())
    }

    fn write_zeroes(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        let expected = count as usize * self.sb.block_size as usize;
        self.check(lba, count, expected)?;
        self.append_record(RecordKind::Zeroes, 0, lba, count, &[])?;
        self.punch(lba, count)
    }

    fn trim(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        let expected = count as usize * self.sb.block_size as usize;
        self.check(lba, count, expected)?;
        self.append_record(RecordKind::Trim, 0, lba, count, &[])?;
        self.punch(lba, count)?;
        self.metrics.trims.inc();
        Ok(())
    }

    fn flush(&mut self) -> Result<(), BlockError> {
        self.append_record(RecordKind::Flush, 0, 0, 0, &[])?;
        self.sync_barrier()
    }
}

/// A [`FileDisk`] shareable across reactor threads — the multi-queue
/// form behind `Controller::share()`.
///
/// The fabric's LBA-exclusivity contract (disjoint ranges per queue,
/// overlapping writes are a protocol violation by the initiators) is the
/// same as [`SharedRamDisk`]'s; on top of it, the intent log is a
/// single append stream, so each operation takes a short internal lock
/// for the journal append + in-place apply. Geometry queries stay
/// lock-free.
///
/// [`SharedRamDisk`]: oaf_ssd::ram::SharedRamDisk
#[derive(Clone)]
pub struct SharedFileDisk {
    block_size: u32,
    capacity_blocks: u64,
    metrics: Arc<StoreMetrics>,
    inner: Arc<parking_lot::Mutex<FileDisk>>,
}

impl SharedFileDisk {
    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// The shared metric bundle (one per underlying file).
    pub fn metrics(&self) -> &Arc<StoreMetrics> {
        &self.metrics
    }

    /// Reads `count` blocks starting at `lba` into `buf`.
    pub fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        self.inner.lock().read(lba, count, buf)
    }

    /// Writes `count` blocks starting at `lba` from `buf`; with `fua`
    /// the write is durable before returning.
    pub fn write(&self, lba: u64, count: u32, buf: &[u8], fua: bool) -> Result<(), BlockError> {
        self.inner.lock().write(lba, count, buf, fua)
    }

    /// Zeroes `count` blocks starting at `lba` (journaled).
    pub fn write_zeroes(&self, lba: u64, count: u32) -> Result<(), BlockError> {
        self.inner.lock().write_zeroes(lba, count)
    }

    /// Deallocates `count` blocks starting at `lba` (journaled).
    pub fn trim(&self, lba: u64, count: u32) -> Result<(), BlockError> {
        self.inner.lock().trim(lba, count)
    }

    /// Durability barrier for every acknowledged write.
    pub fn flush(&self) -> Result<(), BlockError> {
        self.inner.lock().flush()
    }
}

impl BlockStore for SharedFileDisk {
    fn block_size(&self) -> u32 {
        self.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        SharedFileDisk::read(self, lba, count, buf)
    }

    fn write(&mut self, lba: u64, count: u32, buf: &[u8], fua: bool) -> Result<(), BlockError> {
        SharedFileDisk::write(self, lba, count, buf, fua)
    }

    fn write_zeroes(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        SharedFileDisk::write_zeroes(self, lba, count)
    }

    fn trim(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        SharedFileDisk::trim(self, lba, count)
    }

    fn flush(&mut self) -> Result<(), BlockError> {
        SharedFileDisk::flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn mem_disk(log_bytes: u64) -> FileDisk {
        FileDisk::create_on(Box::new(MemVfs::new()), 512, 64, log_bytes).unwrap()
    }

    #[test]
    fn write_read_roundtrip_with_journal() {
        let mut d = mem_disk(64 * 1024);
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        d.write(4, 2, &payload, false).unwrap();
        let mut out = vec![0u8; 1024];
        d.read(4, 2, &mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!(d.metrics().log_appends.get(), 1);
        assert!(d.metrics().log_bytes.get() >= 1024 + 44);
    }

    #[test]
    fn fua_and_flush_hit_the_sync_barrier() {
        let mut d = mem_disk(64 * 1024);
        d.write(0, 1, &[7u8; 512], true).unwrap();
        assert_eq!(d.metrics().fsyncs.get(), 1);
        d.flush().unwrap();
        assert_eq!(d.metrics().fsyncs.get(), 2);
        assert_eq!(d.metrics().fsync_ns.snapshot().count, 2);
        assert!(d.metrics().flushed_bytes.get() >= 512);
    }

    #[test]
    fn trim_reads_back_zero_and_counts() {
        let mut d = mem_disk(64 * 1024);
        d.write(8, 4, &vec![0xffu8; 2048], false).unwrap();
        d.trim(8, 4).unwrap();
        let mut out = vec![0xaau8; 2048];
        d.read(8, 4, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(d.metrics().trims.get(), 1);
    }

    /// Reads the full backing image out of a disk's vfs (MemVfs is
    /// always durable, so this emulates a clean power-off).
    fn image_of(d: &FileDisk) -> Vec<u8> {
        let len = d.vfs.len().unwrap();
        let mut img = vec![0u8; len as usize];
        d.vfs.read_at(0, &mut img).unwrap();
        img
    }

    #[test]
    fn reopen_replays_unflushed_writes() {
        let mut d = FileDisk::create_on(Box::new(MemVfs::new()), 512, 64, 64 * 1024).unwrap();
        d.write(3, 1, &[0x42u8; 512], false).unwrap();
        d.write(5, 1, &[0x43u8; 512], false).unwrap();
        d.trim(3, 1).unwrap();
        let image = image_of(&d);
        let reopened = FileDisk::open_on(Box::new(MemVfs::from_image(image))).unwrap();
        assert_eq!(reopened.metrics().replay_ops.get(), 3);
        let mut out = [0u8; 512];
        reopened.read(5, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x43));
        reopened.read(3, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "trim must replay after write");
    }

    #[test]
    fn checkpoint_rolls_epoch_and_empties_log() {
        // Log fits ~2 records of 512B payload: every other write
        // checkpoints.
        let mut d = mem_disk(64 * 1024);
        let before = d.epoch();
        let payload = vec![1u8; 512];
        // 64 KiB log, 560-byte records → 117 appends fill it.
        for i in 0..240u64 {
            d.write(i % 64, 1, &payload, false).unwrap();
        }
        assert!(d.epoch() > before, "checkpoint must bump the epoch");
        assert!(d.metrics().checkpoints.get() >= 1);
        // Data survives the epoch roll.
        let mut out = [0u8; 512];
        d.read(0, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 1));
    }

    #[test]
    fn oversized_io_rejected_not_wedged() {
        let mut d = mem_disk(64 * 1024);
        let huge = vec![0u8; 64 * 512];
        // 32 KiB payload fits a 64 KiB log; fine.
        d.write(0, 64, &huge, false).unwrap();
        // Bad ranges map to the uniform BlockError geometry checks.
        assert!(matches!(
            d.write(64, 1, &[0u8; 512], false),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.write(0, 1, &[0u8; 100], false),
            Err(BlockError::BadBuffer { .. })
        ));
    }

    #[test]
    fn shared_disk_serves_disjoint_threads() {
        let d = mem_disk(64 * 1024).into_shared();
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let d = d.clone();
                std::thread::spawn(move || {
                    for i in 0..16u64 {
                        let lba = t * 16 + i;
                        d.write(lba, 1, &[(lba % 251) as u8 + 1; 512], false)
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        d.flush().unwrap();
        let mut out = [0u8; 512];
        for lba in 0..64u64 {
            d.read(lba, 1, &mut out).unwrap();
            assert!(
                out.iter().all(|&b| b == (lba % 251) as u8 + 1),
                "lba {lba} lost its write"
            );
        }
        assert_eq!(d.block_size(), 512);
        assert_eq!(d.capacity_blocks(), 64);
    }

    #[test]
    fn real_file_backend_survives_reopen() {
        let path = std::env::temp_dir().join(format!("oaf-store-test-{}", std::process::id()));
        {
            let mut d = FileDisk::create(&path, 512, 32).unwrap();
            d.write(7, 1, &[0x77u8; 512], true).unwrap();
        }
        {
            let d = FileDisk::open(&path).unwrap();
            let mut out = [0u8; 512];
            d.read(7, 1, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == 0x77));
        }
        let _ = std::fs::remove_file(&path);
    }
}
