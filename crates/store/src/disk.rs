//! The log-structured file-backed block device.
//!
//! ## Write path
//!
//! Every mutation appends an *intent record* to the log (full payload —
//! data journaling), then applies in place to the data region:
//!
//! ```text
//! write(lba, buf, fua):
//!   1. checkpoint if the record would not fit the log
//!   2. append  [hdr ‖ payload ‖ crc]  at log tail      (intent)
//!   3. write payload at data_offset + lba·bs            (apply)
//!   4. if fua: sync                                     (retire durably)
//! ```
//!
//! Nothing is durable until a sync barrier (FUA, Flush, checkpoint), so
//! a crash may keep any subset of steps — recovery makes that safe, not
//! write ordering.
//!
//! With a [`BlockCache`] configured ([`FileDisk::with_cache`]), step 3
//! is *deferred*: the payload parks dirty in the cache (pinned to the
//! record's sequence) and reaches the data region on eviction or at the
//! next barrier drain. The journal append in step 2 still happens
//! first, so the deferred apply is indistinguishable from the eager one
//! to recovery. Read hits are served from the cache with zero syscalls.
//!
//! Under [`SharedFileDisk`], FUA/Flush barriers go through a
//! [`GroupCommit`] coordinator: concurrent barriers from many queues
//! coalesce into one `fdatasync` per batch window instead of queueing
//! N syncs behind one lock.
//!
//! ## Recovery invariants
//!
//! On open the log is replayed idempotently from the checkpoint
//! superblock. A record is live iff magic, epoch, *consecutive*
//! sequence number, geometry bounds and CRC all validate; the first
//! record that doesn't is the end of the durable prefix (a torn tail —
//! counted and truncated — or residue of an earlier epoch). Replay
//! rewrites every live record's full payload, so:
//!
//! * a write whose data apply was torn is healed by its log record;
//! * a write whose *log append* was torn is rolled back to the previous
//!   durable prefix — it was never acknowledged as durable, so the
//!   old-or-new outcome is within the device contract;
//! * replaying twice is a no-op (same bytes, same order): the state
//!   after recovery equals the longest durable prefix, always.
//!
//! ## Checkpoint
//!
//! When the log fills: sync everything, bump the epoch, write the
//! superblock into the *alternate* slot, sync again, reset the tail.
//! Records of the old epoch left in the log region fail the epoch check
//! on the next open, so the log is logically empty without being
//! erased.
//!
//! Recovery *ends* with the same epoch roll: after replaying the
//! durable prefix, the tail is sealed by a checkpoint. Without it, a
//! same-length re-append over a truncated torn record could make a
//! stale higher-sequence record consecutive again on a later mount and
//! resurrect it over an acknowledged write; with the roll, every
//! old-epoch byte in the log region is fenced forever.

use std::cell::RefCell;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use oaf_ssd::block::BlockStore;
use oaf_ssd::ram::{check_range, BlockError};

use crate::cache::BlockCache;
use crate::commit::{GroupCommit, SyncHandle, SyncStatus};
use crate::log::{
    rec_len, RecordHeader, RecordKind, Superblock, LOG_OFFSET, REC_FLAG_FUA, REC_HDR_LEN,
    SB_SLOT_LEN,
};
use crate::metrics::StoreMetrics;
use crate::vfs::{RealVfs, Vfs};

/// Default intent-log size for path-based constructors.
pub const DEFAULT_LOG_BYTES: u64 = 4 << 20;

/// Zero source for allocation-free range punching.
static ZERO_CHUNK: [u8; 4096] = [0u8; 4096];

/// Bounds and cadence for the adaptive cache controller
/// ([`FileDisk::with_adaptive_cache`]). The controller re-evaluates
/// once per window of cache lookups: it doubles capacity (up to
/// `max_blocks`) when the window's hit rate falls below 90% under
/// eviction pressure, and halves it (down to `min_blocks`) when the
/// window shows ≥95% hits, zero evictions and at most a quarter of the
/// arena resident.
#[derive(Debug, Clone, Copy)]
pub struct CacheAdaptConfig {
    /// Smallest capacity the controller may shrink to (also the
    /// starting capacity). Must be ≥ 1.
    pub min_blocks: usize,
    /// Largest capacity the controller may grow to.
    pub max_blocks: usize,
    /// Cache lookups (hits + misses) per evaluation window.
    pub window_lookups: u64,
}

impl Default for CacheAdaptConfig {
    fn default() -> Self {
        CacheAdaptConfig {
            min_blocks: 64,
            max_blocks: 4096,
            window_lookups: 512,
        }
    }
}

/// Controller bookkeeping: the config plus counter snapshots taken at
/// the last evaluation, so each window works on deltas.
struct AdaptState {
    cfg: CacheAdaptConfig,
    last_hits: u64,
    last_misses: u64,
    last_evictions: u64,
}

fn io_err(ctx: &str, e: std::io::Error) -> BlockError {
    BlockError::Io(format!("{ctx}: {e}"))
}

/// A durable, log-structured, file-backed block device. Drop-in behind
/// a `Namespace` wherever `RamDisk` goes; [`FileDisk::into_shared`] is
/// the multi-queue form.
pub struct FileDisk {
    vfs: Box<dyn Vfs>,
    sb: Superblock,
    /// Byte offset of the next append within the log region.
    log_tail: u64,
    /// Sequence number of the next record.
    next_seq: u64,
    /// Bytes written since the last sync barrier (for `flushed_bytes`).
    dirty_bytes: u64,
    /// Write-back block cache (capacity 0 = uncached). `RefCell`
    /// because [`BlockStore::read`] takes `&self` but a hit updates
    /// recency; never borrowed across a `vfs` call that could re-enter.
    cache: RefCell<BlockCache>,
    /// Live-block bitmap (one bit per LBA) for space-reclaim
    /// accounting. Rebuilt at mount from data-region content (a block
    /// is live iff nonzero), exact afterwards.
    live: Vec<u64>,
    /// Population count of `live`.
    live_blocks: u64,
    /// Adaptive cache controller state (`None` = fixed capacity).
    adapt: Option<AdaptState>,
    metrics: Arc<StoreMetrics>,
}

impl FileDisk {
    /// Creates a fresh store file at `path` (truncating any previous
    /// content) with [`DEFAULT_LOG_BYTES`] of intent log.
    pub fn create(
        path: impl AsRef<Path>,
        block_size: u32,
        blocks: u64,
    ) -> Result<FileDisk, BlockError> {
        let vfs = RealVfs::create(path.as_ref()).map_err(|e| io_err("create", e))?;
        Self::create_on(Box::new(vfs), block_size, blocks, DEFAULT_LOG_BYTES)
    }

    /// Opens an existing store file at `path`, replaying the intent log.
    pub fn open(path: impl AsRef<Path>) -> Result<FileDisk, BlockError> {
        let vfs = RealVfs::open(path.as_ref()).map_err(|e| io_err("open", e))?;
        Self::open_on(Box::new(vfs))
    }

    /// Creates a fresh store on an arbitrary [`Vfs`] (tests inject
    /// [`MemVfs`]/[`CrashVfs`] here).
    ///
    /// [`MemVfs`]: crate::vfs::MemVfs
    /// [`CrashVfs`]: crate::vfs::CrashVfs
    pub fn create_on(
        mut vfs: Box<dyn Vfs>,
        block_size: u32,
        blocks: u64,
        log_bytes: u64,
    ) -> Result<FileDisk, BlockError> {
        assert!(
            block_size > 0 && block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(log_bytes >= 64 * 1024, "intent log must be at least 64 KiB");
        let sb = Superblock {
            block_size,
            capacity_blocks: blocks,
            log_bytes,
            epoch: 0,
            next_seq: 1,
        };
        vfs.set_len(sb.file_len()).map_err(|e| io_err("size", e))?;
        vfs.write_at(Superblock::slot_offset(sb.epoch), &sb.encode())
            .map_err(|e| io_err("superblock", e))?;
        vfs.sync().map_err(|e| io_err("sync", e))?;
        Ok(FileDisk {
            vfs,
            sb,
            log_tail: 0,
            next_seq: 1,
            dirty_bytes: 0,
            cache: RefCell::new(BlockCache::new(block_size as usize, 0)),
            live: vec![0u64; blocks.div_ceil(64) as usize],
            live_blocks: 0,
            adapt: None,
            metrics: StoreMetrics::new(),
        })
    }

    /// Opens a store on an arbitrary [`Vfs`]: validates the superblock
    /// slots, replays the live log prefix idempotently, truncates any
    /// torn tail, then *seals* the tail with an epoch-rolling
    /// checkpoint so no residue beyond the replayed prefix can ever
    /// validate again. Opening the same image twice (from separate
    /// copies) replays the identical prefix twice.
    pub fn open_on(vfs: Box<dyn Vfs>) -> Result<FileDisk, BlockError> {
        let mut disk = Self::mount(vfs)?;
        disk.recover()?;
        disk.rebuild_live_map()?;
        Ok(disk)
    }

    /// Reads + validates superblocks only (no replay) — recovery's
    /// first half, split out for tests that inspect the scan itself.
    fn mount(vfs: Box<dyn Vfs>) -> Result<FileDisk, BlockError> {
        let mut slot = [0u8; SB_SLOT_LEN];
        let mut best: Option<Superblock> = None;
        for i in 0..2u64 {
            if vfs.read_at(i * SB_SLOT_LEN as u64, &mut slot).is_ok() {
                if let Some(sb) = Superblock::decode(&slot) {
                    if best.map(|b| sb.epoch > b.epoch).unwrap_or(true) {
                        best = Some(sb);
                    }
                }
            }
        }
        let sb = best.ok_or_else(|| BlockError::Io("no valid superblock".into()))?;
        let len = vfs.len().map_err(|e| io_err("len", e))?;
        if len < sb.file_len() {
            return Err(BlockError::Io(format!(
                "file truncated: {len} < {}",
                sb.file_len()
            )));
        }
        Ok(FileDisk {
            vfs,
            next_seq: sb.next_seq,
            log_tail: 0,
            dirty_bytes: 0,
            cache: RefCell::new(BlockCache::new(sb.block_size as usize, 0)),
            live: vec![0u64; sb.capacity_blocks.div_ceil(64) as usize],
            live_blocks: 0,
            adapt: None,
            sb,
            metrics: StoreMetrics::new(),
        })
    }

    /// Scans the log from the checkpoint, replaying every record that
    /// validates and stopping at the first that does not.
    fn recover(&mut self) -> Result<(), BlockError> {
        let mut hdr_raw = [0u8; REC_HDR_LEN];
        let mut payload: Vec<u8> = Vec::new();
        let mut pos: u64 = 0;
        let mut expected_seq = self.sb.next_seq;
        while pos + rec_len(0) as u64 <= self.sb.log_bytes {
            self.vfs
                .read_at(LOG_OFFSET + pos, &mut hdr_raw)
                .map_err(|e| io_err("log read", e))?;
            let Some(hdr) = RecordHeader::decode(&hdr_raw) else {
                break; // residue / zeroes: clean end of the log
            };
            if hdr.epoch != self.sb.epoch || hdr.seq != expected_seq {
                break; // record of a previous epoch: clean end
            }
            // From here the record claims to be ours; anything invalid
            // about it is a torn append.
            if !self.header_sane(&hdr)
                || pos + rec_len(hdr.payload_len as usize) as u64 > self.sb.log_bytes
            {
                self.metrics.torn_records.inc();
                break;
            }
            let plen = hdr.payload_len as usize;
            payload.clear();
            payload.resize(plen, 0);
            self.vfs
                .read_at(LOG_OFFSET + pos + REC_HDR_LEN as u64, &mut payload)
                .map_err(|e| io_err("log read", e))?;
            let mut crc_raw = [0u8; 4];
            self.vfs
                .read_at(LOG_OFFSET + pos + (REC_HDR_LEN + plen) as u64, &mut crc_raw)
                .map_err(|e| io_err("log read", e))?;
            if u32::from_le_bytes(crc_raw) != crate::log::record_crc(&hdr_raw, &payload) {
                self.metrics.torn_records.inc();
                break;
            }
            self.replay(&hdr, &payload)?;
            self.metrics.replay_ops.inc();
            pos += rec_len(plen) as u64;
            expected_seq += 1;
        }
        self.log_tail = pos;
        self.next_seq = expected_seq;
        // Seal the tail with an epoch roll (not just a sync). A bare
        // sync would leave truncated-tail bytes addressable: a later
        // same-length re-append over a torn record can make a stale
        // higher-seq record consecutive again and resurrect it over an
        // acknowledged write (see tests/resurrection_repro.rs). The
        // roll fences every old-epoch byte and makes the replayed
        // state durable in the same stroke.
        self.checkpoint()?;
        Ok(())
    }

    /// Geometry validation for a scanned record header.
    fn header_sane(&self, hdr: &RecordHeader) -> bool {
        let bs = u64::from(self.sb.block_size);
        let in_range = hdr
            .lba
            .checked_add(u64::from(hdr.nlb))
            .map(|end| end <= self.sb.capacity_blocks)
            .unwrap_or(false);
        match hdr.kind {
            RecordKind::Write => {
                hdr.nlb > 0 && in_range && u64::from(hdr.payload_len) == u64::from(hdr.nlb) * bs
            }
            RecordKind::Trim | RecordKind::Zeroes => {
                hdr.nlb > 0 && in_range && hdr.payload_len == 0
            }
            RecordKind::Flush => hdr.nlb == 0 && hdr.payload_len == 0,
        }
    }

    /// Applies one recovered record to the data region.
    fn replay(&mut self, hdr: &RecordHeader, payload: &[u8]) -> Result<(), BlockError> {
        match hdr.kind {
            RecordKind::Write => {
                let off = self.data_off(hdr.lba);
                self.vfs
                    .write_at(off, payload)
                    .map_err(|e| io_err("replay write", e))?;
                self.dirty_bytes += payload.len() as u64;
            }
            RecordKind::Trim | RecordKind::Zeroes => {
                self.punch(hdr.lba, hdr.nlb)?;
            }
            RecordKind::Flush => {}
        }
        Ok(())
    }

    fn data_off(&self, lba: u64) -> u64 {
        self.sb.data_offset() + lba * u64::from(self.sb.block_size)
    }

    /// Zero-fills `count` blocks from the static chunk — no staging
    /// buffer, so TRIM/Write Zeroes stay allocation-free.
    fn punch(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        let mut off = self.data_off(lba);
        let mut left = u64::from(count) * u64::from(self.sb.block_size);
        while left > 0 {
            let n = left.min(ZERO_CHUNK.len() as u64) as usize;
            self.vfs
                .write_at(off, &ZERO_CHUNK[..n])
                .map_err(|e| io_err("punch", e))?;
            off += n as u64;
            left -= n as u64;
        }
        self.dirty_bytes += u64::from(count) * u64::from(self.sb.block_size);
        Ok(())
    }

    /// Marks `count` blocks from `lba` live and refreshes the gauge.
    fn live_set_range(&mut self, lba: u64, count: u32) {
        for b in lba..lba + u64::from(count) {
            let (w, m) = ((b / 64) as usize, 1u64 << (b % 64));
            if self.live[w] & m == 0 {
                self.live[w] |= m;
                self.live_blocks += 1;
            }
        }
        self.metrics
            .live_bytes
            .set((self.live_blocks * u64::from(self.sb.block_size)) as i64);
    }

    /// Clears `count` blocks from `lba`; returns how many were live.
    fn live_clear_range(&mut self, lba: u64, count: u32) -> u64 {
        let mut freed = 0u64;
        for b in lba..lba + u64::from(count) {
            let (w, m) = ((b / 64) as usize, 1u64 << (b % 64));
            if self.live[w] & m != 0 {
                self.live[w] &= !m;
                self.live_blocks -= 1;
                freed += 1;
            }
        }
        self.metrics
            .live_bytes
            .set((self.live_blocks * u64::from(self.sb.block_size)) as i64);
        freed
    }

    /// Rebuilds the live-block bitmap from data-region content after
    /// recovery: a block is live iff it holds any nonzero byte. (A
    /// deliberately written all-zero block therefore scans as dead at
    /// mount — the bitmap is a space-accounting heuristic there, exact
    /// for everything written or punched after.)
    fn rebuild_live_map(&mut self) -> Result<(), BlockError> {
        self.live.iter_mut().for_each(|w| *w = 0);
        self.live_blocks = 0;
        let bs = self.sb.block_size as usize;
        let chunk_blocks = ((1usize << 20) / bs).max(1) as u64;
        let mut buf = vec![0u8; chunk_blocks as usize * bs];
        let mut lba = 0u64;
        while lba < self.sb.capacity_blocks {
            let n = chunk_blocks.min(self.sb.capacity_blocks - lba);
            let slice = &mut buf[..n as usize * bs];
            self.vfs
                .read_at(self.data_off(lba), slice)
                .map_err(|e| io_err("live scan", e))?;
            for b in 0..n as usize {
                if slice[b * bs..(b + 1) * bs].iter().any(|&x| x != 0) {
                    let abs = lba + b as u64;
                    self.live[(abs / 64) as usize] |= 1u64 << (abs % 64);
                    self.live_blocks += 1;
                }
            }
            lba += n;
        }
        self.metrics
            .live_bytes
            .set((self.live_blocks * u64::from(self.sb.block_size)) as i64);
        Ok(())
    }

    /// Writes every dirty cache entry back to the data region. The
    /// checkpoint-drain invariant lives here: this runs before any sync
    /// that retires a barrier and before any epoch roll, so a journaled
    /// payload can never exist only in cache once its log is folded.
    fn writeback_all(&mut self) -> Result<(), BlockError> {
        if self.cache.get_mut().dirty_blocks() == 0 {
            return Ok(());
        }
        let FileDisk {
            vfs,
            sb,
            cache,
            dirty_bytes,
            metrics,
            ..
        } = self;
        let data_offset = sb.data_offset();
        let bs = u64::from(sb.block_size);
        let written = cache.get_mut().drain_dirty(&mut |wlba, data| {
            vfs.write_at(data_offset + wlba * bs, data)
                .map_err(|e| io_err("writeback", e))?;
            *dirty_bytes += data.len() as u64;
            Ok(())
        })?;
        metrics.cache_writebacks.add(written);
        metrics.cache_dirty.set(0);
        Ok(())
    }

    /// Drain the cache and take one durability barrier; returns the
    /// highest record sequence the barrier covered. This is the `sync`
    /// closure [`GroupCommit`] leaders run (under the disk lock, so no
    /// append can slip between the covered-sequence read and the
    /// fsync).
    pub(crate) fn seal(&mut self) -> Result<u64, BlockError> {
        self.writeback_all()?;
        self.sync_barrier()?;
        Ok(self.next_seq - 1)
    }

    /// Phase 1 of an *offloaded* barrier, run by the sync worker under
    /// the disk lock: drain the cache and pin the covered watermark,
    /// but do **not** sync — the worker issues the `fdatasync` through
    /// its own vfs handle after releasing this lock, so reads and
    /// journaled writes keep flowing for the barrier's whole duration.
    /// Returns `(covered_seq, dirty_bytes_taken)`; the worker accounts
    /// the bytes to `flushed_bytes` once the sync lands.
    pub(crate) fn prepare_offload_sync(&mut self) -> Result<(u64, u64), BlockError> {
        self.writeback_all()?;
        let dirty = std::mem::take(&mut self.dirty_bytes);
        Ok((self.next_seq - 1, dirty))
    }

    /// One durability barrier: `fdatasync` + the flushed-bytes/latency
    /// bookkeeping.
    fn sync_barrier(&mut self) -> Result<(), BlockError> {
        let t0 = Instant::now();
        self.vfs.sync().map_err(|e| io_err("fsync", e))?;
        self.metrics.fsyncs.inc();
        self.metrics.fsync_ns.record_nanos(t0.elapsed());
        self.metrics.flushed_bytes.add(self.dirty_bytes);
        self.dirty_bytes = 0;
        Ok(())
    }

    /// Appends one intent record at the log tail, checkpointing first if
    /// it would not fit. Three positional writes (header, payload, CRC
    /// trailer) — the payload is never copied into a staging buffer.
    fn append_record(
        &mut self,
        kind: RecordKind,
        flags: u8,
        lba: u64,
        nlb: u32,
        payload: &[u8],
    ) -> Result<(), BlockError> {
        let total = rec_len(payload.len()) as u64;
        if total > self.sb.log_bytes {
            return Err(BlockError::Io(format!(
                "I/O of {} bytes cannot be journaled in a {}-byte log",
                payload.len(),
                self.sb.log_bytes
            )));
        }
        if self.log_tail + total > self.sb.log_bytes {
            self.checkpoint()?;
        }
        let hdr = RecordHeader {
            seq: self.next_seq,
            epoch: self.sb.epoch,
            kind,
            flags,
            lba,
            nlb,
            payload_len: payload.len() as u32,
        };
        let hdr_raw = hdr.encode();
        let crc = crate::log::record_crc(&hdr_raw, payload).to_le_bytes();
        let base = LOG_OFFSET + self.log_tail;
        self.vfs
            .write_at(base, &hdr_raw)
            .map_err(|e| io_err("log append", e))?;
        if !payload.is_empty() {
            self.vfs
                .write_at(base + REC_HDR_LEN as u64, payload)
                .map_err(|e| io_err("log append", e))?;
        }
        self.vfs
            .write_at(base + (REC_HDR_LEN + payload.len()) as u64, &crc)
            .map_err(|e| io_err("log append", e))?;
        self.log_tail += total;
        self.next_seq += 1;
        self.dirty_bytes += total;
        self.metrics.log_appends.inc();
        self.metrics.log_bytes.add(total);
        Ok(())
    }

    /// Folds the log into the data region: sync everything, bump the
    /// epoch, persist the superblock into the alternate slot, sync
    /// again, reset the tail. Crash-safe at every step — either the old
    /// epoch (replayable log) or the new one (empty log over synced
    /// data) mounts.
    fn checkpoint(&mut self) -> Result<(), BlockError> {
        // Dirty cache entries hold journaled-but-unapplied payloads;
        // they must reach the data region before the log folds away
        // beneath them.
        self.writeback_all()?;
        self.sync_barrier()?;
        let next = Superblock {
            epoch: self.sb.epoch + 1,
            next_seq: self.next_seq,
            ..self.sb
        };
        self.vfs
            .write_at(Superblock::slot_offset(next.epoch), &next.encode())
            .map_err(|e| io_err("superblock", e))?;
        self.sync_barrier()?;
        self.sb = next;
        self.log_tail = 0;
        self.metrics.checkpoints.inc();
        Ok(())
    }

    /// Replaces the block cache with one of `blocks` entries (0
    /// disables caching). Any dirty entries in the outgoing cache are
    /// written back first, so this is safe at any point, though it is
    /// meant for configuration right after `create`/`open`.
    pub fn with_cache(mut self, blocks: usize) -> Result<FileDisk, BlockError> {
        self.writeback_all()?;
        self.cache = RefCell::new(BlockCache::new(self.sb.block_size as usize, blocks));
        self.adapt = None;
        self.metrics.cache_capacity.set(blocks as i64);
        Ok(self)
    }

    /// Enables the adaptive cache controller: the cache starts at
    /// `cfg.min_blocks` and is resized between the configured bounds
    /// once per lookup window, from the hit-rate and eviction-pressure
    /// telemetry (see [`CacheAdaptConfig`]). Evaluation happens on the
    /// mutation path, so a read-only phase is assessed at its next
    /// write.
    pub fn with_adaptive_cache(self, cfg: CacheAdaptConfig) -> Result<FileDisk, BlockError> {
        assert!(cfg.min_blocks >= 1, "adaptive cache needs min_blocks >= 1");
        assert!(
            cfg.min_blocks <= cfg.max_blocks,
            "adaptive cache bounds inverted"
        );
        assert!(cfg.window_lookups >= 1, "empty adaptation window");
        let mut disk = self.with_cache(cfg.min_blocks)?;
        disk.adapt = Some(AdaptState {
            cfg,
            last_hits: disk.metrics.cache_hits.get(),
            last_misses: disk.metrics.cache_misses.get(),
            last_evictions: disk.metrics.cache_evictions.get(),
        });
        Ok(disk)
    }

    /// One controller tick: no-op until a full lookup window has
    /// elapsed, then grow/shrink per the [`CacheAdaptConfig`] policy.
    fn maybe_adapt_cache(&mut self) -> Result<(), BlockError> {
        let Some(st) = self.adapt.as_ref() else {
            return Ok(());
        };
        let hits = self.metrics.cache_hits.get();
        let misses = self.metrics.cache_misses.get();
        let evictions = self.metrics.cache_evictions.get();
        let d_hits = hits - st.last_hits;
        let d_lookups = d_hits + (misses - st.last_misses);
        if d_lookups < st.cfg.window_lookups {
            return Ok(());
        }
        let d_evict = evictions - st.last_evictions;
        let (min, max) = (st.cfg.min_blocks, st.cfg.max_blocks);
        let cap = self.cache.get_mut().capacity();
        let resident = self.cache.get_mut().len();
        let new_cap = if d_hits * 10 < d_lookups * 9 && d_evict > 0 {
            // Misses under eviction pressure: the working set does not
            // fit. Double toward the ceiling.
            (cap * 2).min(max)
        } else if d_hits * 20 >= d_lookups * 19 && d_evict == 0 && resident * 4 <= cap {
            // ≥95% hits with a mostly-idle arena: give memory back.
            (cap / 2).max(min)
        } else {
            cap
        };
        let st = self.adapt.as_mut().expect("checked above");
        st.last_hits = hits;
        st.last_misses = misses;
        st.last_evictions = evictions;
        if new_cap != cap {
            if new_cap > cap {
                self.metrics.cache_grows.inc();
            } else {
                self.metrics.cache_shrinks.inc();
            }
            self.resize_cache(new_cap)?;
        }
        Ok(())
    }

    /// Resizes the cache arena, writing back any dirty entries the
    /// shrink path drops (their intent records are already journaled,
    /// so this is the usual deferred apply).
    fn resize_cache(&mut self, new_cap: usize) -> Result<(), BlockError> {
        let FileDisk {
            vfs,
            sb,
            cache,
            dirty_bytes,
            metrics,
            ..
        } = self;
        let data_offset = sb.data_offset();
        let bs = u64::from(sb.block_size);
        let cache = cache.get_mut();
        cache.resize(new_cap, &mut |wlba, data| {
            vfs.write_at(data_offset + wlba * bs, data)
                .map_err(|e| io_err("writeback", e))?;
            *dirty_bytes += data.len() as u64;
            metrics.cache_writebacks.inc();
            Ok(())
        })?;
        metrics.cache_capacity.set(new_cap as i64);
        metrics.cache_dirty.set(cache.dirty_blocks() as i64);
        Ok(())
    }

    /// Block-cache capacity in entries (0 = uncached).
    pub fn cache_capacity(&self) -> usize {
        self.cache.borrow().capacity()
    }

    /// Bytes of live (written, not deallocated) data.
    pub fn live_data_bytes(&self) -> u64 {
        self.live_blocks * u64::from(self.sb.block_size)
    }

    /// Journal + apply without any sync barrier — even for `fua`, whose
    /// flag is still recorded in the header; the *caller* owns the
    /// barrier (directly via [`Self::seal`], or through
    /// [`GroupCommit::barrier`] for shared disks). Returns the record's
    /// sequence number. With a cache, the apply is deferred: blocks
    /// park dirty, pinned to this sequence.
    pub(crate) fn write_journaled(
        &mut self,
        lba: u64,
        count: u32,
        buf: &[u8],
        fua: bool,
    ) -> Result<u64, BlockError> {
        self.check(lba, count, buf.len())?;
        self.maybe_adapt_cache()?;
        let flags = if fua { REC_FLAG_FUA } else { 0 };
        self.append_record(RecordKind::Write, flags, lba, count, buf)?;
        let seq = self.next_seq - 1;
        self.live_set_range(lba, count);
        if self.cache.get_mut().enabled() {
            let FileDisk {
                vfs,
                sb,
                cache,
                dirty_bytes,
                metrics,
                ..
            } = self;
            let cache = cache.get_mut();
            let data_offset = sb.data_offset();
            let bs = usize::try_from(sb.block_size).unwrap();
            let mut wb = |wlba: u64, data: &[u8]| -> Result<(), BlockError> {
                vfs.write_at(data_offset + wlba * bs as u64, data)
                    .map_err(|e| io_err("writeback", e))?;
                *dirty_bytes += data.len() as u64;
                metrics.cache_writebacks.inc();
                Ok(())
            };
            for b in 0..count as usize {
                let evicted =
                    cache.put_write(lba + b as u64, &buf[b * bs..(b + 1) * bs], seq, &mut wb)?;
                if evicted {
                    metrics.cache_evictions.inc();
                }
            }
            metrics.cache_dirty.set(cache.dirty_blocks() as i64);
        } else {
            self.vfs
                .write_at(self.data_off(lba), buf)
                .map_err(|e| io_err("write", e))?;
            self.dirty_bytes += buf.len() as u64;
        }
        Ok(seq)
    }

    /// Journals a Flush record (no sync); returns its sequence so the
    /// caller can take a group-commit ticket against it.
    pub(crate) fn append_flush_record(&mut self) -> Result<u64, BlockError> {
        self.append_record(RecordKind::Flush, 0, 0, 0, &[])?;
        Ok(self.next_seq - 1)
    }

    /// This store's metric bundle (detached until registered into a
    /// [`oaf_telemetry::Registry`] scope — conventionally `store`).
    pub fn metrics(&self) -> &Arc<StoreMetrics> {
        &self.metrics
    }

    /// Current checkpoint epoch (bumped once per checkpoint).
    pub fn epoch(&self) -> u64 {
        self.sb.epoch
    }

    /// Converts this disk into a [`SharedFileDisk`] over the same file,
    /// for multi-queue access from several reactor threads.
    pub fn into_shared(self) -> SharedFileDisk {
        SharedFileDisk {
            block_size: self.sb.block_size,
            capacity_blocks: self.sb.capacity_blocks,
            metrics: Arc::clone(&self.metrics),
            commit: Arc::new(GroupCommit::new()),
            inner: Arc::new(parking_lot::Mutex::new(self)),
            worker: None,
        }
    }

    fn check(&self, lba: u64, count: u32, buf_len: usize) -> Result<(usize, usize), BlockError> {
        check_range(
            self.sb.block_size,
            self.sb.capacity_blocks,
            lba,
            count,
            buf_len,
        )
    }
}

impl BlockStore for FileDisk {
    fn block_size(&self) -> u32 {
        self.sb.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.sb.capacity_blocks
    }

    fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        self.check(lba, count, buf.len())?;
        let mut cache = self.cache.borrow_mut();
        if !cache.enabled() {
            return self
                .vfs
                .read_at(self.data_off(lba), buf)
                .map_err(|e| io_err("read", e));
        }
        let bs = self.sb.block_size as usize;
        let mut missing = 0u32;
        for b in 0..u64::from(count) {
            if !cache.contains(lba + b) {
                missing += 1;
            }
        }
        if missing > 0 {
            // One ranged syscall fills the whole buffer; cached blocks
            // are overlaid below, since they may be newer (dirty) than
            // the platter.
            self.vfs
                .read_at(self.data_off(lba), buf)
                .map_err(|e| io_err("read", e))?;
            self.metrics.cache_misses.add(u64::from(missing));
        }
        self.metrics.cache_hits.add(u64::from(count - missing));
        for b in 0..count as usize {
            let sub = &mut buf[b * bs..(b + 1) * bs];
            if !cache.get(lba + b as u64, sub) {
                // Miss: `sub` already holds the platter bytes; cache
                // them clean if a clean slot is available (fills never
                // force a dirty write-back on the read path).
                cache.fill_clean(lba + b as u64, sub);
            }
        }
        Ok(())
    }

    fn write(&mut self, lba: u64, count: u32, buf: &[u8], fua: bool) -> Result<(), BlockError> {
        self.write_journaled(lba, count, buf, fua)?;
        if fua {
            self.seal()?;
        }
        Ok(())
    }

    fn write_zeroes(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        let expected = count as usize * self.sb.block_size as usize;
        self.check(lba, count, expected)?;
        self.append_record(RecordKind::Zeroes, 0, lba, count, &[])?;
        // Cached copies — dirty included — are superseded by the record
        // just journaled; drop them without write-back and punch in
        // place.
        self.cache.get_mut().invalidate_range(lba, count);
        let dirty = self.cache.get_mut().dirty_blocks() as i64;
        self.metrics.cache_dirty.set(dirty);
        self.punch(lba, count)?;
        let freed = self.live_clear_range(lba, count);
        self.metrics
            .bytes_reclaimed
            .add(freed * u64::from(self.sb.block_size));
        Ok(())
    }

    fn trim(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        let expected = count as usize * self.sb.block_size as usize;
        self.check(lba, count, expected)?;
        self.append_record(RecordKind::Trim, 0, lba, count, &[])?;
        self.cache.get_mut().invalidate_range(lba, count);
        let dirty = self.cache.get_mut().dirty_blocks() as i64;
        self.metrics.cache_dirty.set(dirty);
        self.punch(lba, count)?;
        let freed = self.live_clear_range(lba, count);
        self.metrics
            .bytes_reclaimed
            .add(freed * u64::from(self.sb.block_size));
        self.metrics.trims.inc();
        Ok(())
    }

    fn flush(&mut self) -> Result<(), BlockError> {
        self.append_flush_record()?;
        self.seal()?;
        Ok(())
    }
}

/// A [`FileDisk`] shareable across reactor threads — the multi-queue
/// form behind `Controller::share()`.
///
/// The fabric's LBA-exclusivity contract (disjoint ranges per queue,
/// overlapping writes are a protocol violation by the initiators) is the
/// same as [`SharedRamDisk`]'s; on top of it, the intent log is a
/// single append stream, so each operation takes a short internal lock
/// for the journal append + (deferred) apply. Geometry queries stay
/// lock-free.
///
/// Durability barriers do **not** simply queue behind that lock: a
/// FUA/Flush releases the disk lock after its journal append, then
/// takes a [`GroupCommit`] ticket for its record's sequence. One
/// elected leader re-acquires the lock, drains the cache and issues a
/// single `fdatasync` covering every sequence appended so far; all
/// concurrently waiting barriers retire on that one sync
/// (`fsyncs_coalesced` counts them).
///
/// [`SharedRamDisk`]: oaf_ssd::ram::SharedRamDisk
#[derive(Clone)]
pub struct SharedFileDisk {
    block_size: u32,
    capacity_blocks: u64,
    metrics: Arc<StoreMetrics>,
    commit: Arc<GroupCommit>,
    inner: Arc<parking_lot::Mutex<FileDisk>>,
    /// Sync worker lifecycle handle; the last clone to drop shuts the
    /// worker down and joins it.
    worker: Option<Arc<SyncWorkerHandle>>,
}

/// Owns the sync worker thread's lifetime. Held behind an `Arc` inside
/// every [`SharedFileDisk`] clone: dropping the final reference asks
/// the worker to exit (waking it if parked) and joins the thread, so a
/// disk never outlives its barrier pipeline.
struct SyncWorkerHandle {
    commit: Arc<GroupCommit>,
    join: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for SyncWorkerHandle {
    fn drop(&mut self) {
        self.commit.shutdown_worker();
        if let Some(join) = self.join.lock().expect("worker join poisoned").take() {
            let _ = join.join();
        }
    }
}

/// The sync worker loop: wait for barrier tickets, drain the cache
/// under the disk lock (phase 1), then run the `fdatasync` through a
/// *dedicated* vfs handle with the disk lock released (phase 2), and
/// publish the outcome. Reads and journaled writes proceed on other
/// threads for the entire syscall; an error fails exactly the round's
/// parked set via [`GroupCommit::complete_sync`].
fn run_sync_worker(
    commit: Arc<GroupCommit>,
    inner: Arc<parking_lot::Mutex<FileDisk>>,
    metrics: Arc<StoreMetrics>,
    mut sync_vfs: Box<dyn Vfs>,
) {
    while let Some(target) = commit.next_sync_request() {
        let res = (|| {
            let (covered, dirty) = inner.lock().prepare_offload_sync()?;
            let t0 = Instant::now();
            sync_vfs.sync().map_err(|e| io_err("fsync", e))?;
            metrics.fsyncs.inc();
            metrics.fsync_ns.record_nanos(t0.elapsed());
            metrics.flushed_bytes.add(dirty);
            Ok(covered)
        })();
        commit.complete_sync(target, res, &metrics);
    }
}

impl SharedFileDisk {
    /// Attaches a dedicated sync worker thread: from here on, every
    /// durability barrier — blocking [`write`](SharedFileDisk::write)/
    /// [`flush`](SharedFileDisk::flush) calls included — is served by
    /// the worker's `fdatasync` instead of one taken on the calling
    /// thread, and the non-blocking
    /// [`write_async`](SharedFileDisk::write_async)/
    /// [`flush_async`](SharedFileDisk::flush_async) paths become
    /// available.
    ///
    /// `sync_vfs` must be a second handle onto the *same backing
    /// storage* whose `sync` makes the disk handle's writes durable —
    /// for a real file, the same path opened again (syncing either fd
    /// flushes the inode); tests pass a clone of a shared vfs. The
    /// worker syncs through this handle so the disk lock is *not* held
    /// across the syscall.
    pub fn with_sync_worker(self, sync_vfs: Box<dyn Vfs>) -> SharedFileDisk {
        assert!(self.worker.is_none(), "sync worker already attached");
        self.commit.attach_worker();
        let commit = Arc::clone(&self.commit);
        let inner = Arc::clone(&self.inner);
        let metrics = Arc::clone(&self.metrics);
        let join = std::thread::Builder::new()
            .name("oaf-sync".into())
            .spawn(move || run_sync_worker(commit, inner, metrics, sync_vfs))
            .expect("spawn sync worker");
        SharedFileDisk {
            worker: Some(Arc::new(SyncWorkerHandle {
                commit: Arc::clone(&self.commit),
                join: std::sync::Mutex::new(Some(join)),
            })),
            ..self
        }
    }

    /// True when barriers are offloaded to a sync worker — the
    /// precondition for the `*_async` submit paths to return tickets.
    pub fn sync_offloaded(&self) -> bool {
        self.commit.offloaded()
    }

    /// Non-blocking poll of a submitted barrier ticket (lock-free).
    #[inline]
    pub fn poll_barrier(&self, handle: SyncHandle) -> SyncStatus {
        self.commit.poll_sync(handle)
    }
    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// The shared metric bundle (one per underlying file).
    pub fn metrics(&self) -> &Arc<StoreMetrics> {
        &self.metrics
    }

    /// The group-commit coordinator shared by every clone (tests
    /// inspect its durable watermark).
    pub fn group_commit(&self) -> &Arc<GroupCommit> {
        &self.commit
    }

    /// Retires a durability barrier for record `seq` through group
    /// commit: coalesces with any in-flight sync that covers it, else
    /// leads one `seal` (cache drain + `fdatasync`) under the disk
    /// lock.
    fn barrier(&self, seq: u64) -> Result<(), BlockError> {
        self.commit
            .barrier(seq, &self.metrics, || self.inner.lock().seal())
    }

    /// Reads `count` blocks starting at `lba` into `buf`.
    pub fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        self.inner.lock().read(lba, count, buf)
    }

    /// Writes `count` blocks starting at `lba` from `buf`; with `fua`
    /// the write is durable before returning (via group commit, so
    /// concurrent FUA writers share one `fdatasync` per batch window).
    pub fn write(&self, lba: u64, count: u32, buf: &[u8], fua: bool) -> Result<(), BlockError> {
        let seq = self.inner.lock().write_journaled(lba, count, buf, fua)?;
        if fua {
            self.barrier(seq)?;
        }
        Ok(())
    }

    /// Journals (and applies/caches) a write like
    /// [`write`](SharedFileDisk::write), but when `fua` is set and a
    /// sync worker is attached, the durability barrier is *submitted*
    /// instead of awaited: the returned [`SyncHandle`] parks until
    /// [`poll_barrier`](SharedFileDisk::poll_barrier) reports it
    /// durable (or failed). Without a worker — or without `fua` — this
    /// degenerates to the blocking semantics and returns `None`
    /// already-retired.
    pub fn write_async(
        &self,
        lba: u64,
        count: u32,
        buf: &[u8],
        fua: bool,
    ) -> Result<Option<SyncHandle>, BlockError> {
        let seq = self.inner.lock().write_journaled(lba, count, buf, fua)?;
        if !fua {
            return Ok(None);
        }
        if self.commit.offloaded() {
            Ok(Some(self.commit.submit_sync(seq, &self.metrics)))
        } else {
            self.barrier(seq)?;
            Ok(None)
        }
    }

    /// Journals a Flush and submits its barrier to the sync worker,
    /// returning a parked [`SyncHandle`]; falls back to the blocking
    /// group-commit barrier (returning `None`) when no worker is
    /// attached.
    pub fn flush_async(&self) -> Result<Option<SyncHandle>, BlockError> {
        let seq = self.inner.lock().append_flush_record()?;
        if self.commit.offloaded() {
            Ok(Some(self.commit.submit_sync(seq, &self.metrics)))
        } else {
            self.barrier(seq)?;
            Ok(None)
        }
    }

    /// Zeroes `count` blocks starting at `lba` (journaled).
    pub fn write_zeroes(&self, lba: u64, count: u32) -> Result<(), BlockError> {
        self.inner.lock().write_zeroes(lba, count)
    }

    /// Deallocates `count` blocks starting at `lba` (journaled).
    pub fn trim(&self, lba: u64, count: u32) -> Result<(), BlockError> {
        self.inner.lock().trim(lba, count)
    }

    /// Durability barrier for every acknowledged write (group-commit
    /// coalesced).
    pub fn flush(&self) -> Result<(), BlockError> {
        let seq = self.inner.lock().append_flush_record()?;
        self.barrier(seq)
    }
}

impl BlockStore for SharedFileDisk {
    fn block_size(&self) -> u32 {
        self.block_size
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        SharedFileDisk::read(self, lba, count, buf)
    }

    fn write(&mut self, lba: u64, count: u32, buf: &[u8], fua: bool) -> Result<(), BlockError> {
        SharedFileDisk::write(self, lba, count, buf, fua)
    }

    fn write_zeroes(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        SharedFileDisk::write_zeroes(self, lba, count)
    }

    fn trim(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        SharedFileDisk::trim(self, lba, count)
    }

    fn flush(&mut self) -> Result<(), BlockError> {
        SharedFileDisk::flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn mem_disk(log_bytes: u64) -> FileDisk {
        FileDisk::create_on(Box::new(MemVfs::new()), 512, 64, log_bytes).unwrap()
    }

    #[test]
    fn write_read_roundtrip_with_journal() {
        let mut d = mem_disk(64 * 1024);
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        d.write(4, 2, &payload, false).unwrap();
        let mut out = vec![0u8; 1024];
        d.read(4, 2, &mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!(d.metrics().log_appends.get(), 1);
        assert!(d.metrics().log_bytes.get() >= 1024 + 44);
    }

    #[test]
    fn fua_and_flush_hit_the_sync_barrier() {
        let mut d = mem_disk(64 * 1024);
        d.write(0, 1, &[7u8; 512], true).unwrap();
        assert_eq!(d.metrics().fsyncs.get(), 1);
        d.flush().unwrap();
        assert_eq!(d.metrics().fsyncs.get(), 2);
        assert_eq!(d.metrics().fsync_ns.snapshot().count, 2);
        assert!(d.metrics().flushed_bytes.get() >= 512);
    }

    #[test]
    fn trim_reads_back_zero_and_counts() {
        let mut d = mem_disk(64 * 1024);
        d.write(8, 4, &vec![0xffu8; 2048], false).unwrap();
        d.trim(8, 4).unwrap();
        let mut out = vec![0xaau8; 2048];
        d.read(8, 4, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(d.metrics().trims.get(), 1);
    }

    /// Reads the full backing image out of a disk's vfs (MemVfs is
    /// always durable, so this emulates a clean power-off).
    fn image_of(d: &FileDisk) -> Vec<u8> {
        let len = d.vfs.len().unwrap();
        let mut img = vec![0u8; len as usize];
        d.vfs.read_at(0, &mut img).unwrap();
        img
    }

    #[test]
    fn reopen_replays_unflushed_writes() {
        let mut d = FileDisk::create_on(Box::new(MemVfs::new()), 512, 64, 64 * 1024).unwrap();
        d.write(3, 1, &[0x42u8; 512], false).unwrap();
        d.write(5, 1, &[0x43u8; 512], false).unwrap();
        d.trim(3, 1).unwrap();
        let image = image_of(&d);
        let reopened = FileDisk::open_on(Box::new(MemVfs::from_image(image))).unwrap();
        assert_eq!(reopened.metrics().replay_ops.get(), 3);
        let mut out = [0u8; 512];
        reopened.read(5, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x43));
        reopened.read(3, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "trim must replay after write");
    }

    #[test]
    fn checkpoint_rolls_epoch_and_empties_log() {
        // Log fits ~2 records of 512B payload: every other write
        // checkpoints.
        let mut d = mem_disk(64 * 1024);
        let before = d.epoch();
        let payload = vec![1u8; 512];
        // 64 KiB log, 560-byte records → 117 appends fill it.
        for i in 0..240u64 {
            d.write(i % 64, 1, &payload, false).unwrap();
        }
        assert!(d.epoch() > before, "checkpoint must bump the epoch");
        assert!(d.metrics().checkpoints.get() >= 1);
        // Data survives the epoch roll.
        let mut out = [0u8; 512];
        d.read(0, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 1));
    }

    #[test]
    fn oversized_io_rejected_not_wedged() {
        let mut d = mem_disk(64 * 1024);
        let huge = vec![0u8; 64 * 512];
        // 32 KiB payload fits a 64 KiB log; fine.
        d.write(0, 64, &huge, false).unwrap();
        // Bad ranges map to the uniform BlockError geometry checks.
        assert!(matches!(
            d.write(64, 1, &[0u8; 512], false),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.write(0, 1, &[0u8; 100], false),
            Err(BlockError::BadBuffer { .. })
        ));
    }

    #[test]
    fn shared_disk_serves_disjoint_threads() {
        let d = mem_disk(64 * 1024).into_shared();
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let d = d.clone();
                std::thread::spawn(move || {
                    for i in 0..16u64 {
                        let lba = t * 16 + i;
                        d.write(lba, 1, &[(lba % 251) as u8 + 1; 512], false)
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        d.flush().unwrap();
        let mut out = [0u8; 512];
        for lba in 0..64u64 {
            d.read(lba, 1, &mut out).unwrap();
            assert!(
                out.iter().all(|&b| b == (lba % 251) as u8 + 1),
                "lba {lba} lost its write"
            );
        }
        assert_eq!(d.block_size(), 512);
        assert_eq!(d.capacity_blocks(), 64);
    }

    #[test]
    fn recovery_seals_the_log_tail_with_an_epoch_roll() {
        let mut d = mem_disk(64 * 1024);
        d.write(0, 1, &[0x11u8; 512], false).unwrap();
        let epoch_before = d.epoch();
        let reopened = FileDisk::open_on(Box::new(MemVfs::from_image(image_of(&d)))).unwrap();
        assert!(
            reopened.epoch() > epoch_before,
            "open must checkpoint so old-epoch residue can never validate again"
        );
        let mut out = [0u8; 512];
        reopened.read(0, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x11));
    }

    #[test]
    fn cached_write_read_roundtrip_with_hit_metrics() {
        let mut d = mem_disk(64 * 1024).with_cache(8).unwrap();
        assert_eq!(d.cache_capacity(), 8);
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        d.write(4, 2, &payload, false).unwrap();
        let mut out = vec![0u8; 1024];
        d.read(4, 2, &mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!(
            d.metrics().cache_hits.get(),
            2,
            "write-allocated blocks hit"
        );
        assert_eq!(d.metrics().cache_misses.get(), 0);
        // Uncached range misses, then hits on re-read (clean fill).
        d.read(10, 1, &mut out[..512]).unwrap();
        assert_eq!(d.metrics().cache_misses.get(), 1);
        d.read(10, 1, &mut out[..512]).unwrap();
        assert_eq!(d.metrics().cache_hits.get(), 3);
    }

    #[test]
    fn cached_dirty_blocks_survive_reopen_after_barrier() {
        let mut d = mem_disk(64 * 1024).with_cache(16).unwrap();
        d.write(3, 1, &[0x42u8; 512], false).unwrap();
        d.write(5, 1, &[0x43u8; 512], false).unwrap();
        assert!(d.metrics().cache_dirty.get() > 0, "applies are deferred");
        d.flush().unwrap();
        assert_eq!(d.metrics().cache_dirty.get(), 0, "barrier drains dirty");
        assert!(d.metrics().cache_writebacks.get() >= 2);
        let reopened = FileDisk::open_on(Box::new(MemVfs::from_image(image_of(&d)))).unwrap();
        let mut out = [0u8; 512];
        reopened.read(5, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x43));
    }

    #[test]
    fn cached_single_entry_thrash_keeps_data_correct() {
        let mut d = mem_disk(64 * 1024).with_cache(1).unwrap();
        for lba in 0..32u64 {
            d.write(lba, 1, &[(lba + 1) as u8; 512], false).unwrap();
        }
        let mut out = [0u8; 512];
        for lba in 0..32u64 {
            d.read(lba, 1, &mut out).unwrap();
            assert!(
                out.iter().all(|&b| b == (lba + 1) as u8),
                "lba {lba} wrong through a thrashing 1-entry cache"
            );
        }
        assert!(d.metrics().cache_evictions.get() >= 31);
    }

    #[test]
    fn trim_accounts_reclaimed_and_live_bytes() {
        let mut d = mem_disk(64 * 1024);
        d.write(8, 4, &vec![0xffu8; 2048], false).unwrap();
        assert_eq!(d.live_data_bytes(), 2048);
        assert_eq!(d.metrics().live_bytes.get(), 2048);
        d.trim(8, 2).unwrap();
        assert_eq!(d.metrics().bytes_reclaimed.get(), 1024);
        assert_eq!(d.live_data_bytes(), 1024);
        // Trimming dead blocks reclaims nothing further.
        d.trim(8, 2).unwrap();
        assert_eq!(d.metrics().bytes_reclaimed.get(), 1024);
    }

    #[test]
    fn live_map_rebuilds_from_content_on_open() {
        let mut d = mem_disk(64 * 1024);
        d.write(2, 1, &[0xaau8; 512], false).unwrap();
        d.write(9, 2, &[0xbbu8; 1024], false).unwrap();
        d.trim(9, 1).unwrap();
        let reopened = FileDisk::open_on(Box::new(MemVfs::from_image(image_of(&d)))).unwrap();
        // Live after replay: lba 2 and lba 10 (9 was punched).
        assert_eq!(reopened.live_data_bytes(), 1024);
        assert_eq!(reopened.metrics().live_bytes.get(), 1024);
    }

    #[test]
    fn shared_disk_concurrent_fua_coalesces_syncs() {
        let d = mem_disk(256 * 1024).with_cache(32).unwrap().into_shared();
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let d = d.clone();
                std::thread::spawn(move || {
                    for i in 0..16u64 {
                        let lba = t * 16 + i;
                        d.write(lba, 1, &[(lba % 250) as u8 + 1; 512], true)
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let m = d.metrics();
        let barriers = 64;
        assert_eq!(
            m.fsyncs.get() + m.fsyncs_coalesced.get(),
            barriers,
            "every barrier either led one sync or coalesced into one"
        );
        let mut out = [0u8; 512];
        for lba in 0..64u64 {
            d.read(lba, 1, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == (lba % 250) as u8 + 1));
        }
    }

    use crate::vfs::SharedMemVfs;

    fn poll_until(
        d: &SharedFileDisk,
        h: crate::commit::SyncHandle,
        want: crate::commit::SyncStatus,
    ) {
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let got = d.poll_barrier(h);
            if got == want {
                return;
            }
            assert_eq!(
                got,
                crate::commit::SyncStatus::Pending,
                "ticket resolved to the wrong state"
            );
            assert!(Instant::now() < deadline, "ticket never left Pending");
            std::thread::yield_now();
        }
    }

    #[test]
    fn offloaded_write_async_parks_then_retires() {
        let vfs = SharedMemVfs::new();
        let d = FileDisk::create_on(Box::new(vfs.clone()), 512, 64, 64 * 1024)
            .unwrap()
            .into_shared()
            .with_sync_worker(Box::new(vfs));
        assert!(d.sync_offloaded());
        let h = d
            .write_async(3, 1, &[0x5au8; 512], true)
            .unwrap()
            .expect("fua on an offloaded disk returns a ticket");
        poll_until(&d, h, crate::commit::SyncStatus::Durable);
        // Plain writes never ticket; blocking FUA rides the worker.
        assert!(d.write_async(4, 1, &[1u8; 512], false).unwrap().is_none());
        d.write(5, 1, &[2u8; 512], true).unwrap();
        let h2 = d.flush_async().unwrap().expect("flush tickets too");
        poll_until(&d, h2, crate::commit::SyncStatus::Durable);
        let m = d.metrics();
        assert!(m.barriers_offloaded.get() >= 3);
        assert_eq!(m.barriers_inline.get(), 0, "no barrier ran inline");
        assert!(m.fsyncs.get() >= 1);
        let mut out = [0u8; 512];
        d.read(3, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x5a));
    }

    #[test]
    fn worker_sync_failure_fails_parked_tickets_then_recovers() {
        let vfs = SharedMemVfs::new();
        let d = FileDisk::create_on(Box::new(vfs.clone()), 512, 64, 64 * 1024)
            .unwrap()
            .into_shared()
            .with_sync_worker(Box::new(vfs.clone()));
        vfs.set_fail_sync(true);
        let h = d.write_async(0, 1, &[9u8; 512], true).unwrap().unwrap();
        poll_until(&d, h, crate::commit::SyncStatus::Failed);
        // Blocking path surfaces the same failure as an error…
        assert!(d.write(1, 1, &[8u8; 512], true).is_err());
        // …and once the device heals, new barriers succeed.
        vfs.set_fail_sync(false);
        let h2 = d.write_async(2, 1, &[7u8; 512], true).unwrap().unwrap();
        poll_until(&d, h2, crate::commit::SyncStatus::Durable);
    }

    #[test]
    fn dropping_every_clone_joins_the_worker() {
        let vfs = SharedMemVfs::new();
        let d = FileDisk::create_on(Box::new(vfs.clone()), 512, 64, 64 * 1024)
            .unwrap()
            .into_shared()
            .with_sync_worker(Box::new(vfs));
        let d2 = d.clone();
        d2.write(0, 1, &[1u8; 512], true).unwrap();
        drop(d2);
        drop(d); // must not hang: shutdown wakes the parked worker
    }

    #[test]
    fn adaptive_cache_grows_under_miss_pressure() {
        let mut d = FileDisk::create_on(Box::new(MemVfs::new()), 512, 256, 256 * 1024)
            .unwrap()
            .with_adaptive_cache(CacheAdaptConfig {
                min_blocks: 4,
                max_blocks: 64,
                window_lookups: 64,
            })
            .unwrap();
        assert_eq!(d.cache_capacity(), 4);
        // A working set of 32 blocks over a 4-block cache: each write
        // pass thrashes (evictions), each read pass mostly misses, so
        // the controller must grow until the set fits.
        let payload = [3u8; 512];
        let mut out = [0u8; 512];
        for _pass in 0..24 {
            for lba in 0..32u64 {
                d.write(lba, 1, &payload, false).unwrap();
            }
            for lba in 0..32u64 {
                d.read(lba, 1, &mut out).unwrap();
            }
            if d.cache_capacity() >= 32 {
                break;
            }
        }
        assert!(
            d.cache_capacity() >= 32,
            "controller stuck at {} blocks",
            d.cache_capacity()
        );
        assert!(d.metrics().cache_grows.get() >= 1);
        assert_eq!(d.metrics().cache_capacity.get(), d.cache_capacity() as i64);
        // Correctness across resizes.
        for lba in 0..32u64 {
            d.read(lba, 1, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == 3));
        }
    }

    #[test]
    fn real_file_backend_survives_reopen() {
        let path = std::env::temp_dir().join(format!("oaf-store-test-{}", std::process::id()));
        {
            let mut d = FileDisk::create(&path, 512, 32).unwrap();
            d.write(7, 1, &[0x77u8; 512], true).unwrap();
        }
        {
            let d = FileDisk::open(&path).unwrap();
            let mut out = [0u8; 512];
            d.read(7, 1, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == 0x77));
        }
        let _ = std::fs::remove_file(&path);
    }
}
