//! Chaos wrapper over a [`PayloadChannel`].
//!
//! Injects the shared-memory failure modes the degradation machinery
//! must survive: publish/alloc failures (a wedged or exhausted slot
//! ring) and consume failures (a slot reference that went bad). A
//! wrapped channel can also be killed outright mid-workload
//! ([`ChaosPayloadChannel::fail_from_now`]) to force the shm→TCP
//! degradation path deterministically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use oaf_nvmeof::error::NvmeofError;
use oaf_nvmeof::payload::{PayloadChannel, WriteLease};

use crate::rng::ChaosRng;
use crate::{ChaosStats, FaultKind, FaultPlan};

/// A [`PayloadChannel`] that fails slot operations from a seeded
/// schedule.
pub struct ChaosPayloadChannel {
    inner: Arc<dyn PayloadChannel>,
    plan: FaultPlan,
    armed: AtomicBool,
    broken: AtomicBool,
    stats: Arc<ChaosStats>,
    rng: Mutex<ChaosRng>,
}

impl ChaosPayloadChannel {
    /// Wraps `inner`. `seed` should come from [`FaultPlan::child_seed`]
    /// with an index distinct from the transport endpoints'.
    pub fn wrap(
        inner: Arc<dyn PayloadChannel>,
        seed: u64,
        plan: FaultPlan,
        stats: Arc<ChaosStats>,
    ) -> Arc<Self> {
        Arc::new(ChaosPayloadChannel {
            inner,
            plan,
            armed: AtomicBool::new(false),
            broken: AtomicBool::new(false),
            stats,
            rng: Mutex::new(ChaosRng::new(seed)),
        })
    }

    /// Starts injecting faults (call after the handshake).
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Stops injecting faults (a killed channel stays killed).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// Kills the channel: every subsequent slot operation fails, as if
    /// the shared region went away. Forces shm→TCP degradation.
    pub fn fail_from_now(&self) {
        self.broken.store(true, Ordering::Release);
    }

    /// The shared fault tally.
    pub fn stats(&self) -> &Arc<ChaosStats> {
        &self.stats
    }

    fn roll(&self, per_10k: u32, kind: FaultKind) -> Result<(), NvmeofError> {
        if self.broken.load(Ordering::Acquire) {
            return Err(NvmeofError::Payload("chaos: channel killed".into()));
        }
        if self.armed.load(Ordering::Acquire) && self.rng.lock().expect("chaos rng").chance(per_10k)
        {
            self.stats.record(kind);
            return Err(NvmeofError::Payload(format!("chaos: injected {kind:?}")));
        }
        Ok(())
    }
}

impl PayloadChannel for ChaosPayloadChannel {
    fn alloc(&self, len: usize) -> Result<WriteLease, NvmeofError> {
        self.roll(
            self.plan.shm_publish_fail_per_10k,
            FaultKind::ShmPublishFail,
        )?;
        self.inner.alloc(len)
    }

    fn publish_lease(&self, lease: WriteLease) -> Result<(u32, u32), NvmeofError> {
        // A failed publish drops the lease, whose RAII guard returns the
        // slot — exactly what a real wedged publish must guarantee.
        self.roll(
            self.plan.shm_publish_fail_per_10k,
            FaultKind::ShmPublishFail,
        )?;
        self.inner.publish_lease(lease)
    }

    fn consume_with(
        &self,
        slot: u32,
        len: u32,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), NvmeofError> {
        match self.roll(
            self.plan.shm_consume_fail_per_10k,
            FaultKind::ShmConsumeFail,
        ) {
            Ok(()) => self.inner.consume_with(slot, len, f),
            Err(e) => {
                // The slot the peer published must still be freed or the
                // ring leaks; drain it without delivering the bytes.
                let _ = self.inner.consume_with(slot, len, &mut |_| {});
                Err(e)
            }
        }
    }

    fn publish(&self, data: &[u8]) -> Result<(u32, u32), NvmeofError> {
        self.roll(
            self.plan.shm_publish_fail_per_10k,
            FaultKind::ShmPublishFail,
        )?;
        self.inner.publish(data)
    }

    fn consume(&self, slot: u32, len: u32, dst: &mut [u8]) -> Result<(), NvmeofError> {
        match self.roll(
            self.plan.shm_consume_fail_per_10k,
            FaultKind::ShmConsumeFail,
        ) {
            Ok(()) => self.inner.consume(slot, len, dst),
            Err(e) => {
                let _ = self.inner.consume_with(slot, len, &mut |_| {});
                Err(e)
            }
        }
    }

    fn max_payload(&self) -> usize {
        self.inner.max_payload()
    }

    fn quarantine(&self) {
        self.inner.quarantine()
    }

    fn reclaim(&self) -> usize {
        self.inner.reclaim()
    }

    fn reclaim_slot(&self, slot: u32) -> bool {
        self.inner.reclaim_slot(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_nvmeof::payload::MailboxChannel;

    #[test]
    fn quiet_plan_passes_payloads_through() {
        let (c, t) = MailboxChannel::pair(8);
        let stats = Arc::new(ChaosStats::default());
        let chaos = ChaosPayloadChannel::wrap(c, 5, FaultPlan::quiet(5), stats.clone());
        chaos.arm();
        let (slot, len) = chaos.publish(b"payload").unwrap();
        let mut buf = vec![0u8; len as usize];
        t.consume(slot, len, &mut buf).unwrap();
        assert_eq!(buf, b"payload");
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn injected_publish_failures_are_reproducible() {
        let run = |seed: u64| {
            let (c, _t) = MailboxChannel::pair(64);
            let stats = Arc::new(ChaosStats::default());
            let plan = FaultPlan {
                shm_publish_fail_per_10k: 2_000,
                ..FaultPlan::quiet(seed)
            };
            let chaos = ChaosPayloadChannel::wrap(c, seed, plan, stats.clone());
            chaos.arm();
            let outcomes: Vec<bool> = (0..32).map(|_| chaos.publish(b"x").is_ok()).collect();
            (outcomes, stats.count(FaultKind::ShmPublishFail))
        };
        let (o1, n1) = run(11);
        let (o2, n2) = run(11);
        assert_eq!(o1, o2);
        assert_eq!(n1, n2);
        assert!(n1 > 0, "20% failure rate never fired over 32 publishes");
    }

    #[test]
    fn killed_channel_fails_everything() {
        let (c, _t) = MailboxChannel::pair(8);
        let stats = Arc::new(ChaosStats::default());
        let chaos = ChaosPayloadChannel::wrap(c, 6, FaultPlan::quiet(6), stats);
        chaos.publish(b"before").unwrap();
        chaos.fail_from_now();
        assert!(chaos.publish(b"after").is_err());
        assert!(chaos.alloc(8).is_err());
    }

    #[test]
    fn failed_consume_still_frees_the_slot() {
        let (c, t) = MailboxChannel::pair(2);
        let stats = Arc::new(ChaosStats::default());
        let plan = FaultPlan {
            shm_consume_fail_per_10k: 10_000,
            ..FaultPlan::quiet(7)
        };
        let chaos_t = ChaosPayloadChannel::wrap(t, 7, plan, stats);
        chaos_t.arm();
        // Fill the 2-deep ring twice over: if failed consumes leaked
        // slots, the third publish would be denied.
        for _ in 0..4 {
            let (slot, len) = c.publish(b"data").unwrap();
            let mut buf = vec![0u8; len as usize];
            assert!(chaos_t.consume(slot, len, &mut buf).is_err());
        }
    }
}
