//! Seeded crash-point selection for storage kill-point testing.
//!
//! The durable store's crash soak (`oaf-store`'s `crash` test) needs to
//! kill the device at an *arbitrary but reproducible* syscall boundary:
//! mid-record-append, between the log append and the data apply, in the
//! middle of an fsync. A [`CrashPoint`] picks that boundary from a seed
//! — the same `OAF_CHAOS_SEED` convention every other chaos schedule in
//! this crate replays from — so a failing kill-point reproduces with one
//! environment variable.

use crate::rng::ChaosRng;

/// A deterministic choice of which mutating syscall to die at.
///
/// `fire_at` is 1-based: `fire_at == 1` kills the very first mutating
/// syscall of the window. Derive one per crash iteration from the
/// iteration's own sub-seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    seed: u64,
    fire_at: u64,
}

impl CrashPoint {
    /// Picks a kill point uniformly in `[1, max_ops]` from `seed`.
    /// `max_ops` should upper-bound the mutating syscalls the workload
    /// will issue, so every phase of every operation is reachable.
    pub fn seeded(seed: u64, max_ops: u64) -> CrashPoint {
        assert!(max_ops >= 1, "need at least one candidate syscall");
        let mut rng = ChaosRng::new(seed);
        CrashPoint {
            seed,
            fire_at: rng.range(1, max_ops + 1),
        }
    }

    /// The 1-based index of the mutating syscall to die at.
    pub fn fire_at(&self) -> u64 {
        self.fire_at
    }

    /// The seed this point was derived from (for failure banners).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_point() {
        assert_eq!(CrashPoint::seeded(99, 1000), CrashPoint::seeded(99, 1000));
        let p = CrashPoint::seeded(99, 1000);
        assert!((1..=1000).contains(&p.fire_at()));
        assert_eq!(p.seed(), 99);
    }

    #[test]
    fn points_spread_over_the_window() {
        // Not a statistical test — just that different seeds actually
        // reach different syscalls, including the first.
        let points: Vec<u64> = (0..64)
            .map(|s| CrashPoint::seeded(s, 8).fire_at())
            .collect();
        for k in 1..=8u64 {
            assert!(
                points.contains(&k),
                "kill point {k} never chosen in 64 seeds"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_window_rejected() {
        let _ = CrashPoint::seeded(1, 0);
    }
}
