//! Chaos wrapper over a control [`Transport`].
//!
//! Faults are injected on the receive side of the wrapped endpoint:
//! dropping, delaying, duplicating, reordering or corrupting a frame on
//! receipt is indistinguishable (to the protocol above) from the same
//! misfortune anywhere along the path, and keeping injection on one
//! side keeps the decision stream deterministic per endpoint. The
//! wrapper implements only the three primitive transport methods;
//! the batched helpers inherit the trait defaults and therefore route
//! every frame through the chaos filter.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;

use oaf_nvmeof::error::NvmeofError;
use oaf_nvmeof::transport::Transport;

use crate::rng::ChaosRng;
use crate::{ChaosStats, FaultKind, FaultPlan, FaultScript};

/// Shared switchboard for one wrapped endpoint.
struct EndpointCtl {
    /// Faults stay dormant until armed (the handshake runs clean).
    armed: AtomicBool,
    /// Once set the endpoint is a black hole: sends vanish, receives
    /// return nothing, forever. Only keep-alive can tell.
    dead: AtomicBool,
}

/// Mutable receive-side state, serialized by a mutex (transports are
/// polled from one thread in practice; the mutex makes the wrapper
/// correct regardless).
struct RxState {
    rng: ChaosRng,
    /// Receive polls observed (the chaos clock: delays are measured in
    /// polls, not wall time, so schedules replay across machine speeds).
    polls: u64,
    /// Polls observed while armed (peer-death trigger).
    armed_polls: u64,
    /// Frames held back: `(due_poll, frame)`.
    delayed: Vec<(u64, Bytes)>,
    /// A duplicated frame awaiting its second delivery.
    dup_pending: Option<Bytes>,
    /// Fresh frames observed while armed (the scripted-fault index).
    fresh: u64,
}

/// A [`Transport`] that injects faults from a seeded schedule.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    /// When set, faults come from this deterministic schedule instead of
    /// the plan's seeded probabilities.
    script: Option<FaultScript>,
    ctl: Arc<EndpointCtl>,
    stats: Arc<ChaosStats>,
    state: Mutex<RxState>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps one endpoint. `seed` should come from
    /// [`FaultPlan::child_seed`] so both endpoints of a pair draw
    /// independent streams from the one printed seed.
    pub fn wrap(inner: T, seed: u64, plan: FaultPlan, stats: Arc<ChaosStats>) -> Self {
        ChaosTransport {
            inner,
            plan,
            script: None,
            ctl: Arc::new(EndpointCtl {
                armed: AtomicBool::new(false),
                dead: AtomicBool::new(false),
            }),
            stats,
            state: Mutex::new(RxState {
                rng: ChaosRng::new(seed),
                polls: 0,
                armed_polls: 0,
                delayed: Vec::new(),
                dup_pending: None,
                fresh: 0,
            }),
        }
    }

    /// Wraps one endpoint with a deterministic fault schedule: the
    /// seeded probability rolls are bypassed entirely and exactly the
    /// scripted faults fire, at exactly the scripted fresh-frame
    /// indices. Corruption flips a fixed bit so even the damage is
    /// reproducible.
    pub fn wrap_scripted(inner: T, script: FaultScript, stats: Arc<ChaosStats>) -> Self {
        let mut t = Self::wrap(inner, 0, FaultPlan::quiet(0), stats);
        t.script = Some(script);
        t
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn armed(&self) -> bool {
        self.ctl.armed.load(Ordering::Acquire)
    }

    fn dead(&self) -> bool {
        self.ctl.dead.load(Ordering::Acquire)
    }

    /// Corrupts one byte of `frame` at a seeded position.
    fn corrupt(rng: &mut ChaosRng, frame: &Bytes) -> Bytes {
        let mut bytes = frame.to_vec();
        if !bytes.is_empty() {
            let i = rng.range(0, bytes.len() as u64) as usize;
            bytes[i] ^= 1 << rng.range(0, 8);
        }
        Bytes::from(bytes)
    }

    /// One receive poll through the chaos filter.
    fn pull(&self) -> Result<Option<Bytes>, NvmeofError> {
        if self.dead() {
            return Ok(None);
        }
        let mut st = self.state.lock().expect("chaos state");
        st.polls += 1;
        let armed = self.armed();
        if armed {
            st.armed_polls += 1;
            if let Some(after) = self.plan.peer_death_after {
                if st.armed_polls >= after && !self.ctl.dead.swap(true, Ordering::AcqRel) {
                    self.stats.record(FaultKind::PeerDeath);
                    return Ok(None);
                }
            }
        }
        // Second copy of a duplicated frame goes out first.
        if let Some(dup) = st.dup_pending.take() {
            return Ok(Some(dup));
        }
        // Then any held-back frame that has come due.
        let now = st.polls;
        if let Some(i) = st.delayed.iter().position(|(due, _)| *due <= now) {
            return Ok(Some(st.delayed.remove(i).1));
        }
        let frame = match self.inner.try_recv()? {
            Some(f) => f,
            None => return Ok(None),
        };
        if !armed {
            return Ok(Some(frame));
        }
        if let Some(script) = &self.script {
            // Scripted mode: deterministic schedule, no PRNG.
            let idx = st.fresh;
            st.fresh += 1;
            match script.fault_at(idx) {
                Some(FaultKind::Drop) => {
                    self.stats.record(FaultKind::Drop);
                    return Ok(None);
                }
                Some(FaultKind::Delay) => {
                    let due = now + self.plan.max_delay_polls.max(1);
                    st.delayed.push((due, frame));
                    self.stats.record(FaultKind::Delay);
                    return Ok(None);
                }
                Some(FaultKind::Reorder) => {
                    st.delayed.push((now + 2, frame));
                    self.stats.record(FaultKind::Reorder);
                    return Ok(None);
                }
                Some(FaultKind::Duplicate) => {
                    st.dup_pending = Some(frame.clone());
                    self.stats.record(FaultKind::Duplicate);
                    return Ok(Some(frame));
                }
                Some(FaultKind::Corrupt) => {
                    // Deterministic damage: flip the low bit of the
                    // first byte (any flip fails the frame CRC).
                    let mut bytes = frame.to_vec();
                    if !bytes.is_empty() {
                        bytes[0] ^= 1;
                    }
                    self.stats.record(FaultKind::Corrupt);
                    return Ok(Some(Bytes::from(bytes)));
                }
                _ => return Ok(Some(frame)),
            }
        }
        st.fresh += 1;
        // One decision per fresh frame, in a fixed order so the stream
        // of rolls is a pure function of the seed and arrival count.
        if st.rng.chance(self.plan.drop_per_10k) {
            self.stats.record(FaultKind::Drop);
            return Ok(None);
        }
        if st.rng.chance(self.plan.delay_per_10k) {
            let max = self.plan.max_delay_polls.max(1);
            let due = now + st.rng.range(1, max + 1);
            st.delayed.push((due, frame));
            self.stats.record(FaultKind::Delay);
            return Ok(None);
        }
        if st.rng.chance(self.plan.reorder_per_10k) {
            // Held just long enough for frames behind it to pass.
            st.delayed.push((now + 2, frame));
            self.stats.record(FaultKind::Reorder);
            return Ok(None);
        }
        if st.rng.chance(self.plan.dup_per_10k) {
            st.dup_pending = Some(frame.clone());
            self.stats.record(FaultKind::Duplicate);
            return Ok(Some(frame));
        }
        if st.rng.chance(self.plan.corrupt_per_10k) {
            let corrupted = Self::corrupt(&mut st.rng, &frame);
            self.stats.record(FaultKind::Corrupt);
            return Ok(Some(corrupted));
        }
        Ok(Some(frame))
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        if self.dead() {
            // A dead peer acknowledges nothing — but the local kernel
            // would still accept the write into its buffers.
            return Ok(());
        }
        self.inner.send(frame)
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        self.pull()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(f) = self.pull()? {
                return Ok(Some(f));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Remote control for a set of wrapped endpoints (typically the pair
/// from [`wrap_pair`]).
#[derive(Clone)]
pub struct ChaosControls {
    ctls: Vec<Arc<EndpointCtl>>,
    stats: Arc<ChaosStats>,
}

impl ChaosControls {
    /// Starts injecting faults (call after the handshake).
    pub fn arm(&self) {
        for c in &self.ctls {
            c.armed.store(true, Ordering::Release);
        }
    }

    /// Stops injecting faults (already-delayed frames still deliver).
    pub fn disarm(&self) {
        for c in &self.ctls {
            c.armed.store(false, Ordering::Release);
        }
    }

    /// Black-holes endpoint `index` (0 = first of the pair) for good.
    pub fn kill(&self, index: usize) {
        if let Some(c) = self.ctls.get(index) {
            if !c.dead.swap(true, Ordering::AcqRel) {
                self.stats.record(FaultKind::PeerDeath);
            }
        }
    }

    /// The shared fault tally.
    pub fn stats(&self) -> &Arc<ChaosStats> {
        &self.stats
    }
}

/// Wraps both endpoints of a connected transport pair in deterministic
/// scripted layers: endpoint 0 replays `script_a`, endpoint 1 replays
/// `script_b`, both reporting into one [`ChaosStats`]. This is the
/// replay half of the model-checking loop — a counterexample converted
/// by `oaf-mc` runs here and must reproduce its violation on every run.
pub fn wrap_pair_scripted<A: Transport, B: Transport>(
    a: A,
    b: B,
    script_a: FaultScript,
    script_b: FaultScript,
) -> (ChaosTransport<A>, ChaosTransport<B>, ChaosControls) {
    let stats = Arc::new(ChaosStats::default());
    let ta = ChaosTransport::wrap_scripted(a, script_a, stats.clone());
    let tb = ChaosTransport::wrap_scripted(b, script_b, stats.clone());
    let controls = ChaosControls {
        ctls: vec![ta.ctl.clone(), tb.ctl.clone()],
        stats,
    };
    (ta, tb, controls)
}

/// Wraps both endpoints of a connected transport pair in chaos layers
/// driven by one plan: endpoint 0 draws from child seed 0, endpoint 1
/// from child seed 1, and both report into one [`ChaosStats`].
pub fn wrap_pair<A: Transport, B: Transport>(
    a: A,
    b: B,
    plan: &FaultPlan,
) -> (ChaosTransport<A>, ChaosTransport<B>, ChaosControls) {
    let stats = Arc::new(ChaosStats::default());
    let ta = ChaosTransport::wrap(a, plan.child_seed(0), plan.clone(), stats.clone());
    let tb = ChaosTransport::wrap(b, plan.child_seed(1), plan.clone(), stats.clone());
    let controls = ChaosControls {
        ctls: vec![ta.ctl.clone(), tb.ctl.clone()],
        stats,
    };
    (ta, tb, controls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_nvmeof::transport::MemTransport;

    fn frame(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 16])
    }

    #[test]
    fn quiet_plan_is_transparent() {
        let (a, b) = MemTransport::pair();
        let (ca, cb, controls) = wrap_pair(a, b, &FaultPlan::quiet(1));
        controls.arm();
        for i in 0..100u8 {
            ca.send(frame(i)).unwrap();
            let got = cb.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
            assert_eq!(got, frame(i));
        }
        assert_eq!(controls.stats().total(), 0);
    }

    #[test]
    fn unarmed_wrapper_injects_nothing() {
        let (a, b) = MemTransport::pair();
        let (ca, cb, controls) = wrap_pair(a, b, &FaultPlan::heavy(2));
        for i in 0..200u8 {
            ca.send(frame(i)).unwrap();
            assert_eq!(
                cb.recv_timeout(Duration::from_secs(1)).unwrap().unwrap(),
                frame(i)
            );
        }
        assert_eq!(controls.stats().total(), 0);
    }

    #[test]
    fn heavy_plan_injects_reproducibly() {
        let run = |seed: u64| {
            let (a, b) = MemTransport::pair();
            let (ca, cb, controls) = wrap_pair(a, b, &FaultPlan::heavy(seed));
            controls.arm();
            let mut delivered = Vec::new();
            for i in 0..255u8 {
                ca.send(frame(i)).unwrap();
            }
            // Poll well past the longest delay.
            for _ in 0..4000 {
                if let Some(f) = cb.try_recv().unwrap() {
                    delivered.push(f);
                }
            }
            (delivered, controls.stats().total())
        };
        let (d1, n1) = run(77);
        let (d2, n2) = run(77);
        assert_eq!(d1, d2, "same seed must replay the same delivery");
        assert_eq!(n1, n2);
        assert!(n1 > 0, "heavy plan injected nothing over 255 frames");
        let (d3, _) = run(78);
        assert_ne!(d1, d3, "different seeds should differ");
    }

    #[test]
    fn killed_endpoint_goes_silent() {
        let (a, b) = MemTransport::pair();
        let (ca, cb, controls) = wrap_pair(a, b, &FaultPlan::quiet(3));
        ca.send(frame(1)).unwrap();
        controls.kill(1);
        assert!(cb
            .recv_timeout(Duration::from_millis(20))
            .unwrap()
            .is_none());
        // Sends are swallowed, not errors.
        cb.send(frame(2)).unwrap();
        assert_eq!(controls.stats().count(FaultKind::PeerDeath), 1);
    }

    #[test]
    fn scripted_faults_fire_exactly_as_written() {
        use crate::{FaultScript, ScriptedFault};
        let run = || {
            let (a, b) = MemTransport::pair();
            let script = FaultScript {
                faults: vec![
                    ScriptedFault {
                        frame: 0,
                        fault: FaultKind::Drop,
                    },
                    ScriptedFault {
                        frame: 1,
                        fault: FaultKind::Reorder,
                    },
                    ScriptedFault {
                        frame: 3,
                        fault: FaultKind::Duplicate,
                    },
                ],
            };
            let (ca, cb, controls) = wrap_pair_scripted(a, b, FaultScript::empty(), script);
            controls.arm();
            for i in 0..5u8 {
                ca.send(frame(i)).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..50 {
                if let Some(f) = cb.try_recv().unwrap() {
                    got.push(f[0]);
                }
            }
            (got, controls.stats().total())
        };
        let (got, faults) = run();
        // Frame 0 dropped; frame 1 held long enough for 2 to pass it;
        // frame 3 doubled.
        assert_eq!(got, vec![2, 1, 3, 3, 4]);
        assert_eq!(faults, 3);
        // Bit-for-bit reproducible: no seed, no rolls.
        assert_eq!(run().0, got);
    }

    #[test]
    fn scheduled_peer_death_fires() {
        let (a, b) = MemTransport::pair();
        let plan = FaultPlan {
            peer_death_after: Some(10),
            ..FaultPlan::quiet(4)
        };
        let (ca, cb, controls) = wrap_pair(a, b, &plan);
        controls.arm();
        for _ in 0..20 {
            let _ = cb.try_recv().unwrap();
        }
        ca.send(frame(9)).unwrap();
        assert!(cb
            .recv_timeout(Duration::from_millis(20))
            .unwrap()
            .is_none());
        assert_eq!(controls.stats().count(FaultKind::PeerDeath), 1);
    }
}
