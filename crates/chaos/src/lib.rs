//! Deterministic fault injection for the NVMe-oAF fabric.
//!
//! The robustness claim behind the recovery machinery (deadlines,
//! keep-alive, shm→TCP degradation, lease reclamation) is only worth
//! making if it survives hostile schedules — and a hostile schedule is
//! only worth finding if it can be *replayed*. This crate wraps the real
//! [`Transport`] and [`PayloadChannel`] abstractions in chaos layers
//! that inject faults from a seeded, self-contained PRNG:
//!
//! * [`ChaosTransport`] — drops, delays, duplicates, reorders and
//!   corrupts control frames, and can silently black-hole an endpoint
//!   (abrupt peer death, detected only by keep-alive);
//! * [`ChaosPayloadChannel`] — fails shared-memory slot operations
//!   (publish stalls, consume failures) and can kill the whole channel
//!   mid-flight to force shm→TCP degradation.
//!
//! Every decision is drawn from [`rng::ChaosRng`] seeded by
//! [`FaultPlan::seed`]; a failing run prints its seed and CI replays it
//! bit-for-bit (`OAF_CHAOS_SEED=<seed> cargo test`). Faults stay dormant
//! until [`ChaosControls::arm`] — the handshake runs clean, matching the
//! deployment reality that connection setup is retried by orchestration
//! while data-path faults must be survived in place.
//!
//! [`Transport`]: oaf_nvmeof::transport::Transport
//! [`PayloadChannel`]: oaf_nvmeof::payload::PayloadChannel

#![warn(missing_docs)]

pub mod crash;
pub mod payload;
pub mod rng;
pub mod transport;

pub use crash::CrashPoint;
pub use payload::ChaosPayloadChannel;
pub use transport::{wrap_pair, wrap_pair_scripted, ChaosControls, ChaosTransport};

use std::sync::atomic::{AtomicU64, Ordering};

/// The eight fault kinds the chaos layers inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A control frame silently discarded.
    Drop,
    /// A control frame held back for a few receive polls.
    Delay,
    /// A control frame delivered twice.
    Duplicate,
    /// A control frame delivered after frames that arrived later.
    Reorder,
    /// A control frame with a flipped byte (caught by the frame CRC).
    Corrupt,
    /// A shared-memory publish/alloc that fails as if the ring wedged.
    ShmPublishFail,
    /// A shared-memory consume that fails as if the slot went bad.
    ShmConsumeFail,
    /// An endpoint that goes silent forever (both directions black-holed).
    PeerDeath,
}

/// How aggressively each fault fires. Probabilities are parts per
/// 10 000 per opportunity (a received frame, a payload operation).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for every chaos decision; print it on failure, replay it in CI.
    pub seed: u64,
    /// Frame drop probability.
    pub drop_per_10k: u32,
    /// Frame delay probability.
    pub delay_per_10k: u32,
    /// Frame duplication probability.
    pub dup_per_10k: u32,
    /// Frame reorder probability.
    pub reorder_per_10k: u32,
    /// Frame corruption probability.
    pub corrupt_per_10k: u32,
    /// Shared-memory publish/alloc failure probability.
    pub shm_publish_fail_per_10k: u32,
    /// Shared-memory consume failure probability.
    pub shm_consume_fail_per_10k: u32,
    /// Longest a delayed frame is held, in subsequent receive polls.
    pub max_delay_polls: u64,
    /// Black-hole the endpoint after this many armed receive polls
    /// (`None`: the peer never dies).
    pub peer_death_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (wrappers become transparent).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_per_10k: 0,
            delay_per_10k: 0,
            dup_per_10k: 0,
            reorder_per_10k: 0,
            corrupt_per_10k: 0,
            shm_publish_fail_per_10k: 0,
            shm_consume_fail_per_10k: 0,
            max_delay_polls: 8,
            peer_death_after: None,
        }
    }

    /// Every recoverable fault at ~0.5 % per opportunity — the soak-test
    /// default: frequent enough to fire hundreds of times across a run,
    /// sparse enough that forward progress dominates.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            drop_per_10k: 50,
            delay_per_10k: 50,
            dup_per_10k: 50,
            reorder_per_10k: 50,
            corrupt_per_10k: 50,
            shm_publish_fail_per_10k: 50,
            shm_consume_fail_per_10k: 50,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Every recoverable fault at 2 % per opportunity.
    pub fn heavy(seed: u64) -> Self {
        FaultPlan {
            drop_per_10k: 200,
            delay_per_10k: 200,
            dup_per_10k: 200,
            reorder_per_10k: 200,
            corrupt_per_10k: 200,
            shm_publish_fail_per_10k: 200,
            shm_consume_fail_per_10k: 200,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Child seed for endpoint number `n`, derived so each wrapped
    /// endpoint draws an independent stream from the one printed seed.
    pub fn child_seed(&self, n: u64) -> u64 {
        let mut s = self.seed ^ n.wrapping_mul(0xA076_1D64_78BD_642F);
        rng::splitmix64(&mut s)
    }

    /// Seed for the fault plan of shard number `shard`, derived from a
    /// mixing constant distinct from [`FaultPlan::child_seed`]'s so the
    /// shard-level and endpoint-level streams never collide: a sharded
    /// soak builds one plan per shard from `shard_seed(s)` and each of
    /// those plans still hands out `child_seed(n)` per endpoint. The
    /// whole tree replays from the one printed root seed.
    pub fn shard_seed(&self, shard: u64) -> u64 {
        // `shard + 1` keeps shard 0 off the `child_seed(0)` stream
        // (both would otherwise collapse to `splitmix64(seed)`).
        let mut s = self.seed ^ shard.wrapping_add(1).wrapping_mul(0x9E6C_63D0_876A_3F6B);
        rng::splitmix64(&mut s)
    }
}

/// One scripted fault: when the `frame`-th fresh frame (0-based, counted
/// while armed) arrives at the wrapped endpoint, apply `fault`
/// deterministically — no PRNG involved. This is how a model-checker
/// counterexample becomes a pinned chaos regression: the checker's
/// minimal trace names exactly which frame to drop/reorder/duplicate/
/// corrupt, and the scripted transport replays that schedule bit for
/// bit on every run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Index of the fresh armed frame to fault (0 = first frame
    /// received after [`ChaosControls::arm`]).
    pub frame: u64,
    /// What to do to it. Only the frame-level kinds are meaningful here
    /// ([`FaultKind::Drop`], [`Delay`], [`Duplicate`], [`Reorder`],
    /// [`Corrupt`]); payload/death kinds are ignored by the transport.
    ///
    /// [`Delay`]: FaultKind::Delay
    /// [`Duplicate`]: FaultKind::Duplicate
    /// [`Reorder`]: FaultKind::Reorder
    /// [`Corrupt`]: FaultKind::Corrupt
    pub fault: FaultKind,
}

/// A deterministic fault schedule for one endpoint, typically converted
/// from an `oaf-mc` counterexample trace. Unlike [`FaultPlan`]'s seeded
/// probabilities, a script fires exactly the listed faults at exactly
/// the listed frames.
#[derive(Clone, Debug, Default)]
pub struct FaultScript {
    /// The faults to fire, matched by fresh-frame index.
    pub faults: Vec<ScriptedFault>,
}

impl FaultScript {
    /// A script that injects nothing.
    pub fn empty() -> Self {
        FaultScript::default()
    }

    /// The fault scheduled for fresh-frame `index`, if any.
    pub fn fault_at(&self, index: u64) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.frame == index)
            .map(|f| f.fault)
    }
}

/// Counts of injected faults, shared by every wrapper built from one
/// plan. Tests assert coverage ("the run actually exercised ≥ N fault
/// kinds") and print the tally next to the seed on failure.
#[derive(Default, Debug)]
pub struct ChaosStats {
    drops: AtomicU64,
    delays: AtomicU64,
    dups: AtomicU64,
    reorders: AtomicU64,
    corrupts: AtomicU64,
    shm_publish_fails: AtomicU64,
    shm_consume_fails: AtomicU64,
    deaths: AtomicU64,
}

impl ChaosStats {
    /// Records one injected fault.
    pub fn record(&self, kind: FaultKind) {
        let c = match kind {
            FaultKind::Drop => &self.drops,
            FaultKind::Delay => &self.delays,
            FaultKind::Duplicate => &self.dups,
            FaultKind::Reorder => &self.reorders,
            FaultKind::Corrupt => &self.corrupts,
            FaultKind::ShmPublishFail => &self.shm_publish_fails,
            FaultKind::ShmConsumeFail => &self.shm_consume_fails,
            FaultKind::PeerDeath => &self.deaths,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// How many faults of `kind` have been injected.
    pub fn count(&self, kind: FaultKind) -> u64 {
        let c = match kind {
            FaultKind::Drop => &self.drops,
            FaultKind::Delay => &self.delays,
            FaultKind::Duplicate => &self.dups,
            FaultKind::Reorder => &self.reorders,
            FaultKind::Corrupt => &self.corrupts,
            FaultKind::ShmPublishFail => &self.shm_publish_fails,
            FaultKind::ShmConsumeFail => &self.shm_consume_fails,
            FaultKind::PeerDeath => &self.deaths,
        };
        c.load(Ordering::Relaxed)
    }

    /// Total injected faults across every kind.
    pub fn total(&self) -> u64 {
        ALL_FAULTS.iter().map(|&k| self.count(k)).sum()
    }

    /// How many distinct fault kinds fired at least once.
    pub fn kinds_fired(&self) -> usize {
        ALL_FAULTS.iter().filter(|&&k| self.count(k) > 0).count()
    }
}

impl std::fmt::Display for ChaosStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drop={} delay={} dup={} reorder={} corrupt={} shm_pub={} shm_con={} death={}",
            self.count(FaultKind::Drop),
            self.count(FaultKind::Delay),
            self.count(FaultKind::Duplicate),
            self.count(FaultKind::Reorder),
            self.count(FaultKind::Corrupt),
            self.count(FaultKind::ShmPublishFail),
            self.count(FaultKind::ShmConsumeFail),
            self.count(FaultKind::PeerDeath),
        )
    }
}

/// Every fault kind, for coverage iteration.
pub const ALL_FAULTS: [FaultKind; 8] = [
    FaultKind::Drop,
    FaultKind::Delay,
    FaultKind::Duplicate,
    FaultKind::Reorder,
    FaultKind::Corrupt,
    FaultKind::ShmPublishFail,
    FaultKind::ShmConsumeFail,
    FaultKind::PeerDeath,
];

#[cfg(test)]
mod seed_tests {
    use super::*;

    #[test]
    fn shard_and_child_streams_are_distinct() {
        let plan = FaultPlan::light(0xC0FF_EED0_0D5E);
        // Determinism: same root seed, same derived seeds.
        assert_eq!(plan.shard_seed(3), plan.shard_seed(3));
        // Shard and endpoint derivations use different mixing constants,
        // so the streams never collide for small indices (the ones every
        // test actually uses).
        for s in 0..16u64 {
            for n in 0..16u64 {
                assert_ne!(plan.shard_seed(s), plan.child_seed(n));
            }
        }
        // Distinct shards get distinct plans.
        let all: std::collections::BTreeSet<u64> = (0..64).map(|s| plan.shard_seed(s)).collect();
        assert_eq!(all.len(), 64);
    }
}
