//! Self-contained deterministic PRNG (no external dependencies).
//!
//! Chaos schedules must be reproducible from a single printed seed, so
//! the generator is fixed forever: splitmix64 expands the seed into the
//! xoshiro256** state, exactly as Blackman & Vigna recommend. Both
//! algorithms are public domain.

/// One splitmix64 step: advances `state` and returns the next output.
/// Used both for seeding and for deriving per-endpoint child seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    s: [u64; 4],
}

impl ChaosRng {
    /// Builds a generator whose whole stream is a pure function of
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        ChaosRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// True with probability `per_10k` / 10 000.
    pub fn chance(&mut self, per_10k: u32) -> bool {
        per_10k > 0 && self.next_u64() % 10_000 < u64::from(per_10k)
    }

    /// Uniform value in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaosRng::new(1);
        let mut b = ChaosRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn chance_extremes() {
        let mut r = ChaosRng::new(7);
        assert!(!(0..1000).any(|_| r.chance(0)));
        assert!((0..1000).all(|_| r.chance(10_000)));
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = ChaosRng::new(9);
        for _ in 0..1000 {
            let v = r.range(3, 11);
            assert!((3..11).contains(&v));
        }
    }
}
