//! The SSD device performance model.

use oaf_simnet::calendar::CalendarMulti;
use oaf_simnet::rng::SimRng;
use oaf_simnet::time::{SimDuration, SimTime};

use crate::config::SsdParams;

/// I/O direction at the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Media/DRAM read.
    Read,
    /// Media/DRAM program (buffered).
    Write,
}

/// A simulated NVMe-SSD.
///
/// Each device owns its internal channel array and its own RNG stream, so a
/// multi-device experiment is reproducible regardless of the order devices
/// are polled in.
pub struct SsdDevice {
    params: SsdParams,
    channels: CalendarMulti,
    rng: SimRng,
    ios: u64,
    bytes: u64,
}

impl SsdDevice {
    /// Creates a device with the given parameters and RNG seed.
    pub fn new(params: SsdParams, seed: u64) -> Self {
        params.validate();
        SsdDevice {
            channels: CalendarMulti::new(params.channels),
            params,
            rng: SimRng::seed_from_u64(seed),
            ios: 0,
            bytes: 0,
        }
    }

    /// Model parameters.
    pub fn params(&self) -> &SsdParams {
        &self.params
    }

    /// Executes one command submitted to the device at `now`; returns the
    /// time the device posts its completion.
    ///
    /// The base latency is charged up front (firmware picks up the command,
    /// locates pages), then the payload is striped over internal channels.
    pub fn submit(&mut self, now: SimTime, op: IoOp, len: u64) -> SimTime {
        let base = match op {
            IoOp::Read => self.params.read_base,
            IoOp::Write => self.params.write_base,
        };
        let jittered = if self.params.jitter_sigma > 0.0 {
            SimDuration::from_secs_f64(
                self.rng
                    .lognormal_median(base.as_secs_f64(), self.params.jitter_sigma),
            )
        } else {
            base
        };
        let ready = now + self.params.cmd_overhead + jittered;
        let pages = self.params.pages_for(len);
        let (_, done) = self
            .channels
            .submit_striped(ready, pages, self.params.page_service);
        self.ios += 1;
        self.bytes += len;
        done
    }

    /// Commands executed so far.
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// Payload bytes moved so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Channel-array utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.channels.utilization(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_simnet::units::KIB;

    fn dev() -> SsdDevice {
        SsdDevice::new(SsdParams::qemu_emulated(), 42)
    }

    #[test]
    fn single_4k_read_costs_about_base_latency() {
        let mut d = dev();
        let done = d.submit(SimTime::ZERO, IoOp::Read, 4 * KIB);
        let us = done.as_micros_f64();
        // base 110us ± jitter + 1 page (8.2us) + overhead.
        assert!(us > 90.0 && us < 160.0, "got {us}us");
    }

    #[test]
    fn writes_complete_faster_than_reads() {
        let mut d = dev();
        let r = d.submit(SimTime::ZERO, IoOp::Read, 4 * KIB);
        let mut d2 = SsdDevice::new(SsdParams::qemu_emulated(), 42);
        let w = d2.submit(SimTime::ZERO, IoOp::Write, 4 * KIB);
        assert!(w < r);
    }

    #[test]
    fn large_io_recruits_channels() {
        let mut d = dev();
        let t_small = d.submit(SimTime::ZERO, IoOp::Read, 4 * KIB);
        let mut d2 = SsdDevice::new(SsdParams::qemu_emulated(), 42);
        let t_big = d2.submit(SimTime::ZERO, IoOp::Read, 512 * KIB);
        // 512K = 128 pages over the channels: one extra service round per
        // full sweep vs. the single page. Same seed, so jitter cancels.
        let p = SsdParams::qemu_emulated();
        let small_rounds = 1u64;
        let big_rounds = (512 * KIB / p.page_size).div_ceil(p.channels as u64);
        let expected = p.page_service.as_micros_f64() * (big_rounds - small_rounds) as f64;
        let delta = t_big.saturating_since(t_small).as_micros_f64();
        assert!(
            (delta - expected).abs() < 2.0,
            "delta {delta}us vs expected {expected}us"
        );
    }

    #[test]
    fn deep_queues_approach_bandwidth_ceiling() {
        let mut d = dev();
        let io = 128 * KIB;
        let n = 2048u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = last.max(d.submit(SimTime::ZERO, IoOp::Read, io));
        }
        let rate = (n * io) as f64 / last.as_secs_f64();
        let ceiling = d.params().bandwidth_ceiling();
        assert!(
            rate < ceiling * 1.001,
            "rate {rate} above ceiling {ceiling}"
        );
        assert!(
            rate > ceiling * 0.90,
            "rate {rate} far below ceiling {ceiling}"
        );
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = || {
            let mut d = SsdDevice::new(SsdParams::qemu_emulated(), 7);
            (0..100)
                .map(|_| d.submit(SimTime::ZERO, IoOp::Read, 64 * KIB).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_accumulate() {
        let mut d = dev();
        d.submit(SimTime::ZERO, IoOp::Write, 4 * KIB);
        d.submit(SimTime::ZERO, IoOp::Read, 8 * KIB);
        assert_eq!(d.ios(), 2);
        assert_eq!(d.bytes(), 12 * KIB);
        assert!(d.utilization(SimTime::from_millis(1)) > 0.0);
    }

    #[test]
    fn jitter_produces_a_tail() {
        let mut d = dev();
        let lats: Vec<f64> = (0..5000)
            .map(|_| {
                d.submit(SimTime::ZERO, IoOp::Read, 4 * KIB); // advance channels
                let t0 = SimTime::from_secs(1000); // far future: no queueing
                d.submit(t0, IoOp::Read, 4 * KIB)
                    .saturating_since(t0)
                    .as_micros_f64()
            })
            .collect();
        let mean = lats.iter().sum::<f64>() / lats.len() as f64;
        let max = lats.iter().cloned().fold(0.0, f64::max);
        assert!(max > mean * 1.15, "max {max} mean {mean}");
    }
}
