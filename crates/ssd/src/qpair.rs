//! NVMe queue-pair semantics for the simulation.
//!
//! NVMe-oF keeps a one-to-one mapping between submission and completion
//! queues (§2.1). For the model the property that matters is the *depth
//! cap*: a queue pair with depth `d` admits at most `d` in-flight commands,
//! so a command submitted to a full queue waits for the earliest
//! completion. Fig. 14 uses a single queue pair with queue depth swept from
//! 1 to 128 — this type is what enforces that sweep's semantics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use oaf_simnet::time::SimTime;

/// A bounded-depth NVMe submission/completion queue pair.
#[derive(Debug)]
pub struct QueuePair {
    depth: usize,
    inflight: BinaryHeap<Reverse<SimTime>>,
    admitted: u64,
    stalled: u64,
}

impl QueuePair {
    /// Creates a queue pair admitting at most `depth` in-flight commands.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be nonzero");
        QueuePair {
            depth,
            inflight: BinaryHeap::new(),
            admitted: 0,
            stalled: 0,
        }
    }

    /// Maximum in-flight commands.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Admits a command arriving at `now`; returns the time it can actually
    /// enter the device (may be later than `now` if the queue is full).
    /// The caller must then [`QueuePair::complete`] it with the completion
    /// time produced by the device model.
    pub fn admit(&mut self, now: SimTime) -> SimTime {
        // Retire everything that has completed by `now`.
        while let Some(&Reverse(t)) = self.inflight.peek() {
            if t <= now && !self.inflight.is_empty() {
                self.inflight.pop();
            } else {
                break;
            }
        }
        self.admitted += 1;
        if self.inflight.len() < self.depth {
            now
        } else {
            let Reverse(earliest) = self.inflight.pop().expect("non-empty when full");
            self.stalled += 1;
            earliest.max(now)
        }
    }

    /// Registers the completion time of an admitted command.
    pub fn complete(&mut self, at: SimTime) {
        self.inflight.push(Reverse(at));
        debug_assert!(self.inflight.len() <= self.depth, "queue overflow");
    }

    /// Commands admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Commands that had to wait for a slot.
    pub fn stalled(&self) -> u64 {
        self.stalled
    }

    /// Current in-flight count as of the last `admit`/`complete` calls.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn admits_up_to_depth_without_stall() {
        let mut qp = QueuePair::new(4);
        for _ in 0..4 {
            assert_eq!(qp.admit(at(0)), at(0));
            qp.complete(at(100));
        }
        assert_eq!(qp.stalled(), 0);
        assert_eq!(qp.inflight(), 4);
    }

    #[test]
    fn fifth_command_waits_for_earliest_completion() {
        let mut qp = QueuePair::new(4);
        for i in 0..4u64 {
            qp.admit(at(0));
            qp.complete(at(100 + i));
        }
        let start = qp.admit(at(0));
        assert_eq!(start, at(100));
        assert_eq!(qp.stalled(), 1);
    }

    #[test]
    fn completions_in_the_past_free_slots() {
        let mut qp = QueuePair::new(2);
        qp.admit(at(0));
        qp.complete(at(10));
        qp.admit(at(0));
        qp.complete(at(20));
        // At t=30 both are done; no stall.
        assert_eq!(qp.admit(at(30)), at(30));
        assert_eq!(qp.stalled(), 0);
    }

    #[test]
    fn depth_one_serializes() {
        let mut qp = QueuePair::new(1);
        qp.admit(at(0));
        qp.complete(at(50));
        assert_eq!(qp.admit(at(0)), at(50));
        qp.complete(at(120));
        assert_eq!(qp.admit(at(0)), at(120));
        assert_eq!(qp.admitted(), 3);
    }

    #[test]
    #[should_panic(expected = "queue depth must be nonzero")]
    fn zero_depth_rejected() {
        let _ = QueuePair::new(0);
    }
}
