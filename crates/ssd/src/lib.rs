//! NVMe-SSD substrate for the NVMe-oAF reproduction.
//!
//! The paper's testbed attaches up to four QEMU-emulated NVMe-SSDs to the
//! target VM (§5.1), plus one real NVMe-SSD for the RoCE experiments. This
//! crate provides both halves of that substitution:
//!
//! * [`device::SsdDevice`] — a discrete-event performance model of an
//!   NVMe-SSD: per-command base latency with lognormal jitter, internal
//!   channel parallelism with page striping, and submission-queue-depth
//!   semantics via [`qpair::QueuePair`]. Presets in [`config`] are
//!   calibrated for the paper's two device classes (RAM-backed QEMU
//!   emulation vs. a real datacenter SSD).
//! * [`ram::RamDisk`] — a functional RAM-backed block store used by the
//!   *real* (threaded) NVMe-oF runtime, so integration tests and examples
//!   move actual bytes end to end — and [`ram::SharedRamDisk`], its
//!   multi-queue form: one storage service shared lock-free by the
//!   reactor threads of a sharded target.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod block;
pub mod config;
pub mod device;
pub mod qpair;
pub mod ram;

pub use block::BlockStore;
pub use config::SsdParams;
pub use device::{IoOp, SsdDevice};
pub use qpair::QueuePair;
pub use ram::{BlockError, RamDisk, SharedRamDisk};
