//! SSD model parameters and calibrated presets.

use oaf_simnet::time::SimDuration;
use oaf_simnet::units::KIB;

/// Static parameters of the SSD performance model.
///
/// The model decomposes a command's device time as
/// `base(op) * lognormal_jitter + striping(pages over channels)` plus a
/// fixed command-processing overhead, matching the "I/O time" component of
/// the paper's latency breakdown (§3.2).
#[derive(Clone, Copy, Debug)]
pub struct SsdParams {
    /// Base latency of a read command (firmware + media/DRAM access).
    pub read_base: SimDuration,
    /// Base latency of a write command (writes land in the device buffer,
    /// hence lower than reads for both emulated and real devices).
    pub write_base: SimDuration,
    /// Lognormal shape (log-space sigma) of base-latency jitter; gives the
    /// long right tail SSDs are known for.
    pub jitter_sigma: f64,
    /// Number of internal channels/planes serving pages in parallel.
    pub channels: usize,
    /// Internal page size; commands are striped in pages over channels.
    pub page_size: u64,
    /// Service time of one page on one channel.
    pub page_service: SimDuration,
    /// Fixed command processing overhead (doorbell, DMA descriptor setup).
    pub cmd_overhead: SimDuration,
}

impl SsdParams {
    /// A QEMU-emulated, RAM-backed NVMe-SSD as attached to the target VM in
    /// the paper's main experiments (§5.1). Emulation makes the per-command
    /// base latency dominate small I/Os while the RAM backing gives the
    /// device a high internal ceiling that only deep queues expose — the
    /// property Fig. 14's concurrency experiment relies on.
    pub fn qemu_emulated() -> Self {
        SsdParams {
            read_base: SimDuration::from_micros(110),
            write_base: SimDuration::from_micros(45),
            jitter_sigma: 0.08,
            channels: 16,
            page_size: 4 * KIB,
            page_service: SimDuration::from_micros_f64(10.9),
            cmd_overhead: SimDuration::from_micros(2),
        }
    }

    /// A real datacenter NVMe-SSD (the single physical device used for the
    /// RoCE upper-bound runs, §5.1): lower base latency, but a media-bound
    /// bandwidth ceiling around 3.2 GB/s.
    pub fn real_nvme() -> Self {
        SsdParams {
            read_base: SimDuration::from_micros(85),
            write_base: SimDuration::from_micros(22),
            jitter_sigma: 0.12,
            channels: 8,
            page_size: 4 * KIB,
            page_service: SimDuration::from_micros_f64(9.6),
            cmd_overhead: SimDuration::from_micros(2),
        }
    }

    /// Device bandwidth ceiling implied by the channel configuration, in
    /// bytes per second.
    pub fn bandwidth_ceiling(&self) -> f64 {
        self.channels as f64 * self.page_size as f64 / self.page_service.as_secs_f64()
    }

    /// Number of pages an I/O of `len` bytes occupies (at least one).
    pub fn pages_for(&self, len: u64) -> u64 {
        oaf_simnet::units::chunks_for(len, self.page_size)
    }

    /// Panics if the parameters are degenerate.
    pub fn validate(&self) {
        assert!(self.channels > 0, "SSD needs at least one channel");
        assert!(self.page_size > 0, "page size must be nonzero");
        assert!(
            self.page_service > SimDuration::ZERO,
            "page service must be positive"
        );
        assert!(self.jitter_sigma >= 0.0 && self.jitter_sigma < 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SsdParams::qemu_emulated().validate();
        SsdParams::real_nvme().validate();
    }

    #[test]
    fn emulated_ceiling_is_memory_class() {
        let bw = SsdParams::qemu_emulated().bandwidth_ceiling();
        assert!(bw > 5e9 && bw < 8e9, "emulated ceiling {bw}");
    }

    #[test]
    fn real_ceiling_is_media_class() {
        let bw = SsdParams::real_nvme().bandwidth_ceiling();
        assert!(bw > 2.5e9 && bw < 4e9, "real ceiling {bw}");
    }

    #[test]
    fn page_counting() {
        let p = SsdParams::qemu_emulated();
        assert_eq!(p.pages_for(0), 1);
        assert_eq!(p.pages_for(4 * KIB), 1);
        assert_eq!(p.pages_for(128 * KIB), 32);
        assert_eq!(p.pages_for(128 * KIB + 1), 33);
    }

    #[test]
    fn writes_are_faster_than_reads_at_base() {
        let p = SsdParams::qemu_emulated();
        assert!(p.write_base < p.read_base);
    }
}
