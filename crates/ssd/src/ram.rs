//! RAM-backed block store for the real (threaded) runtime.
//!
//! Plays the role QEMU's RAM-backed NVMe emulation plays in the paper: a
//! functional device that actually stores and returns bytes, so the real
//! NVMe-oF target in `oaf-nvmeof` can serve genuine reads and writes in
//! examples and integration tests.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::Arc;

/// Errors from block-level access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// LBA range exceeds the device capacity.
    OutOfRange {
        /// First LBA of the offending access.
        lba: u64,
        /// Block count of the offending access.
        count: u32,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// Buffer length does not match `count * block_size`.
    BadBuffer {
        /// Expected byte length.
        expected: usize,
        /// Provided byte length.
        got: usize,
    },
    /// The backing store failed underneath the block layer (I/O error,
    /// corrupt on-disk metadata, or an injected crash). RAM-backed
    /// stores never produce this; file-backed ones do.
    Io(String),
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange {
                lba,
                count,
                capacity,
            } => {
                write!(
                    f,
                    "access [{lba}, {lba}+{count}) beyond capacity {capacity}"
                )
            }
            BlockError::BadBuffer { expected, got } => {
                write!(f, "buffer length {got} != expected {expected}")
            }
            BlockError::Io(msg) => write!(f, "storage I/O failure: {msg}"),
        }
    }
}

impl std::error::Error for BlockError {}

/// Validates an LBA range and payload length against a device geometry;
/// returns `(byte_offset, byte_len)` of the access. Shared by every
/// [`BlockStore`](crate::block::BlockStore) implementation so range and
/// buffer errors are uniform across RAM- and file-backed stores.
pub fn check_range(
    block_size: u32,
    capacity_blocks: u64,
    lba: u64,
    count: u32,
    buf_len: usize,
) -> Result<(usize, usize), BlockError> {
    let end = lba
        .checked_add(u64::from(count))
        .filter(|&e| e <= capacity_blocks);
    if count == 0 || end.is_none() {
        return Err(BlockError::OutOfRange {
            lba,
            count,
            capacity: capacity_blocks,
        });
    }
    let expected = count as usize * block_size as usize;
    if buf_len != expected {
        return Err(BlockError::BadBuffer {
            expected,
            got: buf_len,
        });
    }
    let off = (lba * u64::from(block_size)) as usize;
    Ok((off, expected))
}

/// A RAM-backed block device.
pub struct RamDisk {
    block_size: u32,
    data: Vec<u8>,
}

impl RamDisk {
    /// Creates a zero-filled disk of `blocks` blocks of `block_size` bytes.
    pub fn new(block_size: u32, blocks: u64) -> Self {
        assert!(
            block_size > 0 && block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        let len = (blocks * u64::from(block_size)) as usize;
        RamDisk {
            block_size,
            data: vec![0u8; len],
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.data.len() as u64 / u64::from(self.block_size)
    }

    fn check(&self, lba: u64, count: u32, buf_len: usize) -> Result<(usize, usize), BlockError> {
        check_range(self.block_size, self.capacity_blocks(), lba, count, buf_len)
    }

    /// Reads `count` blocks starting at `lba` into `buf`.
    pub fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        let (off, len) = self.check(lba, count, buf.len())?;
        buf.copy_from_slice(&self.data[off..off + len]);
        Ok(())
    }

    /// Writes `count` blocks starting at `lba` from `buf`.
    pub fn write(&mut self, lba: u64, count: u32, buf: &[u8]) -> Result<(), BlockError> {
        let (off, len) = self.check(lba, count, buf.len())?;
        self.data[off..off + len].copy_from_slice(buf);
        Ok(())
    }

    /// Zeroes `count` blocks starting at `lba` in place (NVMe Write
    /// Zeroes): no staging buffer, so the op stays allocation-free no
    /// matter how large the range is.
    pub fn write_zeroes(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        let expected = count as usize * self.block_size as usize;
        let (off, len) = self.check(lba, count, expected)?;
        self.data[off..off + len].fill(0);
        Ok(())
    }

    /// Converts this disk into a [`SharedRamDisk`] holding the same
    /// bytes, for multi-queue access from several reactor threads.
    pub fn into_shared(self) -> SharedRamDisk {
        SharedRamDisk {
            cell: Arc::new(SharedCell {
                block_size: self.block_size,
                len: self.data.len(),
                data: UnsafeCell::new(self.data.into_boxed_slice()),
            }),
        }
    }
}

struct SharedCell {
    block_size: u32,
    /// Byte length of `data`, fixed at construction (kept outside the
    /// cell so size queries never touch the aliased storage).
    len: usize,
    /// The backing bytes. Access goes through raw pointers under the
    /// multi-queue exclusivity contract documented on [`SharedRamDisk`].
    data: UnsafeCell<Box<[u8]>>,
}

// SAFETY: all access goes through `SharedRamDisk::{read,write}`, whose
// contract (below) forbids an LBA range from being written concurrently
// with any overlapping access — the same exclusivity discipline the
// in-region slot state machine enforces for `ShmRegion`.
unsafe impl Send for SharedCell {}
unsafe impl Sync for SharedCell {}

/// A RAM-backed block device shareable across reactor threads.
///
/// Real multi-queue NVMe hands each core its own queue pair against one
/// device and leaves LBA-range coherence to the host: the device does
/// not serialize queues, and two queues writing the same LBA at the same
/// instant get an unspecified (per-sector atomic) outcome. This type
/// mirrors that contract so a sharded target can serve one storage
/// service from N threads with **no lock on the data path**:
///
/// * `read`/`write` take `&self` and are safe to call concurrently for
///   **disjoint** LBA ranges;
/// * issuing a write concurrently with any overlapping read or write is
///   a protocol violation by the initiators (exactly like reusing a
///   published shm slot) — the fabric's ownership rules (one connection
///   per shard, application-level LBA ownership) are what prevent it,
///   not this type.
#[derive(Clone)]
pub struct SharedRamDisk {
    cell: Arc<SharedCell>,
}

impl SharedRamDisk {
    /// Creates a zero-filled shared disk of `blocks` blocks of
    /// `block_size` bytes.
    pub fn new(block_size: u32, blocks: u64) -> Self {
        RamDisk::new(block_size, blocks).into_shared()
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.cell.block_size
    }

    fn len(&self) -> usize {
        self.cell.len
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.len() as u64 / u64::from(self.cell.block_size)
    }

    /// Reads `count` blocks starting at `lba` into `buf`. See the type
    /// docs for the concurrency contract.
    pub fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        let (off, len) = check_range(
            self.cell.block_size,
            self.capacity_blocks(),
            lba,
            count,
            buf.len(),
        )?;
        // SAFETY: bounds checked above; per the multi-queue contract no
        // concurrent writer overlaps this range.
        unsafe {
            let base = (*self.cell.data.get()).as_ptr();
            std::ptr::copy_nonoverlapping(base.add(off), buf.as_mut_ptr(), len);
        }
        Ok(())
    }

    /// Writes `count` blocks starting at `lba` from `buf`. See the type
    /// docs for the concurrency contract.
    pub fn write(&self, lba: u64, count: u32, buf: &[u8]) -> Result<(), BlockError> {
        let (off, len) = check_range(
            self.cell.block_size,
            self.capacity_blocks(),
            lba,
            count,
            buf.len(),
        )?;
        // SAFETY: bounds checked above; per the multi-queue contract no
        // concurrent access overlaps this range.
        unsafe {
            let base = (*self.cell.data.get()).as_mut_ptr();
            std::ptr::copy_nonoverlapping(buf.as_ptr(), base.add(off), len);
        }
        Ok(())
    }

    /// Zeroes `count` blocks starting at `lba` in place (NVMe Write
    /// Zeroes), allocation-free. See the type docs for the concurrency
    /// contract.
    pub fn write_zeroes(&self, lba: u64, count: u32) -> Result<(), BlockError> {
        let expected = count as usize * self.cell.block_size as usize;
        let (off, len) = check_range(
            self.cell.block_size,
            self.capacity_blocks(),
            lba,
            count,
            expected,
        )?;
        // SAFETY: bounds checked above; per the multi-queue contract no
        // concurrent access overlaps this range.
        unsafe {
            let base = (*self.cell.data.get()).as_mut_ptr();
            std::ptr::write_bytes(base.add(off), 0, len);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut d = RamDisk::new(512, 128);
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        d.write(4, 2, &payload).unwrap();
        let mut out = vec![0u8; 1024];
        d.read(4, 2, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let d = RamDisk::new(512, 8);
        let mut out = vec![0xffu8; 512];
        d.read(7, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = RamDisk::new(512, 8);
        let buf = vec![0u8; 512];
        assert!(matches!(
            d.write(8, 1, &buf),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.write(7, 2, &vec![0u8; 1024]),
            Err(BlockError::OutOfRange { .. })
        ));
        // Overflow-safe.
        assert!(matches!(
            d.write(u64::MAX, 1, &buf),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn zero_count_rejected() {
        let d = RamDisk::new(512, 8);
        let mut buf = vec![];
        assert!(matches!(
            d.read(0, 0, &mut buf),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn buffer_length_must_match() {
        let d = RamDisk::new(512, 8);
        let mut small = vec![0u8; 100];
        let err = d.read(0, 1, &mut small).unwrap_err();
        assert_eq!(
            err,
            BlockError::BadBuffer {
                expected: 512,
                got: 100
            }
        );
        assert!(err.to_string().contains("100"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_size_rejected() {
        let _ = RamDisk::new(500, 8);
    }

    #[test]
    fn shared_disk_preserves_bytes_across_conversion() {
        let mut d = RamDisk::new(512, 16);
        d.write(3, 1, &[0x42u8; 512]).unwrap();
        let shared = d.into_shared();
        assert_eq!(shared.block_size(), 512);
        assert_eq!(shared.capacity_blocks(), 16);
        let mut out = [0u8; 512];
        shared.read(3, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0x42));
        // Writes through one clone are visible through another.
        let view = shared.clone();
        shared.write(5, 1, &[7u8; 512]).unwrap();
        view.read(5, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 7));
    }

    #[test]
    fn shared_disk_rejects_bad_ranges() {
        let d = SharedRamDisk::new(512, 4);
        let mut buf = [0u8; 512];
        assert!(matches!(
            d.read(4, 1, &mut buf),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.write(0, 1, &buf[..100]),
            Err(BlockError::BadBuffer { .. })
        ));
        assert!(matches!(
            d.write(u64::MAX, 1, &buf),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn shared_disk_disjoint_ranges_from_many_threads() {
        // The multi-queue contract in action: 4 threads, disjoint LBA
        // ranges, no lock — every byte must land.
        let d = SharedRamDisk::new(512, 64);
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let d = d.clone();
                std::thread::spawn(move || {
                    for i in 0..16u64 {
                        let lba = t * 16 + i;
                        d.write(lba, 1, &[(lba % 251) as u8 + 1; 512]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut out = [0u8; 512];
        for lba in 0..64u64 {
            d.read(lba, 1, &mut out).unwrap();
            assert!(
                out.iter().all(|&b| b == (lba % 251) as u8 + 1),
                "lba {lba} lost its write"
            );
        }
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut d = RamDisk::new(512, 8);
        d.write(0, 1, &[1u8; 512]).unwrap();
        d.write(0, 1, &[2u8; 512]).unwrap();
        let mut out = [0u8; 512];
        d.read(0, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 2));
    }
}
