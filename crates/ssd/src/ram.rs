//! RAM-backed block store for the real (threaded) runtime.
//!
//! Plays the role QEMU's RAM-backed NVMe emulation plays in the paper: a
//! functional device that actually stores and returns bytes, so the real
//! NVMe-oF target in `oaf-nvmeof` can serve genuine reads and writes in
//! examples and integration tests.

use std::fmt;

/// Errors from block-level access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// LBA range exceeds the device capacity.
    OutOfRange {
        /// First LBA of the offending access.
        lba: u64,
        /// Block count of the offending access.
        count: u32,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// Buffer length does not match `count * block_size`.
    BadBuffer {
        /// Expected byte length.
        expected: usize,
        /// Provided byte length.
        got: usize,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange {
                lba,
                count,
                capacity,
            } => {
                write!(
                    f,
                    "access [{lba}, {lba}+{count}) beyond capacity {capacity}"
                )
            }
            BlockError::BadBuffer { expected, got } => {
                write!(f, "buffer length {got} != expected {expected}")
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// A RAM-backed block device.
pub struct RamDisk {
    block_size: u32,
    data: Vec<u8>,
}

impl RamDisk {
    /// Creates a zero-filled disk of `blocks` blocks of `block_size` bytes.
    pub fn new(block_size: u32, blocks: u64) -> Self {
        assert!(
            block_size > 0 && block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        let len = (blocks * u64::from(block_size)) as usize;
        RamDisk {
            block_size,
            data: vec![0u8; len],
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.block_size
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.data.len() as u64 / u64::from(self.block_size)
    }

    fn check(&self, lba: u64, count: u32, buf_len: usize) -> Result<(usize, usize), BlockError> {
        let cap = self.capacity_blocks();
        let end = lba.checked_add(u64::from(count)).filter(|&e| e <= cap);
        if count == 0 || end.is_none() {
            return Err(BlockError::OutOfRange {
                lba,
                count,
                capacity: cap,
            });
        }
        let expected = count as usize * self.block_size as usize;
        if buf_len != expected {
            return Err(BlockError::BadBuffer {
                expected,
                got: buf_len,
            });
        }
        let off = (lba * u64::from(self.block_size)) as usize;
        Ok((off, expected))
    }

    /// Reads `count` blocks starting at `lba` into `buf`.
    pub fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        let (off, len) = self.check(lba, count, buf.len())?;
        buf.copy_from_slice(&self.data[off..off + len]);
        Ok(())
    }

    /// Writes `count` blocks starting at `lba` from `buf`.
    pub fn write(&mut self, lba: u64, count: u32, buf: &[u8]) -> Result<(), BlockError> {
        let (off, len) = self.check(lba, count, buf.len())?;
        self.data[off..off + len].copy_from_slice(buf);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut d = RamDisk::new(512, 128);
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 251) as u8).collect();
        d.write(4, 2, &payload).unwrap();
        let mut out = vec![0u8; 1024];
        d.read(4, 2, &mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let d = RamDisk::new(512, 8);
        let mut out = vec![0xffu8; 512];
        d.read(7, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = RamDisk::new(512, 8);
        let buf = vec![0u8; 512];
        assert!(matches!(
            d.write(8, 1, &buf),
            Err(BlockError::OutOfRange { .. })
        ));
        assert!(matches!(
            d.write(7, 2, &vec![0u8; 1024]),
            Err(BlockError::OutOfRange { .. })
        ));
        // Overflow-safe.
        assert!(matches!(
            d.write(u64::MAX, 1, &buf),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn zero_count_rejected() {
        let d = RamDisk::new(512, 8);
        let mut buf = vec![];
        assert!(matches!(
            d.read(0, 0, &mut buf),
            Err(BlockError::OutOfRange { .. })
        ));
    }

    #[test]
    fn buffer_length_must_match() {
        let d = RamDisk::new(512, 8);
        let mut small = vec![0u8; 100];
        let err = d.read(0, 1, &mut small).unwrap_err();
        assert_eq!(
            err,
            BlockError::BadBuffer {
                expected: 512,
                got: 100
            }
        );
        assert!(err.to_string().contains("100"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_size_rejected() {
        let _ = RamDisk::new(500, 8);
    }

    #[test]
    fn overlapping_writes_last_wins() {
        let mut d = RamDisk::new(512, 8);
        d.write(0, 1, &[1u8; 512]).unwrap();
        d.write(0, 1, &[2u8; 512]).unwrap();
        let mut out = [0u8; 512];
        d.read(0, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 2));
    }
}
