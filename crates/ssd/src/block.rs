//! The block-device abstraction behind every NVMe namespace.
//!
//! [`BlockStore`] is the contract a backing store must meet to sit
//! behind the target's `Namespace`: fixed-geometry block reads/writes,
//! Write Zeroes, TRIM (Dataset Management), and the durability pair —
//! an FUA bit on writes and an explicit flush. The RAM-backed stores in
//! [`crate::ram`] implement it trivially (RAM is "always durable", so
//! FUA and flush are no-ops and TRIM is a zero-fill); the file-backed
//! log-structured store in `oaf-store` implements it with a real intent
//! log and `fsync`.

use crate::ram::{BlockError, RamDisk, SharedRamDisk};

/// A fixed-geometry block device.
///
/// Geometry is immutable after construction. All ranges are validated
/// the same way ([`check_range`]): `count` must be ≥ 1, `lba + count`
/// must fit the capacity, and payload buffers must be exactly
/// `count * block_size` bytes.
///
/// [`check_range`]: crate::ram::check_range
pub trait BlockStore: Send {
    /// Block size in bytes (a power of two).
    fn block_size(&self) -> u32;

    /// Capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Reads `count` blocks starting at `lba` into `buf`.
    fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError>;

    /// Writes `count` blocks starting at `lba` from `buf`. With `fua`
    /// set the write must be durable before the call returns (Force
    /// Unit Access); stores without a volatile cache may ignore it.
    fn write(&mut self, lba: u64, count: u32, buf: &[u8], fua: bool) -> Result<(), BlockError>;

    /// Zeroes `count` blocks starting at `lba` without a payload
    /// transfer (NVMe Write Zeroes). Must not allocate a staging buffer.
    fn write_zeroes(&mut self, lba: u64, count: u32) -> Result<(), BlockError>;

    /// Deallocates `count` blocks starting at `lba` (NVMe Dataset
    /// Management / TRIM). Subsequent reads of the range return zeroes.
    fn trim(&mut self, lba: u64, count: u32) -> Result<(), BlockError>;

    /// Makes every acknowledged write durable (NVMe Flush). A no-op for
    /// stores without a volatile cache.
    fn flush(&mut self) -> Result<(), BlockError>;
}

impl BlockStore for RamDisk {
    fn block_size(&self) -> u32 {
        RamDisk::block_size(self)
    }

    fn capacity_blocks(&self) -> u64 {
        RamDisk::capacity_blocks(self)
    }

    fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        RamDisk::read(self, lba, count, buf)
    }

    fn write(&mut self, lba: u64, count: u32, buf: &[u8], _fua: bool) -> Result<(), BlockError> {
        RamDisk::write(self, lba, count, buf)
    }

    fn write_zeroes(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        RamDisk::write_zeroes(self, lba, count)
    }

    fn trim(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        // RAM-backed deallocate: reads after TRIM must return zeroes,
        // which is exactly Write Zeroes here.
        RamDisk::write_zeroes(self, lba, count)
    }

    fn flush(&mut self) -> Result<(), BlockError> {
        Ok(())
    }
}

impl BlockStore for SharedRamDisk {
    fn block_size(&self) -> u32 {
        SharedRamDisk::block_size(self)
    }

    fn capacity_blocks(&self) -> u64 {
        SharedRamDisk::capacity_blocks(self)
    }

    fn read(&self, lba: u64, count: u32, buf: &mut [u8]) -> Result<(), BlockError> {
        SharedRamDisk::read(self, lba, count, buf)
    }

    fn write(&mut self, lba: u64, count: u32, buf: &[u8], _fua: bool) -> Result<(), BlockError> {
        SharedRamDisk::write(self, lba, count, buf)
    }

    fn write_zeroes(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        SharedRamDisk::write_zeroes(self, lba, count)
    }

    fn trim(&mut self, lba: u64, count: u32) -> Result<(), BlockError> {
        SharedRamDisk::write_zeroes(self, lba, count)
    }

    fn flush(&mut self) -> Result<(), BlockError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn BlockStore) {
        let bs = store.block_size() as usize;
        let payload = vec![0xa5u8; bs];
        store.write(1, 1, &payload, true).unwrap();
        store.flush().unwrap();
        let mut out = vec![0u8; bs];
        store.read(1, 1, &mut out).unwrap();
        assert_eq!(out, payload);
        store.trim(1, 1).unwrap();
        store.read(1, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "TRIM must read back zero");
        store.write(2, 1, &payload, false).unwrap();
        store.write_zeroes(2, 1).unwrap();
        store.read(2, 1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn ram_disks_honor_the_trait_contract() {
        exercise(&mut RamDisk::new(512, 16));
        exercise(&mut SharedRamDisk::new(512, 16));
    }
}
