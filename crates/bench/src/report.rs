//! Report types: printable tables and shape checks.

use serde::Serialize;

/// A labelled data table (one per figure panel).
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Panel title (e.g. "Aggregate read bandwidth (MiB/s)").
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Rows: label + one value per header.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) -> &mut Self {
        let label = label.into();
        assert_eq!(
            values.len(),
            self.headers.len(),
            "row '{label}' arity mismatch"
        );
        self.rows.push((label, values));
        self
    }

    /// Looks a value up by row label and column index.
    pub fn get(&self, label: &str, col: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|(l, _)| l == label)
            .and_then(|(_, v)| v.get(col))
            .copied()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("  {}\n", self.title));
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([8])
            .max()
            .unwrap_or(8)
            .max(4);
        let col_w = 12usize;
        out.push_str(&format!("  {:label_w$}", ""));
        for h in &self.headers {
            out.push_str(&format!(" {h:>col_w$}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("  {label:label_w$}"));
            for v in values {
                let cell = if v.abs() >= 1000.0 {
                    format!("{v:.0}")
                } else if v.abs() >= 10.0 {
                    format!("{v:.1}")
                } else {
                    format!("{v:.3}")
                };
                out.push_str(&format!(" {cell:>col_w$}"));
            }
            out.push('\n');
        }
        out
    }
}

/// One qualitative claim from the paper, checked against the measured
/// values.
#[derive(Clone, Debug, Serialize)]
pub struct ShapeCheck {
    /// What the paper claims (with its section/figure reference).
    pub claim: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the measurement matches the claim's shape.
    pub pass: bool,
}

impl ShapeCheck {
    /// A check comparing a measured ratio to the paper's ratio within a
    /// tolerance band (shapes, not decimals: default ±40%).
    pub fn ratio(
        claim: impl Into<String>,
        paper: f64,
        measured: f64,
        rel_tolerance: f64,
    ) -> ShapeCheck {
        let pass =
            measured.is_finite() && paper > 0.0 && (measured / paper - 1.0).abs() <= rel_tolerance;
        ShapeCheck {
            claim: claim.into(),
            measured: format!(
                "{measured:.2} (paper: {paper:.2}, tol ±{:.0}%)",
                rel_tolerance * 100.0
            ),
            pass,
        }
    }

    /// A check that an ordering/threshold holds.
    pub fn holds(claim: impl Into<String>, measured: impl Into<String>, pass: bool) -> ShapeCheck {
        ShapeCheck {
            claim: claim.into(),
            measured: measured.into(),
            pass,
        }
    }
}

/// A fully rendered figure reproduction.
#[derive(Clone, Debug, Serialize)]
pub struct FigureReport {
    /// Figure/table id, e.g. "fig11".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Workload/parameter description.
    pub setup: String,
    /// Data panels.
    pub tables: Vec<Table>,
    /// Shape checks.
    pub checks: Vec<ShapeCheck>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, setup: &str) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            setup: setup.into(),
            tables: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Whether all shape checks passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Renders the report for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        out.push_str(&format!("  setup: {}\n\n", self.setup));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for c in &self.checks {
            out.push_str(&format!(
                "  [{}] {}\n        measured: {}\n",
                if c.pass { "PASS" } else { "FAIL" },
                c.claim,
                c.measured
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("bw", &["4K", "128K"]);
        t.row("TCP-10G", vec![400.0, 1100.0]);
        t.row("oAF", vec![900.0, 7800.0]);
        assert_eq!(t.get("oAF", 1), Some(7800.0));
        assert_eq!(t.get("nope", 0), None);
        let s = t.render();
        assert!(s.contains("TCP-10G"));
        assert!(s.contains("7800"));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row("r", vec![1.0]);
    }

    #[test]
    fn ratio_check_tolerance() {
        assert!(ShapeCheck::ratio("x", 7.1, 6.0, 0.4).pass);
        assert!(!ShapeCheck::ratio("x", 7.1, 2.0, 0.4).pass);
        assert!(!ShapeCheck::ratio("x", 0.0, 1.0, 0.4).pass);
    }

    #[test]
    fn report_renders_and_judges() {
        let mut r = FigureReport::new("fig0", "test", "setup");
        r.checks.push(ShapeCheck::holds("a > b", "a=2 b=1", true));
        assert!(r.all_pass());
        r.checks.push(ShapeCheck::holds("c > d", "c=0 d=1", false));
        assert!(!r.all_pass());
        let s = r.render();
        assert!(s.contains("[PASS]"));
        assert!(s.contains("[FAIL]"));
    }
}
