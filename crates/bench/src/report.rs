//! Report types: printable tables and shape checks.

/// A labelled data table (one per figure panel).
#[derive(Clone, Debug)]
pub struct Table {
    /// Panel title (e.g. "Aggregate read bandwidth (MiB/s)").
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Rows: label + one value per header.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, label: impl Into<String>, values: Vec<f64>) -> &mut Self {
        let label = label.into();
        assert_eq!(
            values.len(),
            self.headers.len(),
            "row '{label}' arity mismatch"
        );
        self.rows.push((label, values));
        self
    }

    /// Looks a value up by row label and column index.
    pub fn get(&self, label: &str, col: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|(l, _)| l == label)
            .and_then(|(_, v)| v.get(col))
            .copied()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("  {}\n", self.title));
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([8])
            .max()
            .unwrap_or(8)
            .max(4);
        let col_w = 12usize;
        out.push_str(&format!("  {:label_w$}", ""));
        for h in &self.headers {
            out.push_str(&format!(" {h:>col_w$}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("  {label:label_w$}"));
            for v in values {
                let cell = if v.abs() >= 1000.0 {
                    format!("{v:.0}")
                } else if v.abs() >= 10.0 {
                    format!("{v:.1}")
                } else {
                    format!("{v:.3}")
                };
                out.push_str(&format!(" {cell:>col_w$}"));
            }
            out.push('\n');
        }
        out
    }
}

/// One qualitative claim from the paper, checked against the measured
/// values.
#[derive(Clone, Debug)]
pub struct ShapeCheck {
    /// What the paper claims (with its section/figure reference).
    pub claim: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the measurement matches the claim's shape.
    pub pass: bool,
}

impl ShapeCheck {
    /// A check comparing a measured ratio to the paper's ratio within a
    /// tolerance band (shapes, not decimals: default ±40%).
    pub fn ratio(
        claim: impl Into<String>,
        paper: f64,
        measured: f64,
        rel_tolerance: f64,
    ) -> ShapeCheck {
        let pass =
            measured.is_finite() && paper > 0.0 && (measured / paper - 1.0).abs() <= rel_tolerance;
        ShapeCheck {
            claim: claim.into(),
            measured: format!(
                "{measured:.2} (paper: {paper:.2}, tol ±{:.0}%)",
                rel_tolerance * 100.0
            ),
            pass,
        }
    }

    /// A check that an ordering/threshold holds.
    pub fn holds(claim: impl Into<String>, measured: impl Into<String>, pass: bool) -> ShapeCheck {
        ShapeCheck {
            claim: claim.into(),
            measured: measured.into(),
            pass,
        }
    }
}

/// A fully rendered figure reproduction.
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Figure/table id, e.g. "fig11".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Workload/parameter description.
    pub setup: String,
    /// Data panels.
    pub tables: Vec<Table>,
    /// Shape checks.
    pub checks: Vec<ShapeCheck>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, setup: &str) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            setup: setup.into(),
            tables: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Whether all shape checks passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Renders the report for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        out.push_str(&format!("  setup: {}\n\n", self.setup));
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for c in &self.checks {
            out.push_str(&format!(
                "  [{}] {}\n        measured: {}\n",
                if c.pass { "PASS" } else { "FAIL" },
                c.claim,
                c.measured
            ));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Inf; report them as null like serde_json does.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Table {
    /// Machine-readable JSON form (field names match the old
    /// serde-derived layout, so downstream tooling keeps working).
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self
            .headers
            .iter()
            .map(|h| format!("\"{}\"", json_escape(h)))
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|(label, values)| {
                let vals: Vec<String> = values.iter().map(|&v| json_f64(v)).collect();
                format!("[\"{}\",[{}]]", json_escape(label), vals.join(","))
            })
            .collect();
        format!(
            "{{\"title\":\"{}\",\"headers\":[{}],\"rows\":[{}]}}",
            json_escape(&self.title),
            headers.join(","),
            rows.join(",")
        )
    }
}

impl ShapeCheck {
    /// Machine-readable JSON form.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"claim\":\"{}\",\"measured\":\"{}\",\"pass\":{}}}",
            json_escape(&self.claim),
            json_escape(&self.measured),
            self.pass
        )
    }
}

impl FigureReport {
    /// Machine-readable JSON form.
    pub fn to_json(&self) -> String {
        let tables: Vec<String> = self.tables.iter().map(|t| t.to_json()).collect();
        let checks: Vec<String> = self.checks.iter().map(|c| c.to_json()).collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"setup\":\"{}\",\"tables\":[{}],\"checks\":[{}]}}",
            json_escape(&self.id),
            json_escape(&self.title),
            json_escape(&self.setup),
            tables.join(","),
            checks.join(",")
        )
    }
}

/// Serializes a report list as a JSON array.
pub fn reports_to_json(reports: &[FigureReport]) -> String {
    let items: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("bw", &["4K", "128K"]);
        t.row("TCP-10G", vec![400.0, 1100.0]);
        t.row("oAF", vec![900.0, 7800.0]);
        assert_eq!(t.get("oAF", 1), Some(7800.0));
        assert_eq!(t.get("nope", 0), None);
        let s = t.render();
        assert!(s.contains("TCP-10G"));
        assert!(s.contains("7800"));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row("r", vec![1.0]);
    }

    #[test]
    fn ratio_check_tolerance() {
        assert!(ShapeCheck::ratio("x", 7.1, 6.0, 0.4).pass);
        assert!(!ShapeCheck::ratio("x", 7.1, 2.0, 0.4).pass);
        assert!(!ShapeCheck::ratio("x", 0.0, 1.0, 0.4).pass);
    }

    #[test]
    fn report_renders_and_judges() {
        let mut r = FigureReport::new("fig0", "test", "setup");
        r.checks.push(ShapeCheck::holds("a > b", "a=2 b=1", true));
        assert!(r.all_pass());
        r.checks.push(ShapeCheck::holds("c > d", "c=0 d=1", false));
        assert!(!r.all_pass());
        let s = r.render();
        assert!(s.contains("[PASS]"));
        assert!(s.contains("[FAIL]"));
    }

    #[test]
    fn json_export_is_well_formed() {
        let mut t = Table::new("bw \"quoted\"", &["4K"]);
        t.row("oAF\n", vec![900.0, f64::NAN][..1].to_vec());
        let mut r = FigureReport::new("fig11", "title", "setup");
        r.tables.push(t);
        r.checks.push(ShapeCheck::holds("c", "m", true));
        let json = reports_to_json(&[r]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"pass\":true"));
        // Balanced braces/brackets outside strings ⇒ parseable shape.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
