//! The figure-reproduction harness.
//!
//! One module per table/figure of the paper's evaluation (§3 and §5).
//! Each figure module builds the paper's exact workload, runs it through
//! the simulation models, prints the same rows/series the paper reports,
//! and evaluates *shape checks* — the qualitative claims the paper makes
//! about that figure (who wins, by roughly what factor, where crossovers
//! fall). Absolute numbers are not expected to match the authors'
//! testbed; the shapes are.
//!
//! Run with:
//!
//! ```text
//! cargo run -p oaf-bench --release --bin figures -- all
//! cargo run -p oaf-bench --release --bin figures -- fig11 fig13
//! cargo run -p oaf-bench --release --bin figures -- --json out.json all
//! ```

pub mod config;
pub mod figures;
pub mod report;

pub use report::{FigureReport, ShapeCheck, Table};
