//! Shared harness configuration: durations, seeds, fabric line-ups.

use oaf_core::sim::{FabricKind, ShmVariant, WorkloadSpec};
use oaf_simnet::time::SimDuration;

/// Virtual run time used by most figures. The paper runs 20 wall-clock
/// seconds (§5.1); virtual statistics converge much sooner, and the
/// tail-latency figure scales this up itself.
pub const RUN: SimDuration = SimDuration::from_millis(800);

/// Virtual run time for tail-latency studies (needs enough samples for
/// p99.99).
pub const RUN_TAIL: SimDuration = SimDuration::from_secs(4);

/// Base RNG seed; figures offset it so no two share streams.
pub const SEED: u64 = 0x0af_5eed;

/// The transport line-up of Figs. 2–3 (existing NVMe-oF schemes).
pub fn existing_fabrics() -> Vec<(&'static str, FabricKind)> {
    vec![
        ("TCP-10G", FabricKind::TcpStock { gbps: 10.0 }),
        ("TCP-25G", FabricKind::TcpStock { gbps: 25.0 }),
        ("TCP-100G", FabricKind::TcpStock { gbps: 100.0 }),
        ("RDMA-56G", FabricKind::RdmaIb),
    ]
}

/// The full line-up of Figs. 11–15 (existing + NVMe-oAF).
pub fn full_fabrics() -> Vec<(&'static str, FabricKind)> {
    let mut v = existing_fabrics();
    v.push((
        "NVMe-oAF",
        FabricKind::Shm {
            variant: ShmVariant::ZeroCopy,
        },
    ));
    v
}

/// Standard workload builder with the harness run time and seed.
pub fn workload(io_size: u64, read_fraction: f64) -> WorkloadSpec {
    WorkloadSpec::new(io_size, read_fraction)
        .with_duration(RUN)
        .with_seed(SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineups_are_distinct_and_complete() {
        assert_eq!(existing_fabrics().len(), 4);
        assert_eq!(full_fabrics().len(), 5);
        let names: Vec<_> = full_fabrics().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"NVMe-oAF"));
    }

    #[test]
    fn workload_uses_harness_defaults() {
        let w = workload(4096, 0.5);
        assert_eq!(w.duration, RUN);
        assert_eq!(w.seed, SEED);
        assert_eq!(w.queue_depth, 128);
    }
}
