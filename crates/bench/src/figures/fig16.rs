//! Fig. 16: h5bench config-1 vs NFS (§5.7.1).
//!
//! One dataset of 16M particles written and read through the VOL.
//! Anchors: NVMe-oAF ≈ 5.95× NFS write bandwidth and ≈ 5.68× NFS read
//! bandwidth — the single large `H5Dwrite` streams through the
//! shared-memory channel at full depth, while NFS is drain-/server-
//! limited.

use std::cell::Cell;
use std::rc::Rc;

use oaf_core::sim::{FabricKind, ShmVariant};
use oaf_h5::format::MemExtent;
use oaf_h5::kernel::{run_read, run_write, KernelConfig};
use oaf_h5::nfs::{replay_read, replay_write, NfsParams};
use oaf_h5::replay::replay;
use oaf_h5::vol::{H5Vol, TracingExtent};
use oaf_h5::IoTrace;
use oaf_simnet::units::KIB;

use crate::{FigureReport, ShapeCheck, Table};

const OAF: FabricKind = FabricKind::Shm {
    variant: ShmVariant::ZeroCopy,
};
/// The adaptive fabric's slot size: I/Os split at this boundary.
const SLOT: u64 = 128 * KIB;

/// Captures `(write_trace, read_trace)` for a kernel configuration.
pub fn capture_traces(cfg: &KernelConfig) -> (IoTrace, IoTrace) {
    let hint = Rc::new(Cell::new(1usize));
    let capacity = (cfg.total_bytes() + (1 << 20)) as usize;
    let mut vol = H5Vol::create(TracingExtent::new(MemExtent::new(capacity), hint.clone()))
        .expect("container");
    run_write(&mut vol, cfg, &hint).expect("write kernel");
    let after_write = vol.extent().trace().len();
    run_read(&mut vol, cfg, &hint, false).expect("read kernel");
    let all = vol.extent().trace().records();
    let mut wt = IoTrace::new();
    for &r in &all[..after_write] {
        wt.push(r);
    }
    let mut rt = IoTrace::new();
    for &r in &all[after_write..] {
        rt.push(r);
    }
    (wt, rt)
}

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig16",
        "h5bench config-1 (16M particles, 1 dataset): NVMe-oAF vs NFS",
        "write + full-read kernels via the VOL; oAF = zero-copy shm channel, NFS = async 25G mount",
    );

    let cfg = KernelConfig::config1();
    let (wt, rt) = capture_traces(&cfg);
    let nfs = NfsParams::paper_mount();

    let oaf_w = replay(&wt, OAF, SLOT).bandwidth_mib();
    let oaf_r = replay(&rt, OAF, SLOT).bandwidth_mib();
    let nfs_w = replay_write(&wt, &nfs).bandwidth_mib();
    let nfs_r = replay_read(&rt, &nfs).bandwidth_mib();

    let mut t = Table::new("Bandwidth (MiB/s)", &["write", "read"]);
    t.row("NVMe-oAF", vec![oaf_w, oaf_r]);
    t.row("NFS", vec![nfs_w, nfs_r]);
    rep.tables.push(t);

    rep.checks.push(ShapeCheck::ratio(
        "oAF ~= 5.95x NFS write bandwidth for one dataset (§5.7.1)",
        5.95,
        oaf_w / nfs_w,
        0.45,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "oAF ~= 5.68x NFS read bandwidth for one dataset (§5.7.1)",
        5.68,
        oaf_r / nfs_r,
        0.45,
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig16_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
