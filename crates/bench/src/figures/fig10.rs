//! Fig. 10: busy-poll budget sweep (§4.5).
//!
//! 128 KiB sequential reads and writes over TCP-10G, budgets 0 (pure
//! interrupts), 25, 50, 100 µs. Anchors: a short budget (25 µs) *hurts*
//! writes — below even interrupt mode — because write waits are long, so
//! the budget burns and the interrupt still fires; 100 µs is best for
//! writes; reads peak at 25–50 µs and sag at 100 µs.

use oaf_core::sim::{run_uniform, FabricKind};
use oaf_simnet::time::SimDuration;
use oaf_simnet::units::KIB;

use crate::config::workload;
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig10",
        "Throughput vs busy-poll budget, NVMe/TCP-10G, 128KiB",
        "1 stream, QD128, sequential; budget 0 = interrupt-driven",
    );

    let budgets = [0u64, 25, 50, 100];
    let mut t = Table::new("Throughput (MiB/s)", &["read", "write"]);
    let mut read_bw = Vec::new();
    let mut write_bw = Vec::new();
    for &b in &budgets {
        let fabric = FabricKind::TcpOpt {
            gbps: 10.0,
            chunk: 128 * KIB,
            busy_poll: SimDuration::from_micros(b),
        };
        let r = run_uniform(fabric, 1, workload(128 * KIB, 1.0));
        let w = run_uniform(fabric, 1, workload(128 * KIB, 0.0));
        t.row(
            if b == 0 {
                "interrupt".to_string()
            } else {
                format!("{b}us")
            },
            vec![r.bandwidth_mib(), w.bandwidth_mib()],
        );
        read_bw.push(r.bandwidth_mib());
        write_bw.push(w.bandwidth_mib());
    }
    rep.tables.push(t);

    rep.checks.push(ShapeCheck::holds(
        "25us polling decreases write throughput below interrupt mode (§4.5)",
        format!(
            "write: 25us {:.0} vs interrupt {:.0} MiB/s",
            write_bw[1], write_bw[0]
        ),
        write_bw[1] < write_bw[0],
    ));
    rep.checks.push(ShapeCheck::holds(
        "100us gives the highest write throughput (§4.5)",
        format!(
            "write MiB/s by budget: {:?}",
            write_bw.iter().map(|x| x.round()).collect::<Vec<_>>()
        ),
        write_bw[3] >= write_bw[0]
            && write_bw[3] >= write_bw[1]
            && write_bw[3] >= write_bw[2] * 0.98,
    ));
    rep.checks.push(ShapeCheck::holds(
        "reads peak at 25-50us (§4.5)",
        format!(
            "read MiB/s by budget: {:?}",
            read_bw.iter().map(|x| x.round()).collect::<Vec<_>>()
        ),
        read_bw[1].max(read_bw[2]) >= read_bw[0] && read_bw[1].max(read_bw[2]) >= read_bw[3],
    ));
    rep.checks.push(ShapeCheck::holds(
        "high budgets degrade reads relative to their peak (§4.5)",
        format!(
            "read: 100us {:.0} vs peak {:.0}",
            read_bw[3],
            read_bw[1].max(read_bw[2])
        ),
        read_bw[3] <= read_bw[1].max(read_bw[2]),
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig10_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
