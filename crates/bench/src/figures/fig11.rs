//! Fig. 11: overall benefits of NVMe-oAF.
//!
//! Same setup as Fig. 2 plus the adaptive fabric. Headline anchors
//! (§5.2): oAF peak read bandwidth ≈ 7.1× TCP-10G; at 128 KiB oAF read
//! latency ≈ TCP-10G/4.2 and write latency ≈ TCP-25G/2.97; oAF ≈ 1.78×
//! RDMA for 128 KiB reads from four SSDs.

use oaf_core::sim::run_uniform;
use oaf_simnet::units::KIB;

use crate::config::{full_fabrics, workload};
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig11",
        "NVMe-oAF vs existing transports: bandwidth and latency, 4 clients -> 4 SSDs",
        "sequential, QD128, 4KiB & 128KiB; oAF = shared-memory zero-copy channel",
    );

    let sizes = [4 * KIB, 128 * KIB];
    let mut bw_read = Table::new("Aggregate read bandwidth (MiB/s)", &["4K", "128K"]);
    let mut bw_write = Table::new("Aggregate write bandwidth (MiB/s)", &["4K", "128K"]);
    let mut lat_read = Table::new("Average read latency (µs)", &["4K", "128K"]);
    let mut lat_write = Table::new("Average write latency (µs)", &["4K", "128K"]);

    for (name, fabric) in full_fabrics() {
        let reads: Vec<_> = sizes
            .iter()
            .map(|&io| run_uniform(fabric, 4, workload(io, 1.0)))
            .collect();
        let writes: Vec<_> = sizes
            .iter()
            .map(|&io| run_uniform(fabric, 4, workload(io, 0.0)))
            .collect();
        bw_read.row(name, reads.iter().map(|m| m.bandwidth_mib()).collect());
        bw_write.row(name, writes.iter().map(|m| m.bandwidth_mib()).collect());
        lat_read.row(name, reads.iter().map(|m| m.reads.mean_lat_us()).collect());
        lat_write.row(
            name,
            writes.iter().map(|m| m.writes.mean_lat_us()).collect(),
        );
    }

    let g = |t: &Table, r: &str, c: usize| t.get(r, c).unwrap_or(f64::NAN);
    rep.checks.push(ShapeCheck::ratio(
        "oAF peak read bandwidth ~= 7.1x TCP-10G (§5.2)",
        7.1,
        g(&bw_read, "NVMe-oAF", 1) / g(&bw_read, "TCP-10G", 1),
        0.45,
    ));
    // In a fixed-QD closed loop, Little's law pins the average-latency
    // ratio to the bandwidth ratio, so the paper's 4.2x/2.97x latency
    // reductions (measured on its testbed with independent runs) appear
    // here as at-least thresholds; see EXPERIMENTS.md.
    let lat_ratio_10g = g(&lat_read, "TCP-10G", 1) / g(&lat_read, "NVMe-oAF", 1);
    rep.checks.push(ShapeCheck::holds(
        "TCP-10G 128K read latency >= 4.2x oAF (§5.2 reports 4.2x)",
        format!("measured {lat_ratio_10g:.2}x"),
        lat_ratio_10g >= 4.2 * 0.8,
    ));
    let lat_ratio_25g = g(&lat_write, "TCP-25G", 1) / g(&lat_write, "NVMe-oAF", 1);
    rep.checks.push(ShapeCheck::holds(
        "TCP-25G 128K write latency >= 2.97x oAF (§5.2 reports 2.97x)",
        format!("measured {lat_ratio_25g:.2}x"),
        lat_ratio_25g >= 2.97 * 0.8,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "oAF ~= 1.78x RDMA for 128K reads x4 SSDs (§5.2)",
        1.78,
        g(&bw_read, "NVMe-oAF", 1) / g(&bw_read, "RDMA-56G", 1),
        0.45,
    ));
    rep.checks.push(ShapeCheck::holds(
        "TCP-25G ~= TCP-10G for 4K workloads (§5.2)",
        format!(
            "read 4K: 25G {:.0} vs 10G {:.0} MiB/s",
            g(&bw_read, "TCP-25G", 0),
            g(&bw_read, "TCP-10G", 0)
        ),
        (g(&bw_read, "TCP-25G", 0) / g(&bw_read, "TCP-10G", 0)) < 1.5,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "TCP-100G read ~= 1.26x TCP-25G at 128K (§5.2)",
        1.26,
        g(&bw_read, "TCP-100G", 1) / g(&bw_read, "TCP-25G", 1),
        0.4,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "TCP-100G write ~= 1.48x TCP-25G at 128K (§5.2)",
        1.48,
        g(&bw_write, "TCP-100G", 1) / g(&bw_write, "TCP-25G", 1),
        0.4,
    ));

    rep.tables = vec![bw_read, bw_write, lat_read, lat_write];
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig11_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
