//! Fig. 9: finding the optimal NVMe/TCP chunk size (§4.5).
//!
//! Random reads over TCP-25G; the application-level chunk size is swept
//! from 64 KiB to 2 MiB for I/O streams of 128 KiB – 2 MiB. Anchors: very
//! small chunks hurt bandwidth (per-chunk CPU), very large chunks waste
//! target memory for little gain; 512 KiB is the sweet spot for 25 G.

use oaf_core::sim::{run_uniform, FabricKind, Pattern};
use oaf_core::tcp_opt::{ChunkCostModel, ChunkSelector};
use oaf_simnet::time::SimDuration;
use oaf_simnet::units::{Rate, KIB, MIB};

use crate::config::workload;
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig9",
        "Chunk-size sweep for NVMe/TCP-25G, random reads",
        "1 stream, QD128, chunk 64K..2M x I/O 128K..2M; plus the adaptive selector's pick",
    );

    let chunks = [64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB];
    let ios = [128 * KIB, 512 * KIB, MIB, 2 * MIB];

    let mut t = Table::new(
        "Bandwidth (MiB/s) by chunk size (rows) and I/O size (cols)",
        &["128K", "512K", "1M", "2M"],
    );
    let mut by_chunk: Vec<(u64, f64)> = Vec::new();
    for &chunk in &chunks {
        let mut row = Vec::new();
        let mut sum = 0.0;
        for &io in &ios {
            let m = run_uniform(
                FabricKind::TcpOpt {
                    gbps: 25.0,
                    chunk,
                    busy_poll: SimDuration::ZERO,
                },
                1,
                workload(io, 1.0).with_pattern(Pattern::Random),
            );
            row.push(m.bandwidth_mib());
            sum += m.bandwidth_mib();
        }
        t.row(format!("{}K", chunk / KIB), row);
        by_chunk.push((chunk, sum));
    }
    rep.tables.push(t);

    // The measured best chunk (by summed bandwidth).
    let best = by_chunk
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
        .0;
    // The analytic selector's pick (what the adaptive fabric would use).
    let selector = ChunkSelector::new(ChunkCostModel {
        per_chunk_cpu: SimDuration::from_micros(12),
        goodput: Rate::gbps(25.0).scaled(0.94),
        mem_quad_us_at_512k: 14.0,
    });
    let picked = selector.select(&ios);

    rep.checks.push(ShapeCheck::holds(
        "512K is near-optimal for 25G (§4.5): measured best within {256K, 512K, 1M}",
        format!("measured best chunk = {}K", best / KIB),
        (256 * KIB..=MIB).contains(&best),
    ));
    rep.checks.push(ShapeCheck::holds(
        "the adaptive selector picks 512K for 25G (§4.5)",
        format!("selector picked {}K", picked / KIB),
        picked == 512 * KIB,
    ));
    let small = by_chunk[0].1;
    let best_sum = by_chunk.iter().map(|x| x.1).fold(0.0, f64::max);
    rep.checks.push(ShapeCheck::holds(
        "very low chunk size hurts bandwidth (§4.5)",
        format!("64K sum {:.0} vs best sum {:.0}", small, best_sum),
        small < best_sum * 0.93,
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig9_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
