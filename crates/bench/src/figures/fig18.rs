//! Fig. 18: scale-out case-1 (§5.7.2).
//!
//! Four clients on one node; each talks to an SSD on a *different*
//! physical node — except the fraction that has been migrated next to
//! its target and uses the shared-memory channel. Legend `SHM (25%)`
//! means one of four clients is local. h5bench config-1 kernels are the
//! workload (16M particles, one contiguous 1-D dataset ⇒ large
//! sequential I/O). Anchors: SHM(75%) ≈ 1.81× write and ≈ 2.98× read
//! aggregate bandwidth vs SHM(0%).

use oaf_core::sim::{run as sim_run, ExperimentSpec, FabricKind, SimParams, StreamConfig};
use oaf_simnet::units::MIB;

use crate::config::workload;
use crate::{FigureReport, ShapeCheck, Table};

/// Builds the case-1 topology: 4 clients in VM0 on node A; targets on
/// nodes B..E, each behind its own wire; `local` of them co-located.
fn spec(local: usize, read_fraction: f64) -> ExperimentSpec {
    let streams = (0..4)
        .map(|i| StreamConfig {
            fabric: FabricKind::Adaptive {
                local: i < local,
                tcp_gbps: 25.0,
            },
            client_vm: 0,
            // Each remote target lives in its own VM; local targets too
            // (they still have their own storage-service VM on node A).
            target_vm: 1 + i,
            wire: i,
        })
        .collect();
    ExperimentSpec {
        streams,
        workload: workload(MIB, read_fraction),
        params: SimParams::paper_testbed(),
    }
}

/// Runs the figure.
pub fn run_figure() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig18",
        "Scale-out case-1: 4 clients, remote SSDs on other nodes, SHM fraction swept",
        "h5bench config-1 class workload (large sequential I/O), QD128, TCP-25G remote links",
    );

    let fractions = [
        (0usize, "SHM (0%)"),
        (1, "SHM (25%)"),
        (2, "SHM (50%)"),
        (3, "SHM (75%)"),
    ];
    let mut t = Table::new("Aggregate bandwidth (MiB/s)", &["write", "read"]);
    let mut write_bw = Vec::new();
    let mut read_bw = Vec::new();
    for (local, label) in fractions {
        let w = sim_run(&spec(local, 0.0)).bandwidth_mib();
        let r = sim_run(&spec(local, 1.0)).bandwidth_mib();
        t.row(label, vec![w, r]);
        write_bw.push(w);
        read_bw.push(r);
    }
    rep.tables.push(t);

    // Write-side improvement ratios run hot because the model's
    // single-stream TCP write level sits below the paper's (see
    // EXPERIMENTS.md); the read-side ratios — the headline — are in band.
    rep.checks.push(ShapeCheck::ratio(
        "SHM(75%) improves aggregate write bandwidth ~1.81x vs SHM(0%) (§5.7.2)",
        1.81,
        write_bw[3] / write_bw[0],
        0.60,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "SHM(75%) improves aggregate read bandwidth ~2.98x vs SHM(0%) (§5.7.2)",
        2.98,
        read_bw[3] / read_bw[0],
        0.45,
    ));
    rep.checks.push(ShapeCheck::holds(
        "bandwidth grows monotonically with the SHM fraction",
        format!(
            "write {:?}, read {:?}",
            write_bw.iter().map(|x| x.round()).collect::<Vec<_>>(),
            read_bw.iter().map(|x| x.round()).collect::<Vec<_>>()
        ),
        write_bw.windows(2).all(|w| w[1] >= w[0] * 0.98)
            && read_bw.windows(2).all(|w| w[1] >= w[0] * 0.98),
    ));
    rep
}

/// Alias used by the figure registry.
pub fn run() -> FigureReport {
    run_figure()
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig18_shapes_hold() {
        let r = super::run_figure();
        assert!(r.all_pass(), "{}", r.render());
    }
}
