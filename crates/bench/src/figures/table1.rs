//! Table 1: experiment configuration.
//!
//! The paper's Table 1 lists the physical testbed (Chameleon Cloud /
//! CloudLab nodes, VM shapes, kernels, OFED). This reproduction has no
//! testbed; its analog is the *model calibration* — the constants the
//! simulated fabrics are built from. Reporting them next to the figures
//! keeps the reproduction honest: every downstream number derives from
//! this table.

use oaf_core::sim::SimParams;

use crate::{FigureReport, ShapeCheck, Table};

/// Builds the configuration report.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "table1",
        "Experiment configuration (model calibration standing in for the paper's testbed)",
        "paper: CC Xeon E5-2670v3 + CL EPYC 7402P, 14-vCPU VMs, kernel 3.10, \
         QEMU-emulated NVMe, SR-IOV NICs; here: the model constants below",
    );

    let p = SimParams::paper_testbed();
    let r = SimParams::roce_physical();

    let mut t = Table::new(
        "Calibration constants (µs unless noted)",
        &["VM testbed", "RoCE physical"],
    );
    t.row(
        "cmd prep",
        vec![p.prep.as_micros_f64(), r.prep.as_micros_f64()],
    );
    t.row(
        "completion",
        vec![p.complete.as_micros_f64(), r.complete.as_micros_f64()],
    );
    t.row(
        "fill rate (GiB/s)",
        vec![
            p.fill_rate.as_bytes_per_sec() / (1u64 << 30) as f64,
            r.fill_rate.as_bytes_per_sec() / (1u64 << 30) as f64,
        ],
    );
    t.row(
        "tcp ctl app",
        vec![p.tcp_ctl_app.as_micros_f64(), r.tcp_ctl_app.as_micros_f64()],
    );
    t.row(
        "tcp ctl softirq",
        vec![
            p.tcp_ctl_softirq.as_micros_f64(),
            r.tcp_ctl_softirq.as_micros_f64(),
        ],
    );
    t.row(
        "tcp chunk app (base µs)",
        vec![
            p.tcp_chunk_app_base.as_micros_f64(),
            r.tcp_chunk_app_base.as_micros_f64(),
        ],
    );
    t.row(
        "tcp chunk app (µs/KiB)",
        vec![
            p.tcp_chunk_app_per_kib.as_micros_f64(),
            r.tcp_chunk_app_per_kib.as_micros_f64(),
        ],
    );
    t.row(
        "tcp chunk softirq (base µs)",
        vec![
            p.tcp_chunk_softirq_base.as_micros_f64(),
            r.tcp_chunk_softirq_base.as_micros_f64(),
        ],
    );
    t.row(
        "tcp chunk softirq (µs/KiB)",
        vec![
            p.tcp_chunk_softirq_per_kib.as_micros_f64(),
            r.tcp_chunk_softirq_per_kib.as_micros_f64(),
        ],
    );
    t.row(
        "membus rate (GiB/s)",
        vec![
            p.membus_rate.as_bytes_per_sec() / (1u64 << 30) as f64,
            r.membus_rate.as_bytes_per_sec() / (1u64 << 30) as f64,
        ],
    );
    t.row(
        "copy rate client (GiB/s)",
        vec![
            p.copy_rate_client.as_bytes_per_sec() / (1u64 << 30) as f64,
            r.copy_rate_client.as_bytes_per_sec() / (1u64 << 30) as f64,
        ],
    );
    t.row(
        "copy rate target (GiB/s)",
        vec![
            p.copy_rate_target.as_bytes_per_sec() / (1u64 << 30) as f64,
            r.copy_rate_target.as_bytes_per_sec() / (1u64 << 30) as f64,
        ],
    );
    t.row(
        "interrupt wake",
        vec![
            p.interrupt_extra.as_micros_f64(),
            r.interrupt_extra.as_micros_f64(),
        ],
    );
    t.row(
        "shm loopback ctl",
        vec![
            p.shm_ctl_latency.as_micros_f64(),
            r.shm_ctl_latency.as_micros_f64(),
        ],
    );
    t.row(
        "rdma msg cpu",
        vec![
            p.rdma.per_msg_cpu.as_micros_f64(),
            r.rdma.per_msg_cpu.as_micros_f64(),
        ],
    );
    t.row(
        "rdma MR registration",
        vec![
            p.rdma.reg_cost.as_micros_f64(),
            r.rdma.reg_cost.as_micros_f64(),
        ],
    );
    t.row(
        "ssd read base",
        vec![
            p.ssd.read_base.as_micros_f64(),
            r.ssd.read_base.as_micros_f64(),
        ],
    );
    t.row(
        "ssd write base",
        vec![
            p.ssd.write_base.as_micros_f64(),
            r.ssd.write_base.as_micros_f64(),
        ],
    );
    t.row(
        "ssd ceiling (GB/s)",
        vec![
            p.ssd.bandwidth_ceiling() / 1e9,
            r.ssd.bandwidth_ceiling() / 1e9,
        ],
    );
    rep.tables.push(t);

    rep.checks.push(ShapeCheck::holds(
        "VM testbed uses a RAM-backed emulated SSD; the RoCE runs use a real device (§5.1)",
        format!(
            "emulated ceiling {:.1} GB/s vs real {:.1} GB/s",
            p.ssd.bandwidth_ceiling() / 1e9,
            r.ssd.bandwidth_ceiling() / 1e9
        ),
        p.ssd.bandwidth_ceiling() > r.ssd.bandwidth_ceiling(),
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_builds_and_passes() {
        let r = super::run();
        assert!(r.all_pass());
        assert!(!r.tables.is_empty());
    }
}
