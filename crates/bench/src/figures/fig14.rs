//! Fig. 14: concurrency — bandwidth vs queue depth (§5.5).
//!
//! Single queue pair, sequential 128 KiB reads, queue depth swept 1..128.
//! Anchors: TCP and RoCE stop improving after QD≈8; oAF's lock-free
//! double buffer keeps scaling to a far higher plateau; at QD1 oAF shows
//! no big win (control-plane overhead dominates, §5.5).

use oaf_core::sim::{run_uniform, FabricKind, ShmVariant};
use oaf_simnet::units::KIB;

use crate::config::workload;
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig14",
        "Concurrency: bandwidth vs queue depth, 128KiB sequential read",
        "1 stream (single QP), QD in {1,2,4,...,128}",
    );

    let qds = [1usize, 2, 4, 8, 16, 32, 64, 128];
    let fabrics = [
        ("TCP-25G", FabricKind::TcpStock { gbps: 25.0 }),
        ("TCP-100G", FabricKind::TcpStock { gbps: 100.0 }),
        ("RoCE-100G", FabricKind::Roce),
        (
            "NVMe-oAF",
            FabricKind::Shm {
                variant: ShmVariant::ZeroCopy,
            },
        ),
    ];

    let headers: Vec<String> = qds.iter().map(|q| format!("QD{q}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Bandwidth (MiB/s)", &header_refs);
    let mut curves = std::collections::HashMap::new();
    for (name, fabric) in fabrics {
        let curve: Vec<f64> = qds
            .iter()
            .map(|&qd| {
                run_uniform(fabric, 1, workload(128 * KIB, 1.0).with_queue_depth(qd))
                    .bandwidth_mib()
            })
            .collect();
        t.row(name, curve.clone());
        curves.insert(name, curve);
    }
    rep.tables.push(t);

    let gain = |c: &[f64], from: usize, to: usize| c[to] / c[from];
    let tcp = &curves["TCP-25G"];
    let roce = &curves["RoCE-100G"];
    let oaf = &curves["NVMe-oAF"];

    rep.checks.push(ShapeCheck::holds(
        "TCP bandwidth is nearly constant past QD8 (§5.5)",
        format!("TCP-25G QD128/QD8 = {:.2}", gain(tcp, 3, 7)),
        gain(tcp, 3, 7) < 1.25,
    ));
    rep.checks.push(ShapeCheck::holds(
        "RoCE bandwidth is nearly constant past QD8 (§5.5)",
        format!("RoCE QD128/QD8 = {:.2}", gain(roce, 3, 7)),
        gain(roce, 3, 7) < 1.25,
    ));
    rep.checks.push(ShapeCheck::holds(
        "oAF keeps scaling past QD8 (§5.5)",
        format!("oAF QD128/QD8 = {:.2}", gain(oaf, 3, 7)),
        gain(oaf, 3, 7) > 1.3,
    ));
    rep.checks.push(ShapeCheck::holds(
        "at QD1 oAF shows no significant performance (control plane dominates, §5.5)",
        format!(
            "QD1: oAF {:.0} MiB/s = {:.0}% of its own plateau ({:.0})",
            oaf[0],
            100.0 * oaf[0] / oaf[7],
            oaf[7]
        ),
        oaf[0] < 0.25 * oaf[7] && oaf[0] < 3.0 * curves["TCP-100G"][0],
    ));
    rep.checks.push(ShapeCheck::holds(
        "oAF's plateau is far above TCP's (§5.5)",
        format!("QD128: oAF {:.0} vs TCP-25G {:.0} MiB/s", oaf[7], tcp[7]),
        oaf[7] > 2.5 * tcp[7],
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig14_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
