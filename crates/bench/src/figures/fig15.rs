//! Fig. 15: random mixed workloads (§5.6).
//!
//! Read-heavy (95:5), balanced (50:50) and write-heavy (5:95) random
//! workloads at 512 KiB, single stream. Anchors: TCP link speed barely
//! matters; oAF ≈ 2.33× TCP-100G on average; oAF is a modest 5–13.5%
//! *below* RDMA-56G; RDMA-56G outperforms RoCE-100G (which is bound by
//! its real SSD).

use oaf_core::sim::{run_uniform, FabricKind, Pattern, ShmVariant};
use oaf_simnet::units::KIB;

use crate::config::workload;
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig15",
        "Random mixed workloads, 512KiB, single stream",
        "QD128; mixes 95:5 / 50:50 / 5:95 (read:write)",
    );

    let mixes = [("95:5", 0.95), ("50:50", 0.50), ("5:95", 0.05)];
    let fabrics = [
        ("TCP-10G", FabricKind::TcpStock { gbps: 10.0 }),
        ("TCP-25G", FabricKind::TcpStock { gbps: 25.0 }),
        ("TCP-100G", FabricKind::TcpStock { gbps: 100.0 }),
        ("RDMA-56G", FabricKind::RdmaIb),
        ("RoCE-100G", FabricKind::Roce),
        (
            "NVMe-oAF",
            FabricKind::Shm {
                variant: ShmVariant::ZeroCopy,
            },
        ),
    ];

    let mut t = Table::new("Throughput (MiB/s)", &["95:5", "50:50", "5:95"]);
    let mut thr = std::collections::HashMap::new();
    for (name, fabric) in fabrics {
        let row: Vec<f64> = mixes
            .iter()
            .map(|&(_, frac)| {
                run_uniform(
                    fabric,
                    1,
                    workload(512 * KIB, frac).with_pattern(Pattern::Random),
                )
                .bandwidth_mib()
            })
            .collect();
        thr.insert(name, row.clone());
        t.row(name, row);
    }
    rep.tables.push(t);

    let avg = |name: &str| thr[name].iter().sum::<f64>() / 3.0;
    // The paper's absolute single-stream TCP levels cannot be fully
    // reconciled with its own Figs. 2/11 aggregate constraints (see
    // EXPERIMENTS.md), so this ratio carries a wider band than the rest.
    rep.checks.push(ShapeCheck::ratio(
        "oAF ~= 2.33x TCP-100G on average at 512K (§5.6)",
        2.33,
        avg("NVMe-oAF") / avg("TCP-100G"),
        0.55,
    ));
    let deficit: Vec<f64> = (0..3)
        .map(|i| 1.0 - thr["NVMe-oAF"][i] / thr["RDMA-56G"][i])
        .collect();
    rep.checks.push(ShapeCheck::holds(
        "oAF is a modest 5-13.5% below RDMA-56G (§5.6)",
        format!(
            "deficits: {:?}%",
            deficit
                .iter()
                .map(|d| (d * 100.0).round())
                .collect::<Vec<_>>()
        ),
        deficit.iter().all(|&d| (-0.05..0.30).contains(&d)),
    ));
    rep.checks.push(ShapeCheck::holds(
        "TCP link speed has only slight impact on random 512K throughput (§5.6)",
        format!(
            "TCP-100G/TCP-10G averages: {:.2}",
            avg("TCP-100G") / avg("TCP-10G")
        ),
        avg("TCP-100G") / avg("TCP-10G") < 3.5,
    ));
    rep.checks.push(ShapeCheck::holds(
        "RDMA-56G outperforms RoCE-100G (real-SSD bound) (§5.6)",
        format!(
            "avg: RDMA {:.0} vs RoCE {:.0} MiB/s",
            avg("RDMA-56G"),
            avg("RoCE-100G")
        ),
        avg("RDMA-56G") > avg("RoCE-100G"),
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig15_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
