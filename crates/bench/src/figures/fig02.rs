//! Fig. 2: performance of existing NVMe-oF transports.
//!
//! Four applications issue sequential reads/writes to four NVMe-SSDs
//! (one-to-one) over a shared NIC, at 4 KiB and 128 KiB, for TCP-10G,
//! TCP-25G, TCP-100G and RDMA-IB-56G. Panels: aggregate bandwidth and
//! average latency. Shape anchors from §3.1: the 10 G network bottlenecks
//! everything; 25/100 G never saturate; RDMA leads; at 128 KiB the
//! TCP-100G→RDMA gaps are ≈1.85× (write) and ≈1.46× (read).

use oaf_core::sim::{run_uniform, Metrics};
use oaf_simnet::units::KIB;

use crate::config::{existing_fabrics, workload};
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig2",
        "Existing NVMe-oF transports: aggregate bandwidth and average latency",
        "4 clients -> 4 SSDs, sequential, QD128, 4KiB & 128KiB, shared NIC",
    );

    let sizes = [("4K", 4 * KIB), ("128K", 128 * KIB)];
    let mut bw_read = Table::new("Aggregate read bandwidth (MiB/s)", &["4K", "128K"]);
    let mut bw_write = Table::new("Aggregate write bandwidth (MiB/s)", &["4K", "128K"]);
    let mut lat_read = Table::new("Average read latency (µs)", &["4K", "128K"]);
    let mut lat_write = Table::new("Average write latency (µs)", &["4K", "128K"]);

    let mut results: Vec<(&str, Vec<Metrics>, Vec<Metrics>)> = Vec::new();
    for (name, fabric) in existing_fabrics() {
        let reads: Vec<Metrics> = sizes
            .iter()
            .map(|&(_, io)| run_uniform(fabric, 4, workload(io, 1.0)))
            .collect();
        let writes: Vec<Metrics> = sizes
            .iter()
            .map(|&(_, io)| run_uniform(fabric, 4, workload(io, 0.0)))
            .collect();
        bw_read.row(name, reads.iter().map(|m| m.bandwidth_mib()).collect());
        bw_write.row(name, writes.iter().map(|m| m.bandwidth_mib()).collect());
        lat_read.row(name, reads.iter().map(|m| m.reads.mean_lat_us()).collect());
        lat_write.row(
            name,
            writes.iter().map(|m| m.writes.mean_lat_us()).collect(),
        );
        results.push((name, reads, writes));
    }

    // Shape checks against §3.1's anchors.
    let g = |t: &Table, r: &str, c: usize| t.get(r, c).unwrap_or(f64::NAN);
    let read_gap = g(&bw_read, "RDMA-56G", 1) / g(&bw_read, "TCP-100G", 1);
    let write_gap = g(&bw_write, "RDMA-56G", 1) / g(&bw_write, "TCP-100G", 1);
    rep.checks.push(ShapeCheck::ratio(
        "peak read bandwidth gap RDMA vs TCP-100G ~= 1.46x (§3.1)",
        1.46,
        read_gap,
        0.4,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "peak write bandwidth gap RDMA vs TCP-100G ~= 1.85x (§3.1)",
        1.85,
        write_gap,
        0.4,
    ));
    rep.checks.push(ShapeCheck::holds(
        "10G Ethernet is network-bound: TCP-25G read > TCP-10G read at 128K",
        format!(
            "25G {:.0} vs 10G {:.0} MiB/s",
            g(&bw_read, "TCP-25G", 1),
            g(&bw_read, "TCP-10G", 1)
        ),
        g(&bw_read, "TCP-25G", 1) > g(&bw_read, "TCP-10G", 1) * 1.2,
    ));
    rep.checks.push(ShapeCheck::holds(
        "RDMA has the lowest 4K read latency",
        format!(
            "RDMA {:.0}µs vs best TCP {:.0}µs",
            g(&lat_read, "RDMA-56G", 0),
            g(&lat_read, "TCP-100G", 0)
        ),
        g(&lat_read, "RDMA-56G", 0) < g(&lat_read, "TCP-100G", 0),
    ));
    rep.checks.push(ShapeCheck::holds(
        "latency increases with I/O size on every transport",
        "read latency at 128K vs 4K per fabric",
        results
            .iter()
            .all(|(_, reads, _)| reads[1].reads.mean_lat_us() > reads[0].reads.mean_lat_us()),
    ));

    rep.tables = vec![bw_read, bw_write, lat_read, lat_write];
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig2_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
