//! One module per reproduced table/figure.

pub mod ablations;
pub mod fig02;
pub mod fig03;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod table1;

use crate::FigureReport;

/// All figure ids in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "table1",
        "fig2",
        "fig3",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "ablate-slots",
        "ablate-control",
        "ablate-coalesce",
    ]
}

/// Runs one figure by id.
pub fn run(id: &str) -> Option<FigureReport> {
    Some(match id {
        "table1" => table1::run(),
        "fig2" => fig02::run(),
        "fig3" => fig03::run(),
        "fig8" => fig08::run(),
        "fig9" => fig09::run(),
        "fig10" => fig10::run(),
        "fig11" => fig11::run(),
        "fig12" => fig12::run(),
        "fig13" => fig13::run(),
        "fig14" => fig14::run(),
        "fig15" => fig15::run(),
        "fig16" => fig16::run(),
        "fig17" => fig17::run(),
        "fig18" => fig18::run(),
        "fig19" => fig19::run(),
        "ablate-slots" => ablations::slots(),
        "ablate-control" => ablations::control_path(),
        "ablate-coalesce" => ablations::coalesce(),
        _ => return None,
    })
}
