//! Fig. 19: scale-out case-2 (§5.7.2).
//!
//! Four client/target pairs, each pair co-located on its own node (the
//! §3.1 topology scaled to four nodes); the SHM fraction controls how
//! many pairs use the shared-memory channel instead of TCP-25G. Anchors:
//! SHM(25%) improves aggregate bandwidth by ≈37% (write) and ≈66%
//! (read); SHM(100%) reaches ≈2.34× (write) and ≈4.55× (read) vs
//! TCP-25G.

use oaf_core::sim::{run as sim_run, ExperimentSpec, FabricKind, SimParams, StreamConfig};
use oaf_simnet::units::MIB;

use crate::config::workload;
use crate::{FigureReport, ShapeCheck, Table};

/// Case-2 topology: pair `i` has client VM `2i` and target VM `2i+1` on
/// node `i` with its own NIC.
fn spec(local: usize, read_fraction: f64) -> ExperimentSpec {
    let streams = (0..4)
        .map(|i| StreamConfig {
            fabric: FabricKind::Adaptive {
                local: i < local,
                tcp_gbps: 25.0,
            },
            client_vm: 2 * i,
            target_vm: 2 * i + 1,
            wire: i,
        })
        .collect();
    ExperimentSpec {
        streams,
        workload: workload(MIB, read_fraction),
        params: SimParams::paper_testbed(),
    }
}

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig19",
        "Scale-out case-2: co-located pairs on 4 nodes, SHM fraction swept",
        "h5bench config-1 class workload (large sequential I/O), QD128, TCP-25G fallback",
    );

    let fractions = [
        (0usize, "SHM (0%)"),
        (1, "SHM (25%)"),
        (2, "SHM (50%)"),
        (3, "SHM (75%)"),
        (4, "SHM (100%)"),
    ];
    let mut t = Table::new("Aggregate bandwidth (MiB/s)", &["write", "read"]);
    let mut write_bw = Vec::new();
    let mut read_bw = Vec::new();
    for (local, label) in fractions {
        let w = sim_run(&spec(local, 0.0)).bandwidth_mib();
        let r = sim_run(&spec(local, 1.0)).bandwidth_mib();
        t.row(label, vec![w, r]);
        write_bw.push(w);
        read_bw.push(r);
    }
    rep.tables.push(t);

    rep.checks.push(ShapeCheck::ratio(
        "SHM(25%) improves aggregate write bandwidth by ~37% (§5.7.2)",
        1.37,
        write_bw[1] / write_bw[0],
        0.35,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "SHM(25%) improves aggregate read bandwidth by ~66% (§5.7.2)",
        1.66,
        read_bw[1] / read_bw[0],
        0.35,
    ));
    // Same write-side caveat as Fig. 18 (see EXPERIMENTS.md).
    rep.checks.push(ShapeCheck::ratio(
        "SHM(100%) ~= 2.34x write bandwidth vs TCP-25G (§5.7.2)",
        2.34,
        write_bw[4] / write_bw[0],
        0.60,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "SHM(100%) ~= 4.55x read bandwidth vs TCP-25G (§5.7.2)",
        4.55,
        read_bw[4] / read_bw[0],
        0.45,
    ));
    rep.checks.push(ShapeCheck::holds(
        "bandwidth grows with the partially-remote fraction",
        format!(
            "write {:?}, read {:?}",
            write_bw.iter().map(|x| x.round()).collect::<Vec<_>>(),
            read_bw.iter().map(|x| x.round()).collect::<Vec<_>>()
        ),
        write_bw.windows(2).all(|w| w[1] >= w[0] * 0.98)
            && read_bw.windows(2).all(|w| w[1] >= w[0] * 0.98),
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig19_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
