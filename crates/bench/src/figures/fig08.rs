//! Fig. 8: the NVMe-oSHM optimization ladder (§4.4.4).
//!
//! Sequential 512 KiB reads, one stream, QD128, against TCP-25G. Anchors:
//! SHM-baseline ≈ 1.83× TCP-25G bandwidth despite its lock; lock-free
//! matches baseline bandwidth but cuts p99.99 by ≈38%; flow control adds
//! another ≈1.83× bandwidth; zero-copy trims p99.99 by a further ≈22%.

use oaf_core::sim::{run_uniform, FabricKind, ShmVariant};
use oaf_simnet::units::KIB;

use crate::config::{workload, RUN_TAIL};
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig8",
        "Design-optimization ladder: bandwidth and p99.99 per NVMe-oSHM variant",
        "sequential read, 512KiB, 1 stream, QD128; reference: NVMe/TCP-25G",
    );

    let io = 512 * KIB;
    // Bandwidth: the paper's QD128 closed loop. Tail percentiles: QD1,
    // so they reflect per-I/O service-time events (lock-holder
    // preemption, copy cache/TLB tails) rather than queueing depth —
    // at a saturated QD128 the queue dominates every percentile and
    // hides the mechanism the paper ablates (see EXPERIMENTS.md).
    let wl_bw = workload(io, 1.0).with_duration(RUN_TAIL);
    let wl_tail = workload(io, 1.0)
        .with_duration(RUN_TAIL)
        .with_queue_depth(1);

    let ladder = [
        ("TCP-25G", FabricKind::TcpStock { gbps: 25.0 }),
        (
            "SHM-baseline",
            FabricKind::Shm {
                variant: ShmVariant::Baseline,
            },
        ),
        (
            "SHM-lock-free",
            FabricKind::Shm {
                variant: ShmVariant::LockFree,
            },
        ),
        (
            "SHM-flow-ctl",
            FabricKind::Shm {
                variant: ShmVariant::FlowCtl,
            },
        ),
        (
            "SHM-0-copy",
            FabricKind::Shm {
                variant: ShmVariant::ZeroCopy,
            },
        ),
    ];

    let mut t = Table::new(
        "Bandwidth (QD128) and service-time tail (QD1)",
        &["BW (MiB/s)", "p99.99 (µs)", "p50 (µs)"],
    );
    let mut bw = std::collections::HashMap::new();
    let mut tail = std::collections::HashMap::new();
    for (name, fabric) in ladder {
        let m = run_uniform(fabric, 1, wl_bw);
        let mt = run_uniform(fabric, 1, wl_tail);
        let p = mt.percentiles().expect("samples");
        t.row(name, vec![m.bandwidth_mib(), p.p9999, p.p50]);
        bw.insert(name, m.bandwidth_mib());
        tail.insert(name, p.p9999);
    }
    rep.tables.push(t);

    rep.checks.push(ShapeCheck::ratio(
        "SHM-baseline bandwidth ~= 1.83x TCP-25G (§4.4.4)",
        1.83,
        bw["SHM-baseline"] / bw["TCP-25G"],
        0.45,
    ));
    rep.checks.push(ShapeCheck::holds(
        "lock-free does not improve bandwidth over baseline (§4.4.4)",
        format!(
            "baseline {:.0} vs lock-free {:.0} MiB/s",
            bw["SHM-baseline"], bw["SHM-lock-free"]
        ),
        (bw["SHM-lock-free"] / bw["SHM-baseline"] - 1.0).abs() < 0.25,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "lock-free cuts p99.99 by ~38% (§4.4.4)",
        0.38,
        1.0 - tail["SHM-lock-free"] / tail["SHM-baseline"],
        0.6,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "flow control adds ~1.83x bandwidth (§4.4.4)",
        1.83,
        bw["SHM-flow-ctl"] / bw["SHM-lock-free"],
        0.45,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "zero-copy trims p99.99 by a further ~22% (§4.4.4)",
        0.22,
        1.0 - tail["SHM-0-copy"] / tail["SHM-flow-ctl"],
        0.8,
    ));
    rep.checks.push(ShapeCheck::holds(
        "SHM-0-copy is the best variant overall",
        format!("0-copy {:.0} MiB/s", bw["SHM-0-copy"]),
        bw["SHM-0-copy"] >= bw["SHM-flow-ctl"] * 0.98
            && tail["SHM-0-copy"] <= tail["SHM-lock-free"],
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig8_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
