//! Fig. 13: tail-latency study (§5.4).
//!
//! Mixed sequential 70:30 read:write at 128 KiB over every fabric.
//! Anchors: oAF's tail ≈ 3× smaller than TCP-100G *and* RDMA; RDMA's
//! tail is inflated by memory-registration overheads despite its lower
//! average; re-running 3–4× longer amortizes the registrations and drops
//! the RDMA tail below oAF's.

use oaf_core::sim::run_uniform;
use oaf_simnet::time::SimDuration;
use oaf_simnet::units::KIB;

use crate::config::{full_fabrics, workload, RUN_TAIL};
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig13",
        "Tail latency, sequential 128KiB mixed 70:30 read:write",
        "1 stream, QD128; percentiles in µs; plus a 4x-longer RDMA re-run",
    );

    let wl = workload(128 * KIB, 0.7).with_duration(RUN_TAIL);
    let mut t = Table::new(
        "Latency percentiles (µs)",
        &["p50", "p90", "p99", "p99.9", "p99.99"],
    );
    let mut p9999 = std::collections::HashMap::new();
    let mut p50 = std::collections::HashMap::new();
    for (name, fabric) in full_fabrics() {
        let m = run_uniform(fabric, 1, wl);
        let p = m.percentiles().expect("samples");
        t.row(name, vec![p.p50, p.p90, p.p99, p.p999, p.p9999]);
        p9999.insert(name, p.p9999);
        p50.insert(name, p.p50);
    }
    // RoCE row (physical-node upper bound).
    {
        let m = run_uniform(oaf_core::sim::FabricKind::Roce, 1, wl);
        let p = m.percentiles().expect("samples");
        t.row("RoCE-100G", vec![p.p50, p.p90, p.p99, p.p999, p.p9999]);
        p9999.insert("RoCE-100G", p.p9999);
        p50.insert("RoCE-100G", p.p50);
    }
    rep.tables.push(t);

    // The long-run flip: the paper re-ran 3-4x longer; the cold
    // registrations then fall below the p99.99 rank. Our virtual runs
    // are shorter than the paper's wall-clock runs, so the "longer" run
    // here is scaled until the cold population drops below the rank
    // (10x; same mechanism, different absolute run lengths).
    let long = workload(128 * KIB, 0.7).with_duration(SimDuration::from_secs(60));
    let rdma_long = run_uniform(oaf_core::sim::FabricKind::RdmaIb, 1, long);
    let oaf_long = run_uniform(
        oaf_core::sim::FabricKind::Shm {
            variant: oaf_core::sim::ShmVariant::ZeroCopy,
        },
        1,
        long,
    );
    let rdma_long_tail = rdma_long.percentiles().expect("samples").p9999;
    let oaf_long_tail = oaf_long.percentiles().expect("samples").p9999;
    let mut t2 = Table::new("4x-longer run (µs)", &["p99.99"]);
    t2.row("RDMA-56G", vec![rdma_long_tail]);
    t2.row("NVMe-oAF", vec![oaf_long_tail]);
    rep.tables.push(t2);

    rep.checks.push(ShapeCheck::ratio(
        "oAF tail ~3x smaller than TCP-100G (§5.4)",
        3.0,
        p9999["TCP-100G"] / p9999["NVMe-oAF"],
        0.5,
    ));
    rep.checks.push(ShapeCheck::holds(
        "oAF tail is also well below the RDMA tail on the short run (§5.4)",
        format!(
            "p99.99: RDMA {:.0}µs vs oAF {:.0}µs",
            p9999["RDMA-56G"], p9999["NVMe-oAF"]
        ),
        p9999["RDMA-56G"] > 2.0 * p9999["NVMe-oAF"],
    ));
    rep.checks.push(ShapeCheck::holds(
        "RDMA/RoCE average (p50) is still lower than oAF's (§5.4)",
        format!(
            "p50: RDMA {:.0}µs vs oAF {:.0}µs",
            p50["RDMA-56G"], p50["NVMe-oAF"]
        ),
        p50["RDMA-56G"] < p50["NVMe-oAF"],
    ));
    rep.checks.push(ShapeCheck::holds(
        "a 3-4x longer run amortizes MR registration: RDMA tail drops below oAF (§5.4)",
        format!("long run p99.99: RDMA {rdma_long_tail:.0}µs vs oAF {oaf_long_tail:.0}µs"),
        rdma_long_tail < oaf_long_tail,
    ));
    rep.checks.push(ShapeCheck::holds(
        "TCP tails sit close together across speeds, all far above oAF (§5.4)",
        format!(
            "p99.99: 10G {:.0}, 25G {:.0}, 100G {:.0}, oAF {:.0}",
            p9999["TCP-10G"], p9999["TCP-25G"], p9999["TCP-100G"], p9999["NVMe-oAF"]
        ),
        (p9999["TCP-100G"] / p9999["TCP-25G"] - 1.0).abs() < 0.2
            && p9999["TCP-100G"] > 2.0 * p9999["NVMe-oAF"],
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig13_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
