//! Fig. 3: latency breakdown of existing NVMe-oF transports.
//!
//! Splits the average latency into "I/O time" (device), "comm. time"
//! (transit) and "other" (preparation/processing), per §3.2. Anchors:
//! communication time dominates the TCP/RDMA difference; at 128 KiB,
//! TCP writes spend markedly more in "other" than reads (buffer fill +
//! copy-out); for 128 KiB RDMA reads, comm:IO ≈ 1:1.11.

use oaf_core::sim::run_uniform;
use oaf_simnet::units::KIB;

use crate::config::{existing_fabrics, workload};
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig3",
        "Latency breakdown (I/O / comm / other) for existing transports",
        "4 clients -> 4 SSDs, sequential, QD128; components in µs",
    );

    for &(label, io) in &[("4K", 4 * KIB), ("128K", 128 * KIB)] {
        let mut tr = Table::new(
            format!("{label} read breakdown (µs)"),
            &["io", "comm", "other"],
        );
        let mut tw = Table::new(
            format!("{label} write breakdown (µs)"),
            &["io", "comm", "other"],
        );
        for (name, fabric) in existing_fabrics() {
            let r = run_uniform(fabric, 4, workload(io, 1.0));
            let w = run_uniform(fabric, 4, workload(io, 0.0));
            let br = r.reads.mean_breakdown();
            let bw = w.writes.mean_breakdown();
            tr.row(name, vec![br.io_us, br.comm_us, br.other_us]);
            tw.row(name, vec![bw.io_us, bw.comm_us, bw.other_us]);
        }
        rep.tables.push(tr);
        rep.tables.push(tw);
    }

    // Checks use the 128K panels (tables 2 and 3).
    let tr = &rep.tables[2];
    let tw = &rep.tables[3];
    let comm = |t: &Table, r: &str| t.get(r, 1).unwrap_or(f64::NAN);
    let other = |t: &Table, r: &str| t.get(r, 2).unwrap_or(f64::NAN);
    let io = |t: &Table, r: &str| t.get(r, 0).unwrap_or(f64::NAN);

    rep.checks.push(ShapeCheck::holds(
        "high comm time explains the TCP vs RDMA gap (§3.2)",
        format!(
            "TCP-25G comm {:.0}µs vs RDMA comm {:.0}µs (128K read)",
            comm(tr, "TCP-25G"),
            comm(tr, "RDMA-56G")
        ),
        comm(tr, "TCP-25G") > 3.0 * comm(tr, "RDMA-56G"),
    ));
    rep.checks.push(ShapeCheck::holds(
        "128K TCP writes spend much more in 'other' than reads (buffer fill + copy-out, §3.2)",
        format!(
            "TCP-25G other: write {:.1}µs vs read {:.1}µs",
            other(tw, "TCP-25G"),
            other(tr, "TCP-25G")
        ),
        other(tw, "TCP-25G") > 2.0 * other(tr, "TCP-25G"),
    ));
    rep.checks.push(ShapeCheck::holds(
        "RDMA writes do not show the 'other' inflation (target reads the client buffer directly)",
        format!(
            "RDMA other: write {:.1}µs vs TCP-25G write {:.1}µs",
            other(tw, "RDMA-56G"),
            other(tw, "TCP-25G")
        ),
        other(tw, "RDMA-56G") < 0.5 * other(tw, "TCP-25G"),
    ));
    // §3.2 reads the comm:IO ratio (1:1.11) as evidence that the network
    // share has grown enough to limit multi-stream RDMA reads. The
    // instrumented ratio depends on where queueing is attributed; the
    // claim itself — four 128K streams on one IB NIC scale sublinearly
    // because the wire saturates — is checked directly.
    let single = run_uniform(
        crate::config::existing_fabrics()[3].1,
        1,
        workload(128 * KIB, 1.0),
    );
    let agg4 = run_uniform(
        crate::config::existing_fabrics()[3].1,
        4,
        workload(128 * KIB, 1.0),
    );
    rep.checks.push(ShapeCheck::holds(
        "network limits multi-stream 128K RDMA reads (aggregate << 4x single, §3.2)",
        format!(
            "4-stream {:.0} MiB/s vs 4x single {:.0} MiB/s",
            agg4.bandwidth_mib(),
            4.0 * single.bandwidth_mib()
        ),
        agg4.bandwidth_mib() < 0.75 * 4.0 * single.bandwidth_mib(),
    ));
    // 4K panel: I/O time dominates RDMA reads.
    let tr4 = &rep.tables[0];
    rep.checks.push(ShapeCheck::holds(
        "at 4K, I/O time is the major component for RDMA reads (§3.2)",
        format!(
            "RDMA 4K read: io {:.0}µs vs comm {:.0}µs",
            io(tr4, "RDMA-56G"),
            comm(tr4, "RDMA-56G")
        ),
        io(tr4, "RDMA-56G") > comm(tr4, "RDMA-56G"),
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig3_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
