//! Ablations beyond the paper's Fig. 8 (DESIGN.md §6): design choices the
//! paper fixes without sweeping.

use oaf_core::sim::{ExperimentSpec, FabricKind, ShmVariant};
use oaf_h5::kernel::{KernelConfig, STREAM_DEPTH};
use oaf_h5::replay::replay;
use oaf_shmem::channel::Side;
use oaf_shmem::layout::Dir;
use oaf_shmem::locked::LockedShm;
use oaf_shmem::ShmChannel;
use oaf_simnet::time::SimDuration;
use oaf_simnet::units::{KIB, MIB};

use crate::config::workload;
use crate::figures::fig16::capture_traces;
use crate::{FigureReport, ShapeCheck, Table};

/// Slot-strategy ablation, measured on the *real* shared-memory channel:
/// the paper's lock-free round-robin slot ring versus the mutex-guarded
/// region. Single-producer/single-consumer, wall-clock.
pub fn slots() -> FigureReport {
    let mut rep = FigureReport::new(
        "ablate-slots",
        "Real-channel slot strategy: lock-free round-robin ring vs locked region",
        "in-process, 64KiB payloads, ping-drain loop, wall-clock ops/s",
    );

    let payload = vec![0xa5u8; 64 * 1024];
    let iters = 10_000u64;
    let trials = 5usize;

    // Wall-clock timing under a possibly loaded machine: take the best
    // of several interleaved trials per variant.
    let mut scratch = vec![0u8; 64 * 1024];
    let mut lock_free_ops: f64 = 0.0;
    let mut locked_ops: f64 = 0.0;
    for _ in 0..trials {
        // Lock-free ring (the paper's §4.4.1 design).
        let ch = ShmChannel::allocate(16, 64 * 1024);
        let client = ch.endpoint(Side::Client);
        let target = ch.endpoint(Side::Target);
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            let (slot, len) = client.send(&payload).expect("send");
            let g = target.recv(slot, len).expect("recv");
            g.copy_to(&mut scratch[..len]);
        }
        lock_free_ops = lock_free_ops.max(iters as f64 / t0.elapsed().as_secs_f64());

        // Locked region (the ablation baseline).
        let locked = LockedShm::allocate(16, 64 * 1024);
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            let slot = locked.send(Dir::ToTarget, &payload).expect("send");
            locked
                .recv(Dir::ToTarget, slot, &mut scratch)
                .expect("recv");
        }
        locked_ops = locked_ops.max(iters as f64 / t0.elapsed().as_secs_f64());
    }

    let mut t = Table::new("Single-threaded transfer rate", &["ops/s", "MiB/s"]);
    t.row(
        "lock-free ring",
        vec![lock_free_ops, lock_free_ops * 64.0 / 1024.0],
    );
    t.row(
        "locked region",
        vec![locked_ops, locked_ops * 64.0 / 1024.0],
    );
    rep.tables.push(t);

    // Single-threaded ping-drain: the lock-free design must not be
    // slower beyond scheduling noise (its win is concurrency + tails,
    // Fig. 8; this guards against regression in the common path).
    rep.checks.push(ShapeCheck::holds(
        "the lock-free ring is at least as fast as the locked region",
        format!("lock-free {lock_free_ops:.0} vs locked {locked_ops:.0} ops/s (best of 5)"),
        lock_free_ops >= locked_ops * 0.8,
    ));
    rep
}

/// Control-path ablation (§5.5's future-work direction): what happens to
/// NVMe-oAF if the out-of-band control messages ran over an RDMA-class
/// (1 µs) hop instead of the loopback TCP hop.
pub fn control_path() -> FigureReport {
    let mut rep = FigureReport::new(
        "ablate-control",
        "Control-path latency: loopback TCP vs RDMA-class control (§5.5 future work)",
        "oAF single stream, QD128; control hop latency swept",
    );

    let mut t = Table::new("oAF bandwidth (MiB/s)", &["4K", "128K"]);
    let mut results = std::collections::HashMap::new();
    // An RDMA-class control path removes the kernel stack from the hop
    // (latency) *and* from per-message processing (the softirq/app cost
    // that bounds small-I/O throughput, §5.5).
    for (label, ctl_lat_us, ctl_sirq_us, ctl_app_us) in [
        ("tcp-loopback", 5.0, 4.5, 2.0),
        ("rdma-class", 1.0, 0.3, 0.9),
    ] {
        let mut row = Vec::new();
        for io in [4 * KIB, 128 * KIB] {
            let mut spec = ExperimentSpec::uniform(
                FabricKind::Shm {
                    variant: ShmVariant::ZeroCopy,
                },
                1,
                workload(io, 1.0),
            );
            spec.params.shm_ctl_latency = SimDuration::from_micros_f64(ctl_lat_us);
            spec.params.tcp_ctl_softirq = SimDuration::from_micros_f64(ctl_sirq_us);
            spec.params.tcp_ctl_app = SimDuration::from_micros_f64(ctl_app_us);
            let bw = oaf_core::sim::run(&spec).bandwidth_mib();
            row.push(bw);
            results.insert((label, io), bw);
        }
        t.row(label, row);
    }
    rep.tables.push(t);

    let gain_4k = results[&("rdma-class", 4 * KIB)] / results[&("tcp-loopback", 4 * KIB)];
    let gain_128k = results[&("rdma-class", 128 * KIB)] / results[&("tcp-loopback", 128 * KIB)];
    rep.checks.push(ShapeCheck::holds(
        "a faster control path helps small I/O (control-plane bound, §5.5)",
        format!("4K gain {gain_4k:.2}x"),
        gain_4k > 1.05,
    ));
    rep.checks.push(ShapeCheck::holds(
        "large I/O barely changes (copy/device bound)",
        format!("128K gain {gain_128k:.2}x"),
        gain_128k < gain_4k && gain_128k < 1.15,
    ));
    rep
}

/// Coalescing-threshold sweep (§5.7.1): how much batching config-2's
/// interleaved writes need before the fabric streams again.
pub fn coalesce() -> FigureReport {
    let mut rep = FigureReport::new(
        "ablate-coalesce",
        "Coalescing batch-size sweep for the config-2 write pattern",
        "h5bench config-2 write trace over oAF; batch swept 0..4MiB",
    );

    let cfg = KernelConfig::config2();
    let (wt, _) = capture_traces(&cfg);
    let fabric = FabricKind::Shm {
        variant: ShmVariant::ZeroCopy,
    };
    let slot = 128 * KIB;

    let mut t = Table::new("Write bandwidth (MiB/s)", &["MiB/s"]);
    let mut series = Vec::new();
    let plain = replay(&wt, fabric, slot).bandwidth_mib();
    t.row("no coalescing", vec![plain]);
    series.push(plain);
    for batch in [256 * KIB, 512 * KIB, MIB, 2 * MIB, 4 * MIB] {
        let bw = replay(&wt.coalesce(batch, STREAM_DEPTH), fabric, slot).bandwidth_mib();
        t.row(format!("batch {}K", batch / KIB), vec![bw]);
        series.push(bw);
    }
    rep.tables.push(t);

    rep.checks.push(ShapeCheck::holds(
        "bandwidth grows with the batch size and saturates",
        format!("{:?}", series.iter().map(|x| x.round()).collect::<Vec<_>>()),
        series.windows(2).all(|w| w[1] >= w[0] * 0.95)
            && series.last().expect("non-empty") > &(series[0] * 3.0),
    ));
    // A context check against the stock fabrics at the same pattern.
    let tcp = replay(&wt, FabricKind::TcpStock { gbps: 25.0 }, slot).bandwidth_mib();
    rep.checks.push(ShapeCheck::holds(
        "coalesced oAF far exceeds NVMe/TCP-25G on the same pattern",
        format!(
            "coalesced {:.0} vs TCP-25G {tcp:.0} MiB/s",
            series.last().expect("non-empty")
        ),
        *series.last().expect("non-empty") > 2.0 * tcp,
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn slots_ablation_passes() {
        let r = super::slots();
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn control_ablation_passes() {
        let r = super::control_path();
        assert!(r.all_pass(), "{}", r.render());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn coalesce_ablation_passes() {
        let r = super::coalesce();
        assert!(r.all_pass(), "{}", r.render());
    }
}
