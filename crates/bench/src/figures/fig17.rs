//! Fig. 17: h5bench config-2 and I/O coalescing (§5.7.1).
//!
//! Eight datasets of 8M particles each. Anchors: *without* coalescing,
//! the interleaved pattern defeats the fabric's pipelining and plain
//! NVMe-oAF falls to ≈0.53× (write) / ≈0.41× (read) of NFS, whose async
//! mount buffers the same pattern happily; *with* the application-
//! agnostic coalescing optimization, NVMe-oAF recovers to ≈6× (write)
//! and ≈7× (read) of NFS.

use oaf_core::sim::{FabricKind, ShmVariant};
use oaf_h5::kernel::{KernelConfig, STREAM_DEPTH};
use oaf_h5::nfs::{replay_read, replay_write, NfsParams};
use oaf_h5::replay::replay;
use oaf_simnet::units::{KIB, MIB};

use crate::figures::fig16::capture_traces;
use crate::{FigureReport, ShapeCheck, Table};

const OAF: FabricKind = FabricKind::Shm {
    variant: ShmVariant::ZeroCopy,
};
const SLOT: u64 = 128 * KIB;

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig17",
        "h5bench config-2 (8 datasets x 8M particles): NFS vs plain oAF vs oAF+coalescing",
        "interleaved multi-dataset kernels; coalescing batches up to 2MiB at full depth",
    );

    let cfg = KernelConfig::config2();
    let (wt, rt) = capture_traces(&cfg);
    let nfs = NfsParams::paper_mount();

    let nfs_w = replay_write(&wt, &nfs).bandwidth_mib();
    let nfs_r = replay_read(&rt, &nfs).bandwidth_mib();
    let plain_w = replay(&wt, OAF, SLOT).bandwidth_mib();
    let plain_r = replay(&rt, OAF, SLOT).bandwidth_mib();
    let co_w = replay(&wt.coalesce(2 * MIB, STREAM_DEPTH), OAF, SLOT).bandwidth_mib();
    let co_r = replay(&rt.coalesce(2 * MIB, STREAM_DEPTH), OAF, SLOT).bandwidth_mib();

    let mut t = Table::new("Bandwidth (MiB/s)", &["write", "read"]);
    t.row("NFS", vec![nfs_w, nfs_r]);
    t.row("NVMe-oAF (plain)", vec![plain_w, plain_r]);
    t.row("NVMe-oAF + coalescing", vec![co_w, co_r]);
    rep.tables.push(t);

    rep.checks.push(ShapeCheck::ratio(
        "plain oAF write ~= 0.53x NFS for 8 datasets (§5.7.1)",
        0.53,
        plain_w / nfs_w,
        0.45,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "plain oAF read ~= 0.41x NFS for 8 datasets (§5.7.1)",
        0.41,
        plain_r / nfs_r,
        0.45,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "coalescing lifts oAF write to ~6x NFS (§5.7.1)",
        6.0,
        co_w / nfs_w,
        0.45,
    ));
    rep.checks.push(ShapeCheck::ratio(
        "coalescing lifts oAF read to ~7x NFS (§5.7.1)",
        7.0,
        co_r / nfs_r,
        0.45,
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig17_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
