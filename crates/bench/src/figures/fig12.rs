//! Fig. 12: latency breakdown of NVMe-oAF vs the other fabrics (§5.3).
//!
//! Anchors: oAF cuts 128 KiB read latency by ≈50%/43%/33% vs
//! TCP-10G/25G/100G; zero-copy + flow control shrink the communication
//! component; the write "other" component shrinks because the buffer
//! lives in shared memory; at 4K the oAF communication time is comparable
//! to TCP (control messages dominate small I/O, §5.5).

use oaf_core::sim::run_uniform;
use oaf_simnet::units::KIB;

use crate::config::{full_fabrics, workload};
use crate::{FigureReport, ShapeCheck, Table};

/// Runs the figure.
pub fn run() -> FigureReport {
    let mut rep = FigureReport::new(
        "fig12",
        "NVMe-oAF latency breakdown vs existing transports",
        "4 clients -> 4 SSDs, sequential, QD128, 4K & 128K; components in µs",
    );

    let mut total_read = std::collections::HashMap::new();
    for &(label, io) in &[("4K", 4 * KIB), ("128K", 128 * KIB)] {
        let mut tr = Table::new(
            format!("{label} read breakdown (µs)"),
            &["io", "comm", "other"],
        );
        let mut tw = Table::new(
            format!("{label} write breakdown (µs)"),
            &["io", "comm", "other"],
        );
        for (name, fabric) in full_fabrics() {
            let r = run_uniform(fabric, 4, workload(io, 1.0));
            let w = run_uniform(fabric, 4, workload(io, 0.0));
            let br = r.reads.mean_breakdown();
            let bw = w.writes.mean_breakdown();
            tr.row(name, vec![br.io_us, br.comm_us, br.other_us]);
            tw.row(name, vec![bw.io_us, bw.comm_us, bw.other_us]);
            if label == "128K" {
                total_read.insert(name, br.total_us());
            }
        }
        rep.tables.push(tr);
        rep.tables.push(tw);
    }

    // §5.3 reports 50/43/33% read-latency cuts vs TCP-10/25/100G. In the
    // fixed-QD closed loop the cut tracks the bandwidth gain (Little's
    // law), so the checks assert the paper's ordering and at-least-paper
    // magnitude rather than the exact percentages (see EXPERIMENTS.md).
    let red = |tcp: &str| 1.0 - total_read["NVMe-oAF"] / total_read[tcp];
    rep.checks.push(ShapeCheck::holds(
        "oAF cuts 128K read latency vs every TCP speed, most vs 10G (§5.3: 50/43/33%)",
        format!(
            "cuts: vs 10G {:.0}%, vs 25G {:.0}%, vs 100G {:.0}%",
            red("TCP-10G") * 100.0,
            red("TCP-25G") * 100.0,
            red("TCP-100G") * 100.0
        ),
        red("TCP-10G") >= 0.45
            && red("TCP-25G") >= 0.40
            && red("TCP-100G") >= 0.30
            && red("TCP-10G") >= red("TCP-25G")
            && red("TCP-25G") >= red("TCP-100G") * 0.95,
    ));
    // Write "other" shrinks (buffer lives in shm): compare oAF vs TCP-25G
    // on the 128K write panel (table 3).
    let tw = &rep.tables[3];
    let other = |r: &str| tw.get(r, 2).unwrap_or(f64::NAN);
    rep.checks.push(ShapeCheck::holds(
        "oAF shrinks the write 'other' component (buffer resides in shm, §5.3)",
        format!(
            "other: oAF {:.1}µs vs TCP-25G {:.1}µs",
            other("NVMe-oAF"),
            other("TCP-25G")
        ),
        other("NVMe-oAF") < 0.6 * other("TCP-25G"),
    ));
    // 4K: oAF comm comparable to TCP (control dominates, §5.5).
    let tr4 = &rep.tables[0];
    let comm4 = |r: &str| tr4.get(r, 1).unwrap_or(f64::NAN);
    rep.checks.push(ShapeCheck::holds(
        "at 4K the oAF communication time is comparable to TCP (control messages dominate, §5.5)",
        format!(
            "comm 4K: oAF {:.1}µs vs TCP-25G {:.1}µs",
            comm4("NVMe-oAF"),
            comm4("TCP-25G")
        ),
        comm4("NVMe-oAF") > 0.25 * comm4("TCP-25G"),
    ));
    // 128K multi-stream: oAF comm ~ RDMA comm (§5.5).
    let tr128 = &rep.tables[2];
    let comm128 = |r: &str| tr128.get(r, 1).unwrap_or(f64::NAN);
    rep.checks.push(ShapeCheck::holds(
        "at 128K with multiple streams, oAF and RDMA comm times are similar (§5.5)",
        format!(
            "comm 128K: oAF {:.1}µs vs RDMA {:.1}µs",
            comm128("NVMe-oAF"),
            comm128("RDMA-56G")
        ),
        comm128("NVMe-oAF") < 3.0 * comm128("RDMA-56G")
            && comm128("RDMA-56G") < 3.0 * comm128("NVMe-oAF"),
    ));
    rep
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "heavy simulation; run with --release")]
    fn fig12_shapes_hold() {
        let r = super::run();
        assert!(r.all_pass(), "{}", r.render());
    }
}
