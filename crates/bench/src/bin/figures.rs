//! CLI entry point for the figure-reproduction harness.
//!
//! ```text
//! figures all                 # run everything, in paper order
//! figures fig11 fig13         # run specific figures
//! figures --json out.json all # also dump machine-readable records
//! figures --list              # list available ids
//! ```

use std::io::Write as _;

use oaf_bench::figures;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures [--json FILE] [--list] <id...|all>");
        eprintln!("ids: {}", figures::all_ids().join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        println!("{}", figures::all_ids().join("\n"));
        return;
    }
    let mut json_path = None;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        if pos < args.len() {
            json_path = Some(args.remove(pos));
        } else {
            eprintln!("--json requires a file path");
            std::process::exit(2);
        }
    }

    let ids: Vec<String> = if args.iter().any(|a| a == "all") {
        figures::all_ids().iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let mut reports = Vec::new();
    let mut failed = 0usize;
    for id in &ids {
        match figures::run(id) {
            Some(rep) => {
                println!("{}", rep.render());
                if !rep.all_pass() {
                    failed += 1;
                }
                reports.push(rep);
            }
            None => {
                eprintln!("unknown figure id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = json_path {
        let json = oaf_bench::report::reports_to_json(&reports);
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(json.as_bytes()).expect("write json output");
        println!("wrote {} reports to {path}", reports.len());
    }

    println!(
        "\n{} figures run, {} with failing shape checks",
        reports.len(),
        failed
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
