//! Copy vs zero-copy through the production payload channel: the Fig. 8
//! step-2→step-3 ablation (one-copy publish/consume vs lease-based
//! publish-in-place / borrowed consume) measured over the real
//! [`oaf_core::payload_impl::ShmPayloadChannel`] at 4K/64K/1M.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oaf_core::payload_impl::ShmPayloadChannel;
use oaf_nvmeof::payload::PayloadChannel;
use oaf_shmem::channel::Side;
use oaf_shmem::ShmChannel;

const SIZES: &[usize] = &[4 << 10, 64 << 10, 1 << 20];

fn label(size: usize) -> String {
    match size {
        s if s >= 1 << 20 => format!("{}M", s >> 20),
        s => format!("{}K", s >> 10),
    }
}

/// One-copy path: the application owns a heap buffer, `publish` copies it
/// into the slot, `consume` copies it back out on the target side.
fn bench_copy_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("zero_copy/copy-path");
    for &size in SIZES {
        let ch = ShmChannel::allocate(8, size);
        let client = ShmPayloadChannel::new(&ch, Side::Client);
        let target = ShmPayloadChannel::new(&ch, Side::Target);
        let payload = vec![0xabu8; size];
        let mut out = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label(size)), &size, |b, _| {
            b.iter(|| {
                let (slot, len) = client.publish(&payload).expect("publish");
                target.consume(slot, len, &mut out).expect("consume");
            })
        });
    }
    g.finish();
}

/// Lease path: the application fills the slot in place, `publish_lease`
/// is a pair of atomics, and the target borrows the slot bytes instead of
/// copying them out.
fn bench_lease_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("zero_copy/lease-path");
    for &size in SIZES {
        let ch = ShmChannel::allocate(8, size);
        let client = ShmPayloadChannel::new(&ch, Side::Client);
        let target = ShmPayloadChannel::new(&ch, Side::Target);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label(size)), &size, |b, _| {
            b.iter(|| {
                let mut lease = client.alloc(size).expect("lease");
                lease[0] = 1; // the app builds its data in place (§4.4.3)
                let (slot, len) = client.publish_lease(lease).expect("publish");
                let mut sum = 0u64;
                target
                    .consume_with(slot, len, &mut |bytes| {
                        // The "device" touches the bytes where they live.
                        sum += bytes[0] as u64 + bytes[bytes.len() - 1] as u64;
                    })
                    .expect("consume");
                criterion::black_box(sum);
            })
        });
    }
    g.finish();
}

/// The same two paths where the consumer genuinely reads every byte
/// (checksum): isolates the producer-side memcpy, the cost the lease
/// design removes, while both sides pay the streaming read.
fn bench_consumer_touch_all(c: &mut Criterion) {
    let mut g = c.benchmark_group("zero_copy/touch-all");
    for &size in SIZES {
        let ch = ShmChannel::allocate(8, size);
        let client = ShmPayloadChannel::new(&ch, Side::Client);
        let target = ShmPayloadChannel::new(&ch, Side::Target);
        let payload = vec![0x5au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("copy", label(size)), &size, |b, _| {
            let mut out = vec![0u8; size];
            b.iter(|| {
                let (slot, len) = client.publish(&payload).expect("publish");
                target.consume(slot, len, &mut out).expect("consume");
                criterion::black_box(out.iter().map(|&x| x as u64).sum::<u64>());
            })
        });
        g.bench_with_input(BenchmarkId::new("lease", label(size)), &size, |b, _| {
            b.iter(|| {
                let mut lease = client.alloc(size).expect("lease");
                lease.copy_from_slice(&payload); // app fills in place
                let (slot, len) = client.publish_lease(lease).expect("publish");
                let mut sum = 0u64;
                target
                    .consume_with(slot, len, &mut |bytes| {
                        sum = bytes.iter().map(|&x| x as u64).sum::<u64>();
                    })
                    .expect("consume");
                criterion::black_box(sum);
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_copy_path,
    bench_lease_path,
    bench_consumer_touch_all
);
criterion_main!(benches);
