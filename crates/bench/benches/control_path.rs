//! Control-path microbenchmarks (the PR's tentpole numbers): command →
//! completion PDU round-trips over the real-runtime transports,
//! comparing the seed-style per-frame path (owned `Bytes` per hop)
//! against the batched hot path (scratch `encode_into` + `send_frame` +
//! borrowed `recv_batch` drain), plus an allocations-per-op probe via a
//! counting global allocator.
//!
//! Both roles run on the bench thread: the numbers isolate codec + ring
//! cost per round trip, not thread wake-up latency.
//!
//! Run:    cargo bench -p oaf-bench --bench control_path
//! Smoke:  cargo bench -p oaf-bench --bench control_path -- --test

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oaf_nvmeof::nvme::command::NvmeCommand;
use oaf_nvmeof::nvme::completion::NvmeCompletion;
use oaf_nvmeof::pdu::{CapsuleCmd, CapsuleResp, DataRef, Pdu};
use oaf_nvmeof::transport::{MemTransport, ShmTransport, Transport};

/// Counts allocations on the bench thread when tracking is on;
/// delegates to [`System`]. Thread-local so criterion's own helper
/// threads don't pollute the per-op numbers.
struct CountingAlloc;

thread_local! {
    static TRACK: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    if TRACK.try_with(Cell::get).unwrap_or(false) {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn cmd_pdu(cid: u16) -> Pdu {
    Pdu::CapsuleCmd(CapsuleCmd {
        cmd: NvmeCommand::write(cid, 1, 1024, 32),
        data: Some(DataRef::ShmSlot {
            slot: 5,
            len: 131072,
        }),
    })
}

fn resp_pdu(cid: u16) -> Pdu {
    Pdu::CapsuleResp(CapsuleResp {
        completion: NvmeCompletion::ok(cid),
    })
}

/// Seed-style round trip: every hop materializes an owned frame.
fn roundtrip_owned<T: Transport>(client: &T, target: &T) {
    client.send(cmd_pdu(7).encode()).expect("send cmd");
    let frame = target.try_recv().expect("recv cmd").expect("cmd ready");
    let cid = match Pdu::decode(frame).expect("decode cmd") {
        Pdu::CapsuleCmd(c) => c.cmd.cid,
        other => panic!("unexpected pdu: {other:?}"),
    };
    target.send(resp_pdu(cid).encode()).expect("send resp");
    let frame = client.try_recv().expect("recv resp").expect("resp ready");
    match Pdu::decode(frame).expect("decode resp") {
        Pdu::CapsuleResp(_) => {}
        other => panic!("unexpected pdu: {other:?}"),
    }
}

/// Hot-path round trip at queue depth `qd`: scratch encode, borrowed
/// batched drain on both sides, zero steady-state allocations on ring
/// transports.
fn roundtrip_batched<T: Transport>(
    client: &T,
    target: &T,
    c_scratch: &mut BytesMut,
    t_scratch: &mut BytesMut,
    qd: u16,
) {
    for cid in 0..qd {
        c_scratch.clear();
        cmd_pdu(cid).encode_into(c_scratch);
        client.send_frame(c_scratch).expect("send cmd");
    }
    let served = target
        .recv_batch(&mut |frame| {
            let cid = match Pdu::decode_slice(frame.as_slice()).expect("decode cmd") {
                Pdu::CapsuleCmd(c) => c.cmd.cid,
                other => panic!("unexpected pdu: {other:?}"),
            };
            t_scratch.clear();
            resp_pdu(cid).encode_into(t_scratch);
            target.send_frame(t_scratch).expect("send resp");
        })
        .expect("target drain");
    assert_eq!(served, qd as usize);
    let completed = client
        .recv_batch(
            &mut |frame| match Pdu::decode_slice(frame.as_slice()).expect("decode resp") {
                Pdu::CapsuleResp(_) => {}
                other => panic!("unexpected pdu: {other:?}"),
            },
        )
        .expect("client drain");
    assert_eq!(completed, qd as usize);
}

fn bench_roundtrips(c: &mut Criterion) {
    let mut g = c.benchmark_group("control/roundtrip");

    for (label, mk) in transports() {
        let (client, target) = mk();
        g.throughput(Throughput::Elements(1));
        g.bench_function(BenchmarkId::new("per-frame", label), |b| {
            b.iter(|| roundtrip_owned(&client, &target))
        });

        let mut c_scratch = BytesMut::with_capacity(512);
        let mut t_scratch = BytesMut::with_capacity(512);
        g.bench_function(BenchmarkId::new("batched-qd1", label), |b| {
            b.iter(|| roundtrip_batched(&client, &target, &mut c_scratch, &mut t_scratch, 1))
        });

        for qd in [16u16, 64] {
            g.throughput(Throughput::Elements(qd as u64));
            g.bench_function(BenchmarkId::new(format!("batched-qd{qd}"), label), |b| {
                b.iter(|| roundtrip_batched(&client, &target, &mut c_scratch, &mut t_scratch, qd))
            });
        }
    }
    g.finish();
}

type TransportPair = (Box<dyn Transport>, Box<dyn Transport>);
type TransportCase = (&'static str, fn() -> TransportPair);

fn transports() -> Vec<TransportCase> {
    fn shm() -> TransportPair {
        let (a, b) = ShmTransport::pair(256 * 1024);
        (Box::new(a), Box::new(b))
    }
    fn mem() -> TransportPair {
        let (a, b) = MemTransport::pair();
        (Box::new(a), Box::new(b))
    }
    vec![("shm", shm), ("mem", mem)]
}

/// Measures allocations per round trip for each path and prints them —
/// the bench-visible counterpart of the `zero_alloc` regression test.
fn report_allocations(_c: &mut Criterion) {
    const OPS: u64 = 1000;
    let mut lines = Vec::new();
    for (label, mk) in transports() {
        let (client, target) = mk();
        let mut c_scratch = BytesMut::with_capacity(512);
        let mut t_scratch = BytesMut::with_capacity(512);
        // Warm up ring caches and scratch capacities off the books.
        for _ in 0..64 {
            roundtrip_owned(&client, &target);
            roundtrip_batched(&client, &target, &mut c_scratch, &mut t_scratch, 1);
        }

        let measure = |f: &mut dyn FnMut()| -> f64 {
            TRACK.with(|t| t.set(true));
            ALLOCS.with(|c| c.set(0));
            for _ in 0..OPS {
                f();
            }
            TRACK.with(|t| t.set(false));
            ALLOCS.with(Cell::get) as f64 / OPS as f64
        };
        let owned = measure(&mut || roundtrip_owned(&client, &target));
        let batched =
            measure(&mut || roundtrip_batched(&client, &target, &mut c_scratch, &mut t_scratch, 1));
        lines.push(format!(
            "{label}: per-frame {owned:.2} allocs/op, batched {batched:.2} allocs/op"
        ));
    }
    eprintln!("control_path allocations per round trip:");
    for line in lines {
        eprintln!("  {line}");
    }
}

criterion_group!(benches, bench_roundtrips, report_allocations);
criterion_main!(benches);
