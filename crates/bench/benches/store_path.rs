//! Criterion micro-benchmarks of the durable store's write path: what
//! journaling and durability barriers cost per operation, RAM disk as
//! the zero-cost baseline. MemVfs variants isolate the store's own
//! bookkeeping (journal encode, CRC, checkpoint fold) from the
//! filesystem; the real-file variant adds actual `write`/`fdatasync`
//! syscalls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oaf_ssd::{BlockStore, RamDisk};
use oaf_store::vfs::MemVfs;
use oaf_store::FileDisk;

const BS: usize = 4096;
const SIZES: &[usize] = &[4 << 10, 64 << 10, 128 << 10];
const BLOCKS: u64 = 64 * 1024; // 256 MiB namespace, as examples/perf.rs

fn bench_ram_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/ram-baseline");
    for &size in SIZES {
        let mut disk = RamDisk::new(BS as u32, BLOCKS);
        let payload = vec![0xabu8; size];
        let nlb = (size / BS) as u32;
        let mut lba = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload).expect("write");
                lba = (lba + u64::from(nlb)) % (BLOCKS - 64);
            })
        });
    }
    g.finish();
}

fn bench_journaled_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/journaled-write");
    for &size in SIZES {
        let mut disk =
            FileDisk::create_on(Box::new(MemVfs::new()), BS as u32, BLOCKS, 4 << 20).expect("fmt");
        let payload = vec![0xabu8; size];
        let nlb = (size / BS) as u32;
        let mut lba = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                // Journal append + data apply; checkpoints amortize in
                // (the log wraps every ~4 MiB of payload).
                disk.write(lba, nlb, &payload, false).expect("write");
                lba = (lba + u64::from(nlb)) % (BLOCKS - 64);
            })
        });
    }
    g.finish();
}

fn bench_fua_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/fua-write");
    for &size in SIZES {
        let mut disk =
            FileDisk::create_on(Box::new(MemVfs::new()), BS as u32, BLOCKS, 4 << 20).expect("fmt");
        let payload = vec![0xabu8; size];
        let nlb = (size / BS) as u32;
        let mut lba = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload, true).expect("write");
                lba = (lba + u64::from(nlb)) % (BLOCKS - 64);
            })
        });
    }
    g.finish();
}

fn bench_real_file_fdatasync(c: &mut Criterion) {
    // One size; the point is the syscall floor, not a size sweep. A
    // smaller namespace keeps the benchmark file modest (20 MiB).
    let mut g = c.benchmark_group("store/real-file");
    let path = std::env::temp_dir().join(format!("oaf-bench-store-{}.img", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let size = 16 << 10;
    let nlb = (size / BS) as u32;
    {
        let mut disk = FileDisk::create(&path, BS as u32, 4096).expect("fmt");
        let payload = vec![0xabu8; size];
        let mut lba = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("journaled-write", size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload, false).expect("write");
                lba = (lba + u64::from(nlb)) % (4096 - 16);
            })
        });
        g.bench_with_input(BenchmarkId::new("fua-write", size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload, true).expect("write");
                lba = (lba + u64::from(nlb)) % (4096 - 16);
            })
        });
        g.bench_with_input(BenchmarkId::new("flush", size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload, false).expect("write");
                disk.flush().expect("flush");
                lba = (lba + u64::from(nlb)) % (4096 - 16);
            })
        });
    }
    let _ = std::fs::remove_file(&path);
    g.finish();
}

criterion_group!(
    benches,
    bench_ram_baseline,
    bench_journaled_write,
    bench_fua_write,
    bench_real_file_fdatasync
);
criterion_main!(benches);
