//! Criterion micro-benchmarks of the durable store's write path: what
//! journaling and durability barriers cost per operation, RAM disk as
//! the zero-cost baseline. MemVfs variants isolate the store's own
//! bookkeeping (journal encode, CRC, checkpoint fold) from the
//! filesystem; the real-file variant adds actual `write`/`fdatasync`
//! syscalls. The cached-read group measures the block cache's hit
//! (pure memcpy, zero syscalls) and miss (fill + thrash) paths, and
//! the group-commit group measures concurrent FUA barriers coalescing
//! through the sync coordinator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oaf_ssd::{BlockStore, RamDisk};
use oaf_store::vfs::MemVfs;
use oaf_store::FileDisk;

const BS: usize = 4096;
const SIZES: &[usize] = &[4 << 10, 64 << 10, 128 << 10];
const BLOCKS: u64 = 64 * 1024; // 256 MiB namespace, as examples/perf.rs

fn bench_ram_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/ram-baseline");
    for &size in SIZES {
        let mut disk = RamDisk::new(BS as u32, BLOCKS);
        let payload = vec![0xabu8; size];
        let nlb = (size / BS) as u32;
        let mut lba = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload).expect("write");
                lba = (lba + u64::from(nlb)) % (BLOCKS - 64);
            })
        });
    }
    g.finish();
}

fn bench_journaled_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/journaled-write");
    for &size in SIZES {
        let mut disk =
            FileDisk::create_on(Box::new(MemVfs::new()), BS as u32, BLOCKS, 4 << 20).expect("fmt");
        let payload = vec![0xabu8; size];
        let nlb = (size / BS) as u32;
        let mut lba = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                // Journal append + data apply; checkpoints amortize in
                // (the log wraps every ~4 MiB of payload).
                disk.write(lba, nlb, &payload, false).expect("write");
                lba = (lba + u64::from(nlb)) % (BLOCKS - 64);
            })
        });
    }
    g.finish();
}

fn bench_fua_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/fua-write");
    for &size in SIZES {
        let mut disk =
            FileDisk::create_on(Box::new(MemVfs::new()), BS as u32, BLOCKS, 4 << 20).expect("fmt");
        let payload = vec![0xabu8; size];
        let nlb = (size / BS) as u32;
        let mut lba = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload, true).expect("write");
                lba = (lba + u64::from(nlb)) % (BLOCKS - 64);
            })
        });
    }
    g.finish();
}

fn bench_cached_write(c: &mut Criterion) {
    // Journaled write *through* the block cache: journal append plus a
    // cache insert instead of a data-region write (the apply is
    // deferred to eviction/barrier).
    let mut g = c.benchmark_group("store/cached-write");
    for &size in SIZES {
        let mut disk = FileDisk::create_on(Box::new(MemVfs::new()), BS as u32, BLOCKS, 4 << 20)
            .and_then(|d| d.with_cache(1024))
            .expect("fmt");
        let payload = vec![0xabu8; size];
        let nlb = (size / BS) as u32;
        let mut lba = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload, false).expect("write");
                lba = (lba + u64::from(nlb)) % (BLOCKS - 64);
            })
        });
    }
    g.finish();
}

fn bench_cached_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/cached-read");
    let size = 16 << 10;
    let nlb = (size / BS) as u32;
    let span = 256u64; // working set, blocks
    let payload = vec![0xabu8; size];
    let mut out = vec![0u8; size];
    g.throughput(Throughput::Bytes(size as u64));

    // Hit: the cache covers the working set, so after the prefill every
    // read is a per-block memcpy with zero syscalls.
    let mut disk = FileDisk::create_on(Box::new(MemVfs::new()), BS as u32, BLOCKS, 4 << 20)
        .and_then(|d| d.with_cache(512))
        .expect("fmt");
    for i in 0..span / u64::from(nlb) {
        disk.write(i * u64::from(nlb), nlb, &payload, false)
            .expect("prefill");
    }
    let mut lba = 0u64;
    g.bench_with_input(BenchmarkId::new("hit", size), &size, |b, _| {
        b.iter(|| {
            disk.read(lba, nlb, &mut out).expect("read");
            lba = (lba + u64::from(nlb)) % span;
        })
    });

    // Miss: a 1-entry cache thrashes on every multi-block read — the
    // worst case for fill overhead on top of the data-region read.
    let mut thrash = FileDisk::create_on(Box::new(MemVfs::new()), BS as u32, BLOCKS, 4 << 20)
        .and_then(|d| d.with_cache(1))
        .expect("fmt");
    for i in 0..span / u64::from(nlb) {
        thrash
            .write(i * u64::from(nlb), nlb, &payload, false)
            .expect("prefill");
    }
    let mut lba = 0u64;
    g.bench_with_input(BenchmarkId::new("miss", size), &size, |b, _| {
        b.iter(|| {
            thrash.read(lba, nlb, &mut out).expect("read");
            lba = (lba + u64::from(nlb)) % span;
        })
    });
    g.finish();
}

fn bench_group_commit(c: &mut Criterion) {
    // FUA barriers through the shared disk's sync coordinator: the
    // 1-writer leg is the solo barrier cost, the 4-writer leg shows
    // concurrent barriers retiring on one another's syncs.
    let mut g = c.benchmark_group("store/group-commit");
    for &writers in &[1usize, 4] {
        let disk = FileDisk::create_on(Box::new(MemVfs::new()), BS as u32, BLOCKS, 4 << 20)
            .and_then(|d| d.with_cache(256))
            .expect("fmt")
            .into_shared();
        g.throughput(Throughput::Bytes((BS * writers) as u64));
        g.bench_with_input(
            BenchmarkId::new("fua-writers", writers),
            &writers,
            |b, &w| {
                b.iter_custom(|iters| {
                    let start = std::time::Instant::now();
                    let threads: Vec<_> = (0..w as u64)
                        .map(|t| {
                            let d = disk.clone();
                            std::thread::spawn(move || {
                                let payload = [0xabu8; BS];
                                for i in 0..iters {
                                    d.write(t * 1024 + i % 1024, 1, &payload, true)
                                        .expect("fua write");
                                }
                            })
                        })
                        .collect();
                    for t in threads {
                        t.join().expect("writer");
                    }
                    start.elapsed()
                })
            },
        );
    }
    g.finish();
}

fn bench_mixed_read_fua_qd(c: &mut Criterion) {
    // The async durability pipeline's headline workload: one FUA write
    // dispatched, then a queue-depth of reads served behind it on the
    // same thread — the reactor's shape. `inline` retires the barrier
    // in the dispatch (every queued read waits out the `fdatasync`);
    // `offloaded` parks it on the sync worker's ticket and serves the
    // reads immediately, draining the ticket at the end of the round.
    // The sync carries a 100µs device delay so the barrier dominates
    // the inline rounds the way a real disk's flush would.
    use oaf_store::vfs::SharedMemVfs;
    use oaf_store::SyncStatus;

    let mut g = c.benchmark_group("store/mixed-read-fua");
    let sync_delay = std::time::Duration::from_micros(100);
    for &qd in &[1usize, 8, 32] {
        for offloaded in [false, true] {
            let vfs = SharedMemVfs::new();
            vfs.set_sync_delay(sync_delay);
            let disk = FileDisk::create_on(Box::new(vfs.clone()), BS as u32, BLOCKS, 4 << 20)
                .and_then(|d| d.with_cache(256))
                .expect("fmt")
                .into_shared();
            let disk = if offloaded {
                disk.with_sync_worker(Box::new(vfs))
            } else {
                disk
            };
            let payload = [0xabu8; BS];
            let mut out = [0u8; BS];
            // Seed the read targets.
            for lba in 0..qd as u64 {
                disk.write(lba, 1, &payload, false).expect("seed");
            }
            let mode = if offloaded { "offloaded" } else { "inline" };
            // The figure of merit is *read service time*: from the FUA
            // dispatch until the last queued read is answered. The
            // barrier still retires every round — its drain just
            // happens outside the timed region, like a parked
            // completion released by a later poll pass.
            g.throughput(Throughput::Elements(qd as u64));
            g.bench_with_input(BenchmarkId::new(mode, qd), &qd, |b, &qd| {
                b.iter_custom(|iters| {
                    let mut in_reads = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        let t0 = std::time::Instant::now();
                        let ticket = disk
                            .write_async(64 + (qd as u64 % 8), 1, &payload, true)
                            .expect("fua write");
                        for q in 0..qd as u64 {
                            disk.read(q, 1, &mut out).expect("read");
                        }
                        in_reads += t0.elapsed();
                        // Drain so every round carries one full barrier.
                        if let Some(t) = ticket {
                            loop {
                                match disk.poll_barrier(t) {
                                    SyncStatus::Durable => break,
                                    SyncStatus::Failed => panic!("sync failed"),
                                    SyncStatus::Pending => std::hint::spin_loop(),
                                }
                            }
                        }
                    }
                    in_reads
                })
            });
        }
    }
    g.finish();
}

fn bench_real_file_fdatasync(c: &mut Criterion) {
    // One size; the point is the syscall floor, not a size sweep. A
    // smaller namespace keeps the benchmark file modest (20 MiB).
    let mut g = c.benchmark_group("store/real-file");
    let path = std::env::temp_dir().join(format!("oaf-bench-store-{}.img", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let size = 16 << 10;
    let nlb = (size / BS) as u32;
    {
        let mut disk = FileDisk::create(&path, BS as u32, 4096).expect("fmt");
        let payload = vec![0xabu8; size];
        let mut lba = 0u64;
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("journaled-write", size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload, false).expect("write");
                lba = (lba + u64::from(nlb)) % (4096 - 16);
            })
        });
        g.bench_with_input(BenchmarkId::new("fua-write", size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload, true).expect("write");
                lba = (lba + u64::from(nlb)) % (4096 - 16);
            })
        });
        g.bench_with_input(BenchmarkId::new("flush", size), &size, |b, _| {
            b.iter(|| {
                disk.write(lba, nlb, &payload, false).expect("write");
                disk.flush().expect("flush");
                lba = (lba + u64::from(nlb)) % (4096 - 16);
            })
        });
    }
    let _ = std::fs::remove_file(&path);
    g.finish();
}

criterion_group!(
    benches,
    bench_ram_baseline,
    bench_journaled_write,
    bench_fua_write,
    bench_cached_write,
    bench_cached_read,
    bench_group_commit,
    bench_mixed_read_fua_qd,
    bench_real_file_fdatasync
);
criterion_main!(benches);
