//! Sharded-runtime scale microbenchmarks: blocking write round-trips
//! against the thread-per-core sharded target at 1, 2, 4 and 8 shards —
//! on this box all oversubscribing one core, so the numbers witness
//! *overhead* (per-shard steering, mailbox polling, merged telemetry),
//! not parallel speed-up. The 1-shard point doubles as the regression
//! guard against the single-reactor `spawn_multi` path: both run one
//! reactor thread over the same connection machinery, so their
//! round-trip times must be within noise of each other.
//!
//! Run:    cargo bench -p oaf-bench --bench sharded
//! Smoke:  cargo bench -p oaf-bench --bench sharded -- --test

use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oaf_nvmeof::initiator::{Initiator, InitiatorOptions};
use oaf_nvmeof::nvme::controller::Controller;
use oaf_nvmeof::nvme::namespace::Namespace;
use oaf_nvmeof::server::{spawn_multi, ConnectionSpec};
use oaf_nvmeof::shard::{spawn_sharded, ShardConfig, ShardedTarget};
use oaf_nvmeof::target::TargetConfig;
use oaf_nvmeof::transport::ShmTransport;

const TIMEOUT: Duration = Duration::from_secs(5);
const IO_BYTES: usize = 4096;

fn controller() -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, 2048));
    c
}

fn wire(n: usize) -> (Vec<ConnectionSpec>, Vec<ShmTransport>) {
    let mut specs = Vec::new();
    let mut sides = Vec::new();
    for _ in 0..n {
        let (ct, tt) = ShmTransport::pair(256 * 1024);
        specs.push(ConnectionSpec {
            transport: Box::new(tt),
            cfg: TargetConfig::default(),
            payload: None,
            scope: None,
        });
        sides.push(ct);
    }
    (specs, sides)
}

fn connect_all(sides: Vec<ShmTransport>) -> Vec<Initiator<ShmTransport>> {
    sides
        .into_iter()
        .map(|ct| {
            Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT).expect("connect")
        })
        .collect()
}

/// One blocking 4 KiB write per client, rotated over all clients —
/// every shard serves every iteration, so skew shows up as latency.
fn rotate_writes(clients: &mut [Initiator<ShmTransport>], lba: &mut u64) {
    for (i, c) in clients.iter_mut().enumerate() {
        let base = (i as u64) * 256;
        c.write_blocking(
            1,
            base + (*lba % 64),
            1,
            Bytes::from(vec![*lba as u8; IO_BYTES]),
            TIMEOUT,
        )
        .expect("write");
    }
    *lba += 1;
}

fn bench_sharded_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_roundtrip");
    // Single-reactor baseline: the pre-sharding spawn_multi path with
    // one connection — the "no regression vs the previous runtime"
    // yardstick for the 1-shard point below.
    g.throughput(Throughput::Bytes(IO_BYTES as u64));
    g.bench_function("spawn_multi_baseline", |b| {
        let (specs, sides) = wire(1);
        let handle = spawn_multi(controller(), specs);
        let mut clients = connect_all(sides);
        let mut lba = 0u64;
        b.iter(|| rotate_writes(&mut clients, &mut lba));
        for mut cl in clients {
            cl.disconnect().expect("disconnect");
        }
        handle.shutdown().expect("shutdown");
    });

    for shards in [1usize, 2, 4, 8] {
        // One client per shard; throughput is per full rotation so the
        // per-shard cost stays comparable across scales.
        g.throughput(Throughput::Bytes((IO_BYTES * shards) as u64));
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            let (specs, sides) = wire(shards);
            let target: ShardedTarget =
                spawn_sharded(controller(), specs, ShardConfig::new(shards), None);
            let mut clients = connect_all(sides);
            let mut lba = 0u64;
            b.iter(|| rotate_writes(&mut clients, &mut lba));
            let ops = target.ops_per_shard();
            for mut cl in clients {
                cl.disconnect().expect("disconnect");
            }
            target.shutdown().expect("shutdown");
            assert!(
                ops.iter().all(|&o| o > 0),
                "idle shard during bench: {ops:?}"
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_scale);
criterion_main!(benches);
