//! Criterion benchmarks of the protocol stack: PDU codec throughput and
//! real end-to-end NVMe-oAF I/O (both channels) through the threaded
//! runtime.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oaf_core::conn::FabricSettings;
use oaf_core::locality::{HostRegistry, ProcessId};
use oaf_core::runtime::{launch, AfPair};
use oaf_nvmeof::nvme::command::NvmeCommand;
use oaf_nvmeof::nvme::controller::Controller;
use oaf_nvmeof::nvme::namespace::Namespace;
use oaf_nvmeof::pdu::{CapsuleCmd, DataPdu, DataRef, Pdu};

fn bench_pdu_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdu/codec");
    let cmd = Pdu::CapsuleCmd(CapsuleCmd {
        cmd: NvmeCommand::write(7, 1, 1024, 32),
        data: Some(DataRef::ShmSlot {
            slot: 5,
            len: 131072,
        }),
    });
    g.bench_function("encode-capsule-shm", |b| b.iter(|| cmd.encode()));
    let frame = cmd.encode();
    g.bench_function("decode-capsule-shm", |b| {
        b.iter(|| Pdu::decode(frame.clone()).expect("decode"))
    });
    let data = Pdu::C2HData(DataPdu {
        cid: 1,
        ttag: 0,
        offset: 0,
        last: true,
        data: DataRef::Inline(Bytes::from(vec![0u8; 128 << 10])),
    });
    g.throughput(Throughput::Bytes(128 << 10));
    g.bench_function("encode-inline-128K", |b| b.iter(|| data.encode()));
    g.finish();
}

fn runtime_pair(local: bool, slot: usize) -> AfPair {
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, 4096, 8192));
    let registry = Arc::new(HostRegistry::new());
    launch(
        &registry,
        (ProcessId(1), 1),
        (ProcessId(2), if local { 1 } else { 2 }),
        controller,
        FabricSettings {
            slot_size: slot,
            ..FabricSettings::default()
        },
    )
    .expect("fabric establishment")
}

fn bench_end_to_end(c: &mut Criterion) {
    let timeout = Duration::from_secs(10);
    let mut g = c.benchmark_group("runtime/end-to-end");
    g.sample_size(20);
    for (label, local) in [("oaf-shm", true), ("tcp-fallback", false)] {
        for &size in &[4usize << 10, 128 << 10] {
            let mut pair = runtime_pair(local, size.max(128 << 10));
            let nlb = (size / 4096) as u32;
            g.throughput(Throughput::Bytes(size as u64));
            g.bench_with_input(
                BenchmarkId::new(format!("{label}/write"), size),
                &size,
                |b, &size| {
                    b.iter(|| {
                        let mut buf = pair.client.alloc(size).expect("alloc");
                        buf[0] = 1;
                        pair.client.write(1, 0, nlb, buf, timeout).expect("write");
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("{label}/read"), size),
                &size,
                |b, &size| {
                    b.iter(|| {
                        pair.client.read(1, 0, nlb, size, timeout).expect("read");
                    })
                },
            );
            pair.client.disconnect().expect("disconnect");
            pair.target.shutdown().expect("shutdown");
        }
    }
    g.finish();
}

criterion_group!(benches, bench_pdu_codec, bench_end_to_end);
criterion_main!(benches);
