//! Real-socket NVMe/TCP data-plane microbenchmarks (paper §4.5): one
//! bandwidth-bound I/O — payload out, 1-frame ack back — over a live
//! `127.0.0.1` socket pair, comparing
//!
//! * **naive-blocking** — the seed-style wire path: blocking sockets,
//!   each I/O encoded as one owned PDU frame (`Pdu::encode`: allocate,
//!   memcpy the payload in, CRC-stamp), `write_all`, and a fresh owned
//!   buffer per received frame; against
//! * **vectored+chunked+adaptive** — `TcpTransport`: nonblocking
//!   poll-mode sockets, the payload borrowed into a `write_vectored`
//!   send (no staging copy), large I/O streamed as runtime-selected
//!   chunks (Fig. 9), and the ack awaited under the busy-poll
//!   controller's adaptive spin budget (Fig. 10).
//!
//! The receiving sink runs on its own thread for both paths and never
//! copies more than the kernel forces it to, so the delta isolates the
//! sender-side framing discipline.
//!
//! Run:    cargo bench -p oaf-bench --bench tcp_path
//! Smoke:  cargo bench -p oaf-bench --bench tcp_path -- --test
//!         (also prints MB/s + allocs/op for EXPERIMENTS.md)

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oaf_nvmeof::pdu::{DataPdu, DataRef, Pdu};
use oaf_nvmeof::tcp::{TcpConfig, TcpTransport};
use oaf_nvmeof::transport::Transport;
use oaf_nvmeof::tune::{BusyPollController, ChunkCostModel, ChunkSelector, PollClass, KIB, MIB};

/// Counts allocations on the bench thread when tracking is on;
/// delegates to [`System`]. Thread-local so the sink threads don't
/// pollute the per-op numbers.
struct CountingAlloc;

thread_local! {
    static TRACK: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    if TRACK.try_with(Cell::get).unwrap_or(false) {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SIZES: &[usize] = &[64 * 1024, 256 * 1024, 1024 * 1024];

// ---------------------------------------------------------------------
// Naive blocking baseline: seed-style framing over blocking sockets.
// ---------------------------------------------------------------------

/// One naive endpoint pair plus its sink thread. Frames carry the same
/// PDU encoding as the optimized path (CRC-stamped `plen`-delimited
/// frames) — the sink parses `plen` out of the common header and reads
/// each body into a fresh owned buffer, the seed idiom — and acks each
/// I/O with one byte.
struct NaivePath {
    stream: TcpStream,
    sink: Option<std::thread::JoinHandle<()>>,
}

/// `plen` sits at bytes 4..8 of the PDU common header and covers the
/// whole frame.
const PLEN_OFFSET: usize = 4;
const NAIVE_HDR: usize = 8;

impl NaivePath {
    fn new() -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let (peer, _) = listener.accept().expect("accept");
        peer.set_nodelay(true).expect("nodelay");
        let sink = std::thread::spawn(move || {
            let mut peer = peer;
            let mut hdr = [0u8; NAIVE_HDR];
            loop {
                match peer.read_exact(&mut hdr) {
                    Ok(()) => {}
                    Err(_) => return, // sender hung up
                }
                let plen =
                    u32::from_le_bytes(hdr[PLEN_OFFSET..PLEN_OFFSET + 4].try_into().expect("plen"))
                        as usize;
                let mut frame = vec![0u8; plen - NAIVE_HDR]; // owned buffer per frame
                peer.read_exact(&mut frame).expect("frame body");
                peer.write_all(&[1u8]).expect("ack");
            }
        });
        Self {
            stream,
            sink: Some(sink),
        }
    }

    /// One I/O: encode a fresh owned frame — the allocation, payload
    /// memcpy, and CRC the seed path pays — then blocking `write_all`
    /// and a blocking 1-byte ack read.
    fn io(&mut self, payload: &Bytes) {
        let pdu = Pdu::H2CData(DataPdu {
            cid: 1,
            ttag: 0,
            offset: 0,
            last: true,
            data: DataRef::Inline(payload.clone()),
        });
        let frame = pdu.encode();
        self.stream.write_all(&frame).expect("write_all");
        let mut ack = [0u8; 1];
        self.stream.read_exact(&mut ack).expect("ack");
    }
}

impl Drop for NaivePath {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.sink.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Optimized path: TcpTransport with vectored split sends, runtime
// chunking, and the adaptive busy-poll wait for the ack.
// ---------------------------------------------------------------------

/// The optimized endpoint pair and its sink thread. The sink drains
/// borrowed frames (no decode, no copy beyond the kernel's) and acks
/// each complete I/O with one tiny PDU.
struct OafPath {
    tr: TcpTransport,
    poller: BusyPollController,
    /// Spinning away a busy-poll budget only helps when the peer can
    /// make progress on another core; on a uniprocessor it just starves
    /// the sink, so fall straight through to `yield_now` there.
    spin_ok: bool,
    sink: Option<std::thread::JoinHandle<()>>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl OafPath {
    fn new(io_wire_bytes: usize) -> Self {
        let (tr, peer) =
            TcpTransport::loopback_pair(TcpConfig::default()).expect("loopback sockets");
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_sink = stop.clone();
        let sink = std::thread::spawn(move || {
            let mut scratch = BytesMut::with_capacity(64);
            let mut pending = 0usize;
            let ack = Pdu::C2HData(DataPdu {
                cid: 0,
                ttag: 0,
                offset: 0,
                last: true,
                data: DataRef::ShmSlot { slot: 0, len: 0 },
            });
            ack.encode_into(&mut scratch);
            while !stop_sink.load(std::sync::atomic::Ordering::Relaxed) {
                let mut acks = 0usize;
                let drained = peer.recv_batch(&mut |frame| {
                    // Borrowed accounting only: frame lengths are
                    // deterministic, so a byte count recognizes the end
                    // of each I/O without decoding (decoding inline data
                    // would copy it).
                    pending += frame.as_slice().len();
                    if pending >= io_wire_bytes {
                        pending = 0;
                        acks += 1;
                    }
                });
                for _ in 0..acks {
                    peer.send_frame(&scratch).expect("ack");
                }
                match drained {
                    Ok(0) => std::thread::yield_now(),
                    Ok(_) => {}
                    Err(_) => return, // sender hung up
                }
            }
        });
        Self {
            tr,
            poller: BusyPollController::new(),
            spin_ok: std::thread::available_parallelism().is_ok_and(|n| n.get() > 1),
            sink: Some(sink),
            stop,
        }
    }

    /// One I/O: the payload streams as `chunk`-sized offset-stamped
    /// sub-PDUs, each sent vectored with the payload slice borrowed
    /// (refcount bump, no copy), then the ack is awaited under the
    /// write-class busy-poll budget.
    fn io(&mut self, payload: &Bytes, chunk: usize, scratch: &mut BytesMut) {
        let mut offset = 0usize;
        while offset < payload.len() {
            let end = (offset + chunk).min(payload.len());
            let pdu = Pdu::H2CData(DataPdu {
                cid: 1,
                ttag: 0,
                offset: offset as u32,
                last: end == payload.len(),
                data: DataRef::Inline(payload.slice(offset..end)),
            });
            scratch.clear();
            let tail = pdu.encode_split_into(scratch).expect("inline pdu");
            self.tr.send_split(scratch, tail).expect("split send");
            offset = end;
        }
        let t0 = Instant::now();
        let budget = self.poller.budget(PollClass::Write);
        let mut got = 0usize;
        while got == 0 {
            got = self.tr.recv_batch(&mut |_| {}).expect("ack");
            if got == 0 {
                if self.spin_ok && t0.elapsed() < budget {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        self.poller.observe(PollClass::Write, t0.elapsed());
    }

    /// Total wire bytes one I/O of `len` occupies at `chunk` granularity
    /// (so the sink can recognize I/O boundaries without decoding).
    fn wire_bytes(len: usize, chunk: usize) -> usize {
        let mut total = 0usize;
        let mut offset = 0usize;
        let mut probe = BytesMut::with_capacity(128);
        let payload = Bytes::from(vec![0u8; len.min(chunk)]);
        while offset < len {
            let end = (offset + chunk).min(len);
            let pdu = Pdu::H2CData(DataPdu {
                cid: 1,
                ttag: 0,
                offset: offset as u32,
                last: end == len,
                data: DataRef::Inline(payload.slice(0..end - offset)),
            });
            probe.clear();
            let tail = pdu.encode_split_into(&mut probe).expect("inline pdu");
            total += probe.len() + tail.len();
            offset = end;
        }
        total
    }
}

impl Drop for OafPath {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.sink.take() {
            let _ = h.join();
        }
    }
}

fn select_chunk(size: usize) -> usize {
    // The connection-setup policy: pick once from the link cost model
    // over a large-I/O mix (25 Gb/s → 512 KiB, the paper's optimum),
    // never chunk below the I/O size itself.
    let selector = ChunkSelector::new(ChunkCostModel::for_link_gbps(25.0));
    (selector.select(&[128 * KIB, 256 * KIB, 512 * KIB, MIB]) as usize).min(size.max(1))
}

fn bench_tcp_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp/io-acked");
    g.sample_size(20);

    for &size in SIZES {
        g.throughput(Throughput::Bytes(size as u64));

        let payload = Bytes::from(vec![0x5au8; size]);

        let mut naive = NaivePath::new();
        g.bench_function(BenchmarkId::new("naive-blocking", size / 1024), |b| {
            b.iter(|| naive.io(&payload))
        });
        drop(naive);

        let chunk = select_chunk(size);
        let mut oaf = OafPath::new(OafPath::wire_bytes(size, chunk));
        let mut scratch = BytesMut::with_capacity(256);
        g.bench_function(BenchmarkId::new("vectored-chunked", size / 1024), |b| {
            b.iter(|| oaf.io(&payload, chunk, &mut scratch))
        });
        drop(oaf);
    }
    g.finish();
}

/// Manual before/after report — MB/s and sender-side allocations per
/// I/O for both paths at every size, printed even under `-- --test` so
/// the numbers land in EXPERIMENTS.md straight from the smoke run.
/// (Receive-side cost is architectural, not counted: the naive sink
/// materializes one owned buffer per frame, the optimized sink borrows.)
fn report_throughput(_c: &mut Criterion) {
    const WARMUP: usize = 8;
    eprintln!("tcp_path: payload out + ack back over 127.0.0.1 (MB/s, sender allocs/op):");
    for &size in SIZES {
        let ops = (16 * 1024 * 1024 / size).max(8);

        let payload = Bytes::from(vec![0x5au8; size]);

        let mut naive = NaivePath::new();
        for _ in 0..WARMUP {
            naive.io(&payload);
        }
        TRACK.with(|t| t.set(true));
        ALLOCS.with(|c| c.set(0));
        let t0 = Instant::now();
        for _ in 0..ops {
            naive.io(&payload);
        }
        let naive_dt = t0.elapsed();
        TRACK.with(|t| t.set(false));
        let naive_allocs = ALLOCS.with(Cell::get) as f64 / ops as f64;
        drop(naive);

        let chunk = select_chunk(size);
        let mut oaf = OafPath::new(OafPath::wire_bytes(size, chunk));
        let mut scratch = BytesMut::with_capacity(256);
        for _ in 0..WARMUP {
            oaf.io(&payload, chunk, &mut scratch);
        }
        TRACK.with(|t| t.set(true));
        ALLOCS.with(|c| c.set(0));
        let t0 = Instant::now();
        for _ in 0..ops {
            oaf.io(&payload, chunk, &mut scratch);
        }
        let oaf_dt = t0.elapsed();
        TRACK.with(|t| t.set(false));
        let oaf_allocs = ALLOCS.with(Cell::get) as f64 / ops as f64;
        let budget = oaf.poller.budget(PollClass::Write);
        drop(oaf);

        let mbps = |dt: Duration| (ops * size) as f64 / dt.as_secs_f64() / (1024.0 * 1024.0);
        eprintln!(
            "  {:>4} KiB: naive-blocking {:>8.1} MB/s ({:.2} allocs/op)  \
             vectored+chunked+adaptive {:>8.1} MB/s ({:.2} allocs/op, chunk {} KiB, budget {:?})",
            size / 1024,
            mbps(naive_dt),
            naive_allocs,
            mbps(oaf_dt),
            oaf_allocs,
            chunk / 1024,
            budget,
        );
    }
}

criterion_group!(benches, bench_tcp_path, report_throughput);
criterion_main!(benches);
