//! Criterion micro-benchmarks of the real shared-memory channel: the
//! Fig. 8 ablation ladder measured on actual hardware (this machine)
//! rather than the calibrated model — lock-free ring vs locked region,
//! one-copy send vs zero-copy lease, across payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oaf_shmem::channel::Side;
use oaf_shmem::layout::Dir;
use oaf_shmem::locked::LockedShm;
use oaf_shmem::ShmChannel;

const SIZES: &[usize] = &[4 << 10, 64 << 10, 128 << 10, 512 << 10];

fn bench_lock_free_one_copy(c: &mut Criterion) {
    let mut g = c.benchmark_group("shm/lock-free-one-copy");
    for &size in SIZES {
        let ch = ShmChannel::allocate(8, size);
        let client = ch.endpoint(Side::Client);
        let target = ch.endpoint(Side::Target);
        let payload = vec![0xabu8; size];
        let mut out = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let (slot, len) = client.send(&payload).expect("send");
                let guard = target.recv(slot, len).expect("recv");
                guard.copy_to(&mut out[..len]);
            })
        });
    }
    g.finish();
}

fn bench_lock_free_zero_copy(c: &mut Criterion) {
    let mut g = c.benchmark_group("shm/lock-free-zero-copy");
    for &size in SIZES {
        let ch = ShmChannel::allocate(8, size);
        let client = ch.endpoint(Side::Client);
        let target = ch.endpoint(Side::Target);
        let mut out = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                // The application builds its data in place (§4.4.3): the
                // publish itself costs nothing.
                let mut lease = client.lease(size).expect("lease");
                lease[0] = 1; // the app "fills" its buffer
                let (slot, len) = lease.publish();
                let guard = target.recv(slot, len).expect("recv");
                guard.copy_to(&mut out[..len]);
            })
        });
    }
    g.finish();
}

fn bench_locked_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("shm/locked-baseline");
    for &size in SIZES {
        let shm = LockedShm::allocate(8, size);
        let payload = vec![0xabu8; size];
        let mut out = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let slot = shm.send(Dir::ToTarget, &payload).expect("send");
                shm.recv(Dir::ToTarget, slot, &mut out).expect("recv");
            })
        });
    }
    g.finish();
}

fn bench_cross_thread_pipeline(c: &mut Criterion) {
    // Producer and consumer on separate threads: the steady-state rate of
    // the full duplex ring under real contention.
    let mut g = c.benchmark_group("shm/cross-thread");
    let size = 128 << 10;
    g.throughput(Throughput::Bytes(size as u64));
    g.bench_function("128K-pipelined", |b| {
        b.iter_custom(|iters| {
            let ch = ShmChannel::allocate(16, size);
            let client = ch.endpoint(Side::Client);
            let target = ch.endpoint(Side::Target);
            let (tx, rx) = std::sync::mpsc::channel::<(usize, usize)>();
            let consumer = std::thread::spawn(move || {
                let mut out = vec![0u8; size];
                while let Ok((slot, len)) = rx.recv() {
                    let guard = loop {
                        match target.recv(slot, len) {
                            Ok(g) => break g,
                            Err(_) => std::hint::spin_loop(),
                        }
                    };
                    guard.copy_to(&mut out[..len]);
                }
            });
            let payload = vec![0x5au8; size];
            let start = std::time::Instant::now();
            for _ in 0..iters {
                loop {
                    match client.send(&payload) {
                        Ok(pair) => {
                            tx.send(pair).expect("consumer alive");
                            break;
                        }
                        Err(_) => std::hint::spin_loop(),
                    }
                }
            }
            drop(tx);
            consumer.join().expect("consumer");
            start.elapsed()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lock_free_one_copy,
    bench_lock_free_zero_copy,
    bench_locked_baseline,
    bench_cross_thread_pipeline
);
criterion_main!(benches);
