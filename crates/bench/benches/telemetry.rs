//! Telemetry hot-path microbenchmarks: the per-record cost of every
//! primitive the runtime calls inline (counter add, gauge high-water
//! update, log2 histogram record), the read-side cost of snapshotting
//! and exporting a realistically-sized registry, and the end-to-end
//! overhead of explicit per-op recording on a control-path round trip.
//!
//! Run:    cargo bench -p oaf-bench --bench telemetry
//! Smoke:  cargo bench -p oaf-bench --bench telemetry -- --test

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oaf_nvmeof::nvme::command::NvmeCommand;
use oaf_nvmeof::nvme::completion::NvmeCompletion;
use oaf_nvmeof::pdu::{CapsuleCmd, CapsuleResp, DataRef, Pdu};
use oaf_nvmeof::transport::{ShmTransport, Transport};
use oaf_telemetry::{export, Counter, Gauge, Histo, Registry};

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/record");
    g.throughput(Throughput::Elements(1));

    let counter = Counter::new();
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    g.bench_function("counter_add", |b| b.iter(|| counter.add(4096)));

    let gauge = Gauge::new();
    g.bench_function("gauge_set", |b| b.iter(|| gauge.set(42)));
    let mut level = 0i64;
    g.bench_function("gauge_add_sub_hwm", |b| {
        b.iter(|| {
            level += 1;
            gauge.add(1);
            if level >= 8 {
                gauge.sub(level);
                level = 0;
            }
        })
    });

    let histo = Histo::new();
    let mut v = 0u64;
    g.bench_function("histo_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            histo.record(v >> 34);
        })
    });
    g.finish();
}

/// A registry shaped like the one a live `AfPair` ends up with: a
/// handful of scopes, a few dozen counters/gauges, several histograms.
fn populated_registry() -> Registry {
    let registry = Registry::new();
    for scope_name in [
        "transport_client",
        "transport_target",
        "control_ring_client",
        "control_ring_target",
        "client",
        "target",
        "fabric",
        "app",
    ] {
        let scope = registry.scope(scope_name);
        for i in 0..6 {
            let c = scope.counter(&format!("counter{i}"));
            c.add(i * 1_000_003 + 17);
            let gauge = scope.gauge(&format!("gauge{i}"));
            gauge.observe_max(i as i64 * 31);
        }
        for i in 0..3 {
            let h = scope.histo(&format!("lat{i}_ns"));
            for k in 1..512u64 {
                h.record(k * k * (i + 1));
            }
        }
    }
    registry
}

fn bench_read_side(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/read");
    let registry = populated_registry();
    g.bench_function("snapshot", |b| b.iter(|| registry.snapshot()));

    let snap = registry.snapshot();
    g.bench_function("prometheus_text", |b| {
        b.iter(|| export::prometheus_text(&snap))
    });
    g.bench_function("json", |b| b.iter(|| export::json(&snap)));
    g.finish();
}

fn cycle(
    client: &ShmTransport,
    target: &ShmTransport,
    c_scratch: &mut BytesMut,
    t_scratch: &mut BytesMut,
) {
    let cmd = Pdu::CapsuleCmd(CapsuleCmd {
        cmd: NvmeCommand::write(7, 1, 64, 32),
        data: Some(DataRef::ShmSlot {
            slot: 3,
            len: 128 * 1024,
        }),
    });
    c_scratch.clear();
    cmd.encode_into(c_scratch);
    client.send_frame(c_scratch).expect("send cmd");
    target
        .recv_batch(&mut |frame| {
            let cid = match Pdu::decode_slice(frame.as_slice()).expect("decode cmd") {
                Pdu::CapsuleCmd(c) => c.cmd.cid,
                other => panic!("unexpected pdu: {other:?}"),
            };
            let resp = Pdu::CapsuleResp(CapsuleResp {
                completion: NvmeCompletion::ok(cid),
            });
            t_scratch.clear();
            resp.encode_into(t_scratch);
            target.send_frame(t_scratch).expect("send resp");
        })
        .expect("target drain");
    client
        .recv_batch(&mut |frame| {
            Pdu::decode_slice(frame.as_slice()).expect("decode resp");
        })
        .expect("client drain");
}

/// The transport's built-in accounting is always on; this measures how
/// much *additional* per-op recording costs on top of a full PDU round
/// trip — the price an application pays for its own counters/histos.
fn bench_roundtrip_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/roundtrip");
    g.throughput(Throughput::Elements(1));

    let (client, target) = ShmTransport::pair(256 * 1024);
    let mut c_scratch = BytesMut::with_capacity(512);
    let mut t_scratch = BytesMut::with_capacity(512);

    g.bench_function(BenchmarkId::new("shm", "baseline"), |b| {
        b.iter(|| cycle(&client, &target, &mut c_scratch, &mut t_scratch))
    });

    let registry = Registry::new();
    client
        .metrics()
        .register(&registry.scope("transport_client"));
    target
        .metrics()
        .register(&registry.scope("transport_target"));
    let app = registry.scope("app");
    let ops = app.counter("ops");
    let lat = app.histo("cycle_ns");
    g.bench_function(BenchmarkId::new("shm", "plus-app-recording"), |b| {
        b.iter(|| {
            let t0 = std::time::Instant::now();
            cycle(&client, &target, &mut c_scratch, &mut t_scratch);
            ops.inc();
            lat.record_nanos(t0.elapsed());
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_read_side,
    bench_roundtrip_overhead
);
criterion_main!(benches);
