//! Property tests: the cached-index [`ByteRing`] is observationally a
//! FIFO byte queue — the same contract as the pre-optimization ring.
//!
//! The shadow head/tail caches are pure go-faster state: any random
//! interleaving of producer ops (`push`, `push_n`) and consumer ops
//! (`pop`, `pop_into`, `drain`) must deliver every frame intact, in
//! order, and report `RingFull` only under genuine congestion (never on
//! an empty ring for a frame that fits).

use std::collections::VecDeque;
use std::sync::Arc;

use oaf_shmem::byte_ring::ByteRing;
use oaf_shmem::{ShmError, ShmRegion};
use proptest::prelude::*;

const CAPACITY: u64 = 1024;

#[derive(Clone, Debug)]
enum Op {
    Push(Vec<u8>),
    PushN(Vec<Vec<u8>>),
    Pop,
    PopInto,
    Drain,
}

fn frame() -> impl Strategy<Value = Vec<u8>> {
    // Well under max_frame for CAPACITY, so RingFull can only mean
    // congestion; large enough relative to CAPACITY to wrap often.
    proptest::collection::vec(any::<u8>(), 0..160)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => frame().prop_map(Op::Push),
        2 => proptest::collection::vec(frame(), 1..6).prop_map(Op::PushN),
        2 => Just(Op::Pop),
        2 => Just(Op::PopInto),
        1 => Just(Op::Drain),
    ]
}

fn ring() -> ByteRing {
    let region = Arc::new(ShmRegion::new(ByteRing::required_len(CAPACITY)));
    ByteRing::new(region, 0, CAPACITY).expect("sized ring")
}

proptest! {
    #[test]
    fn any_op_interleaving_matches_fifo_model(
        ops in proptest::collection::vec(op(), 1..300),
    ) {
        let r = ring();
        let mut model: VecDeque<Vec<u8>> = VecDeque::new();
        let mut scratch = Vec::new();
        for op in ops {
            match op {
                Op::Push(frame) => match r.push(&frame) {
                    Ok(()) => model.push_back(frame),
                    Err(ShmError::RingFull) => {
                        // A fitting frame is only ever refused under
                        // congestion — an empty ring must accept it.
                        prop_assert!(!model.is_empty(), "RingFull on empty ring");
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("push: {e}"))),
                },
                Op::PushN(burst) => {
                    let n = r.push_n(burst.iter()).map_err(|e| {
                        TestCaseError::fail(format!("push_n: {e}"))
                    })?;
                    prop_assert!(n <= burst.len());
                    if n < burst.len() {
                        prop_assert!(!model.is_empty() || n > 0, "short burst on empty ring");
                    }
                    for frame in burst.into_iter().take(n) {
                        model.push_back(frame);
                    }
                }
                Op::Pop => prop_assert_eq!(r.pop(), model.pop_front()),
                Op::PopInto => match r.pop_into(&mut scratch) {
                    Some(n) => {
                        let want = model.pop_front();
                        prop_assert!(want.is_some(), "ring had a frame the model lacked");
                        let want = want.unwrap();
                        prop_assert_eq!(n, want.len());
                        prop_assert_eq!(&scratch, &want, "torn frame");
                    }
                    None => prop_assert!(model.is_empty(), "ring empty, model not"),
                },
                Op::Drain => {
                    let mut mismatch = None;
                    let drained = r.drain(|frame| {
                        if mismatch.is_some() {
                            return;
                        }
                        match model.pop_front() {
                            Some(want) if frame == &want[..] => {}
                            Some(want) => {
                                mismatch = Some(format!(
                                    "torn or reordered frame: got {} bytes, want {} bytes",
                                    frame.len(),
                                    want.len()
                                ))
                            }
                            None => mismatch = Some("ring had a frame the model lacked".into()),
                        }
                    });
                    if let Some(m) = mismatch {
                        return Err(TestCaseError::fail(m));
                    }
                    if drained == 0 {
                        prop_assert!(model.is_empty(), "drain saw nothing, model not empty");
                    }
                }
            }
        }
        // Final flush: ring and model agree to the very end.
        while let Some(got) = r.pop() {
            let want = model.pop_front();
            prop_assert_eq!(Some(got), want);
        }
        prop_assert!(model.is_empty(), "model retained frames the ring lost");
        prop_assert!(r.is_empty());
    }

    #[test]
    fn clone_mid_stream_is_transparent(
        prefix in proptest::collection::vec(frame(), 0..8),
        suffix in proptest::collection::vec(frame(), 0..8),
        consume in 0usize..8,
    ) {
        // A clone taken at any point (fresh shadow caches) must observe
        // exactly the unconsumed frames — a stale cache would tear or
        // duplicate.
        let r = ring();
        let mut model: VecDeque<Vec<u8>> = VecDeque::new();
        for f in &prefix {
            if r.push(f).is_ok() {
                model.push_back(f.clone());
            }
        }
        for _ in 0..consume.min(model.len()) {
            prop_assert_eq!(r.pop(), model.pop_front());
        }
        let c = r.clone();
        for f in &suffix {
            if c.push(f).is_ok() {
                model.push_back(f.clone());
            }
        }
        while let Some(got) = c.pop() {
            prop_assert_eq!(Some(got), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }
}
