//! Property-based tests of the Buffer Manager's lease lifecycle: under
//! random interleavings of lease/publish/drop/consume, a slot is reused
//! only after it is freed, no two live leases ever overlap, and payloads
//! survive from publish to consume uncorrupted. Publish-after-drop and
//! double-consume are rejected by the slot state machine.

use std::sync::Arc;

use oaf_shmem::bufmgr::{BufferManager, SlotLease};
use oaf_shmem::layout::{Dir, DoubleBufferLayout};
use oaf_shmem::slot::{SlotRing, SlotState};
use oaf_shmem::{ShmError, ShmRegion};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Take a lease and stamp its bytes.
    Lease(u8),
    /// Publish the oldest live lease.
    Publish,
    /// Drop the oldest live lease unpublished (abort).
    Drop,
    /// Consume the oldest published slot and verify its contents.
    Consume,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Lease),
            Just(Op::Publish),
            Just(Op::Drop),
            Just(Op::Consume),
        ],
        1..200,
    )
}

fn ring_and_manager(depth: usize, slot_size: usize) -> (SlotRing, BufferManager) {
    let layout = DoubleBufferLayout::new(depth, slot_size);
    let region = Arc::new(ShmRegion::new(layout.total()));
    let ring = SlotRing::new(region, layout, Dir::ToTarget).expect("ring");
    let mgr = BufferManager::new(ring.clone());
    (ring, mgr)
}

proptest! {
    #[test]
    fn lease_lifecycle_holds_under_random_interleavings(
        ops in arb_ops(),
        depth in 1usize..9,
    ) {
        let (ring, mgr) = ring_and_manager(depth, 256);
        let mut live: std::collections::VecDeque<(SlotLease, u8)> =
            std::collections::VecDeque::new();
        let mut published: std::collections::VecDeque<(usize, usize, u8)> =
            std::collections::VecDeque::new();

        for op in ops {
            match op {
                Op::Lease(stamp) => match mgr.lease(64) {
                    Ok(mut lease) => {
                        // A freshly issued lease must not alias any live
                        // lease or any published-but-unconsumed slot.
                        prop_assert!(
                            live.iter().all(|(l, _)| l.slot() != lease.slot()),
                            "slot {} double-leased", lease.slot()
                        );
                        prop_assert!(
                            published.iter().all(|&(s, _, _)| s != lease.slot()),
                            "slot {} reused before consume", lease.slot()
                        );
                        lease.copy_from_slice(&[stamp; 64]);
                        live.push_back((lease, stamp));
                    }
                    Err(ShmError::NoFreeSlot) => {
                        // Only legal when the whole pool is in flight.
                        prop_assert_eq!(
                            live.len() + published.len(),
                            depth,
                            "NoFreeSlot with free slots remaining"
                        );
                    }
                    Err(e) => prop_assert!(false, "unexpected: {e}"),
                },
                Op::Publish => {
                    if let Some((lease, stamp)) = live.pop_front() {
                        let (slot, len) = lease.publish();
                        prop_assert_eq!(len, 64);
                        prop_assert_eq!(
                            ring.state(slot).expect("in range"),
                            SlotState::Ready
                        );
                        published.push_back((slot, len, stamp));
                    }
                }
                Op::Drop => {
                    if let Some((lease, _)) = live.pop_front() {
                        let slot = lease.slot();
                        drop(lease);
                        // An aborted lease frees its slot immediately...
                        prop_assert_eq!(
                            ring.state(slot).expect("in range"),
                            SlotState::Free
                        );
                        // ...and never becomes visible to the consumer.
                        prop_assert!(matches!(
                            ring.begin_read(slot, 64),
                            Err(ShmError::WrongState { .. })
                        ));
                    }
                }
                Op::Consume => {
                    if let Some((slot, len, stamp)) = published.pop_front() {
                        {
                            let guard = ring.begin_read(slot, len).expect("published");
                            prop_assert!(
                                guard.as_slice().iter().all(|&b| b == stamp),
                                "payload corrupted in slot {slot}"
                            );
                        }
                        prop_assert_eq!(
                            ring.state(slot).expect("in range"),
                            SlotState::Free
                        );
                        // Double-consume of a freed slot is rejected.
                        prop_assert!(matches!(
                            ring.begin_read(slot, len),
                            Err(ShmError::WrongState { .. })
                        ));
                    }
                }
            }
        }

        // Bookkeeping invariants at quiescence.
        let stats = mgr.stats();
        prop_assert_eq!(stats.leases_live.get() as usize, live.len());
        drop(live);
        for (slot, len, stamp) in published {
            let guard = ring.begin_read(slot, len).expect("published");
            prop_assert!(guard.as_slice().iter().all(|&b| b == stamp));
        }
        for s in 0..depth {
            prop_assert_eq!(ring.state(s).expect("in range"), SlotState::Free);
        }
        prop_assert_eq!(stats.leases_live.get(), 0);
    }

    /// Fill the pool completely: every live lease occupies a distinct
    /// slot, and writes through one lease never bleed into another.
    #[test]
    fn live_leases_never_overlap(depth in 1usize..9) {
        let (_ring, mgr) = ring_and_manager(depth, 128);
        let mut leases: Vec<SlotLease> = (0..depth)
            .map(|_| mgr.lease(128).expect("pool not yet full"))
            .collect();
        let slots: std::collections::BTreeSet<usize> =
            leases.iter().map(|l| l.slot()).collect();
        prop_assert_eq!(slots.len(), depth, "aliased slots");
        for (i, lease) in leases.iter_mut().enumerate() {
            lease.copy_from_slice(&[i as u8 + 1; 128]);
        }
        for (i, lease) in leases.iter().enumerate() {
            prop_assert!(
                lease.iter().all(|&b| b == i as u8 + 1),
                "lease {i} overwritten by a neighbor"
            );
        }
        prop_assert!(matches!(mgr.lease(1), Err(ShmError::NoFreeSlot)));
    }
}

#[test]
fn dropped_lease_slot_is_reissued_and_reusable() {
    let (ring, mgr) = ring_and_manager(1, 64);
    let lease = mgr.lease(16).expect("free");
    let slot = lease.slot();
    drop(lease);
    // The freed slot is immediately reusable for a full round trip.
    let mut again = mgr.lease(16).expect("freed by drop");
    assert_eq!(again.slot(), slot);
    again.copy_from_slice(&[9; 16]);
    let (slot, len) = again.publish();
    let guard = ring.begin_read(slot, len).expect("published");
    assert!(guard.as_slice().iter().all(|&b| b == 9));
}

#[test]
fn consume_before_publish_rejected() {
    let (ring, mgr) = ring_and_manager(2, 64);
    let lease = mgr.lease(8).expect("free");
    // The consumer cannot read a slot that is merely leased (Writing):
    // publication is the only hand-off point.
    assert!(matches!(
        ring.begin_read(lease.slot(), 8),
        Err(ShmError::WrongState { .. })
    ));
}
