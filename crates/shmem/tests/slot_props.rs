//! Property-based tests of the lock-free double-buffer state machine:
//! random interleavings of claim/publish/consume/abort must never alias
//! two writers, never lose a payload, and always return slots to `Free`.

use std::sync::Arc;

use oaf_shmem::layout::{Dir, DoubleBufferLayout};
use oaf_shmem::slot::{SlotRing, SlotState, WriteGuard};
use oaf_shmem::{ShmError, ShmRegion};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Claim the next slot and stage a payload byte.
    Claim(u8),
    /// Publish the oldest staged claim.
    Publish,
    /// Abort the oldest staged claim.
    Abort,
    /// Consume the oldest published slot and verify its contents.
    Consume,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u8>().prop_map(Op::Claim),
            Just(Op::Publish),
            Just(Op::Abort),
            Just(Op::Consume),
        ],
        1..200,
    )
}

proptest! {
    #[test]
    fn slot_state_machine_holds_under_random_interleavings(
        ops in arb_ops(),
        depth in 1usize..9,
    ) {
        let slot_size = 256usize;
        let layout = DoubleBufferLayout::new(depth, slot_size);
        let region = Arc::new(ShmRegion::new(layout.total()));
        let ring = SlotRing::new(region, layout, Dir::ToTarget).expect("ring");

        // Model state: staged claims (guard + stamp) and published
        // (slot, len, stamp) queues.
        let mut staged: std::collections::VecDeque<(WriteGuard, u8)> =
            std::collections::VecDeque::new();
        let mut published: std::collections::VecDeque<(usize, usize, u8)> =
            std::collections::VecDeque::new();

        for op in ops {
            match op {
                Op::Claim(stamp) => {
                    match ring.begin_write() {
                        Ok(mut guard) => {
                            let body = vec![stamp; 64];
                            guard.fill(&body).expect("fits");
                            staged.push_back((guard, stamp));
                        }
                        Err(ShmError::NoFreeSlot) => {
                            // Legal whenever all slots are staged,
                            // published, or mid-consume.
                            prop_assert!(
                                staged.len() + published.len() >= 1,
                                "NoFreeSlot with everything free"
                            );
                        }
                        Err(e) => prop_assert!(false, "unexpected: {e}"),
                    }
                }
                Op::Publish => {
                    if let Some((guard, stamp)) = staged.pop_front() {
                        let (slot, len) = guard.publish();
                        prop_assert_eq!(len, 64);
                        prop_assert_eq!(
                            ring.state(slot).expect("in range"),
                            SlotState::Ready
                        );
                        published.push_back((slot, len, stamp));
                    }
                }
                Op::Abort => {
                    if let Some((guard, _)) = staged.pop_front() {
                        let slot = guard.slot();
                        drop(guard); // abort: slot must return to Free
                        prop_assert_eq!(
                            ring.state(slot).expect("in range"),
                            SlotState::Free
                        );
                    }
                }
                Op::Consume => {
                    if let Some((slot, len, stamp)) = published.pop_front() {
                        let guard = ring.begin_read(slot, len).expect("published");
                        prop_assert!(
                            guard.as_slice().iter().all(|&b| b == stamp),
                            "payload corrupted in slot {slot}"
                        );
                        drop(guard);
                        prop_assert_eq!(
                            ring.state(slot).expect("in range"),
                            SlotState::Free
                        );
                    }
                }
            }
        }

        // Drain everything; the ring must end fully Free.
        for (guard, _) in staged {
            drop(guard);
        }
        for (slot, len, stamp) in published {
            let guard = ring.begin_read(slot, len).expect("published");
            prop_assert!(guard.as_slice().iter().all(|&b| b == stamp));
        }
        for s in 0..depth {
            prop_assert_eq!(ring.state(s).expect("in range"), SlotState::Free);
        }
    }

    /// Two rings over the same region (one per direction) never interfere,
    /// whatever the interleaving of sends on each side.
    #[test]
    fn directions_never_interfere(
        to_target in proptest::collection::vec(any::<u8>(), 1..40),
        to_client in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let layout = DoubleBufferLayout::new(4, 128);
        let region = Arc::new(ShmRegion::new(layout.total()));
        let t_ring = SlotRing::new(region.clone(), layout, Dir::ToTarget).expect("ring");
        let c_ring = SlotRing::new(region, layout, Dir::ToClient).expect("ring");

        let mut ti = to_target.iter();
        let mut ci = to_client.iter();
        loop {
            let t = ti.next();
            let c = ci.next();
            if t.is_none() && c.is_none() {
                break;
            }
            if let Some(&stamp) = t {
                let mut g = t_ring.begin_write().expect("free");
                g.fill(&[stamp; 100]).expect("fits");
                let (slot, len) = g.publish();
                let r = t_ring.begin_read(slot, len).expect("ready");
                prop_assert!(r.as_slice().iter().all(|&b| b == stamp));
            }
            if let Some(&stamp) = c {
                let mut g = c_ring.begin_write().expect("free");
                g.fill(&[stamp; 100]).expect("fits");
                let (slot, len) = g.publish();
                let r = c_ring.begin_read(slot, len).expect("ready");
                prop_assert!(r.as_slice().iter().all(|&b| b == stamp));
            }
        }
    }
}
