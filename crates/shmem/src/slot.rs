//! Lock-free slot ring over one direction of the double buffer.
//!
//! Every slot carries a one-byte state machine stored *inside* the shared
//! region:
//!
//! ```text
//!   Free --CAS--> Writing --store(Release)--> Ready
//!    ^                                          |
//!    |                                   CAS(Acquire)
//!    +---- store(Release) <--- Reading <--------+
//! ```
//!
//! The producer picks slots round-robin (the paper's scheme, §4.4.1): with
//! the application queue depth bounded by the ring depth, the round-robin
//! slot is guaranteed drained by the time it comes around again, so the
//! CAS never spins in the steady state — it exists to *detect* misuse, not
//! to wait. Publication is release/acquire: the payload bytes written
//! while in `Writing` happen-before any read that observed `Ready`.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::layout::{Dir, DoubleBufferLayout};
use crate::region::ShmRegion;
use crate::ShmError;

/// State of a slot, as stored in its in-region state byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotState {
    /// Drained; available to the producer.
    Free = 0,
    /// Producer is filling it.
    Writing = 1,
    /// Published; available to the consumer.
    Ready = 2,
    /// Consumer is draining it.
    Reading = 3,
}

impl SlotState {
    fn from_u8(v: u8) -> SlotState {
        match v {
            0 => SlotState::Free,
            1 => SlotState::Writing,
            2 => SlotState::Ready,
            3 => SlotState::Reading,
            other => unreachable!("corrupt slot state byte {other}"),
        }
    }
}

/// One direction's slot ring. Cloning shares the underlying ring; exactly
/// one logical producer and one logical consumer must use it (single
/// client ↔ single target per channel, as the paper isolates channels per
/// client for security, §4.2).
#[derive(Clone)]
pub struct SlotRing {
    region: Arc<ShmRegion>,
    layout: DoubleBufferLayout,
    dir: Dir,
    next: Arc<AtomicUsize>,
}

impl SlotRing {
    /// Creates the ring for direction `dir` of `layout` within `region`.
    pub fn new(
        region: Arc<ShmRegion>,
        layout: DoubleBufferLayout,
        dir: Dir,
    ) -> Result<Self, ShmError> {
        layout.check_fits(region.len())?;
        Ok(SlotRing {
            region,
            layout,
            dir,
            next: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Number of slots.
    pub fn depth(&self) -> usize {
        self.layout.depth
    }

    /// Capacity of each slot in bytes.
    pub fn slot_size(&self) -> usize {
        self.layout.slot_size
    }

    fn state_atom(&self, slot: usize) -> &AtomicU8 {
        self.region
            .atomic_u8(self.layout.state_offset(self.dir, slot))
    }

    /// Current state of `slot` (racy snapshot, for introspection/tests).
    pub fn state(&self, slot: usize) -> Result<SlotState, ShmError> {
        if slot >= self.layout.depth {
            return Err(ShmError::BadSlot(slot));
        }
        Ok(SlotState::from_u8(
            self.state_atom(slot).load(Ordering::Acquire),
        ))
    }

    /// Producer: claims the next round-robin slot for writing.
    pub fn begin_write(&self) -> Result<WriteGuard, ShmError> {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.layout.depth;
        self.begin_write_slot(slot)
    }

    /// Producer: claims a specific slot (used by the buffer manager when it
    /// hands out pre-assigned slots for zero-copy leases).
    pub fn begin_write_slot(&self, slot: usize) -> Result<WriteGuard, ShmError> {
        if slot >= self.layout.depth {
            return Err(ShmError::BadSlot(slot));
        }
        match self.state_atom(slot).compare_exchange(
            SlotState::Free as u8,
            SlotState::Writing as u8,
            Ordering::Acquire,
            Ordering::Relaxed,
        ) {
            Ok(_) => Ok(WriteGuard {
                ring: self.clone(),
                slot,
                len: 0,
                published: false,
            }),
            Err(_) => Err(ShmError::NoFreeSlot),
        }
    }

    /// Consumer: claims a `Ready` slot (whose index arrived out-of-band in
    /// an H2C/C2H control notification) for reading.
    pub fn begin_read(&self, slot: usize, len: usize) -> Result<ReadGuard, ShmError> {
        if slot >= self.layout.depth {
            return Err(ShmError::BadSlot(slot));
        }
        if len > self.layout.slot_size {
            return Err(ShmError::PayloadTooLarge {
                len,
                slot_size: self.layout.slot_size,
            });
        }
        match self.state_atom(slot).compare_exchange(
            SlotState::Ready as u8,
            SlotState::Reading as u8,
            Ordering::Acquire,
            Ordering::Relaxed,
        ) {
            Ok(_) => Ok(ReadGuard {
                ring: self.clone(),
                slot,
                len,
            }),
            Err(found) => Err(ShmError::WrongState {
                slot,
                found: SlotState::from_u8(found),
                expected: SlotState::Ready,
            }),
        }
    }

    fn data_offset(&self, slot: usize) -> usize {
        self.layout.slot_offset(self.dir, slot)
    }

    /// Fault-recovery primitive: forces `slot` back to `Free` from any
    /// non-`Free` state, returning whether anything was reclaimed.
    ///
    /// This deliberately breaks the normal state machine — a slot stuck
    /// in `Writing`/`Ready`/`Reading` because its peer died or the
    /// channel was abandoned mid-flight would otherwise leak forever.
    /// Only call it once the channel is quarantined (no new leases) and
    /// the in-flight commands referencing the slot have been retired;
    /// racing a live guard is a protocol violation, exactly like reusing
    /// a published slot index.
    pub fn force_reclaim(&self, slot: usize) -> Result<bool, ShmError> {
        if slot >= self.layout.depth {
            return Err(ShmError::BadSlot(slot));
        }
        let atom = self.state_atom(slot);
        let prev = atom.swap(SlotState::Free as u8, Ordering::AcqRel);
        Ok(prev != SlotState::Free as u8)
    }

    /// Sweeps every slot of this direction back to `Free` (see
    /// [`SlotRing::force_reclaim`] for the safety contract), returning
    /// how many were actually reclaimed.
    pub fn reclaim_all(&self) -> usize {
        let mut freed = 0;
        for slot in 0..self.layout.depth {
            if self.force_reclaim(slot).unwrap_or(false) {
                freed += 1;
            }
        }
        freed
    }
}

/// Exclusive write access to one slot, from claim to publication.
pub struct WriteGuard {
    ring: SlotRing,
    slot: usize,
    len: usize,
    published: bool,
}

impl WriteGuard {
    /// The slot index (sent out-of-band to the peer on publication).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Bytes staged so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether any bytes are staged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies `payload` into the slot (the one-copy path of §4.4.3).
    pub fn fill(&mut self, payload: &[u8]) -> Result<(), ShmError> {
        if payload.len() > self.ring.slot_size() {
            return Err(ShmError::PayloadTooLarge {
                len: payload.len(),
                slot_size: self.ring.slot_size(),
            });
        }
        // SAFETY: slot is in `Writing` state — this guard is the only
        // accessor of the range per the state machine.
        unsafe {
            self.ring
                .region
                .write_at(self.ring.data_offset(self.slot), payload);
        }
        self.len = payload.len();
        Ok(())
    }

    /// Direct mutable access to the slot bytes (zero-copy path: the
    /// application builds its data in place, §4.4.3). Call
    /// [`WriteGuard::set_len`] before publishing.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: slot is in `Writing` state — exclusive per state machine;
        // the borrow is tied to &mut self so it cannot outlive publication.
        unsafe {
            self.ring
                .region
                .slice_mut(self.ring.data_offset(self.slot), self.ring.slot_size())
        }
    }

    /// Shared view of the slot bytes (valid while the guard is held; the
    /// guard is the only writer, so reading through `&self` is sound).
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: slot is in `Writing` state — this guard has exclusive
        // ownership of the range; no other thread writes it.
        unsafe {
            self.ring
                .region
                .slice(self.ring.data_offset(self.slot), self.ring.slot_size())
        }
    }

    /// Records how many bytes of the slot are meaningful.
    pub fn set_len(&mut self, len: usize) -> Result<(), ShmError> {
        if len > self.ring.slot_size() {
            return Err(ShmError::PayloadTooLarge {
                len,
                slot_size: self.ring.slot_size(),
            });
        }
        self.len = len;
        Ok(())
    }

    /// Publishes the slot: the payload becomes visible to the consumer.
    /// Returns `(slot, len)` for the out-of-band notification.
    pub fn publish(mut self) -> (usize, usize) {
        self.published = true;
        self.ring
            .state_atom(self.slot)
            .store(SlotState::Ready as u8, Ordering::Release);
        (self.slot, self.len)
    }
}

impl Drop for WriteGuard {
    fn drop(&mut self) {
        if !self.published {
            // Aborted write: return the slot to the pool.
            self.ring
                .state_atom(self.slot)
                .store(SlotState::Free as u8, Ordering::Release);
        }
    }
}

/// Exclusive read access to one published slot; frees it on drop.
pub struct ReadGuard {
    ring: SlotRing,
    slot: usize,
    len: usize,
}

impl ReadGuard {
    /// The slot index.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Published payload length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The published bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: slot is in `Reading` state — the producer will not touch
        // it until we store `Free` in drop.
        unsafe {
            self.ring
                .region
                .slice(self.ring.data_offset(self.slot), self.len)
        }
    }

    /// Copies the payload out into `dst` (must be exactly `len` bytes).
    pub fn copy_to(&self, dst: &mut [u8]) {
        assert_eq!(dst.len(), self.len, "destination length mismatch");
        dst.copy_from_slice(self.as_slice());
    }
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        self.ring
            .state_atom(self.slot)
            .store(SlotState::Free as u8, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(depth: usize, slot_size: usize, dir: Dir) -> SlotRing {
        let layout = DoubleBufferLayout::new(depth, slot_size);
        let region = Arc::new(ShmRegion::new(layout.total()));
        SlotRing::new(region, layout, dir).unwrap()
    }

    #[test]
    fn write_publish_read_roundtrip() {
        let r = ring(4, 4096, Dir::ToTarget);
        let mut g = r.begin_write().unwrap();
        g.fill(b"hello shared memory").unwrap();
        let (slot, len) = g.publish();
        assert_eq!(slot, 0);
        assert_eq!(len, 19);

        let rd = r.begin_read(slot, len).unwrap();
        assert_eq!(rd.as_slice(), b"hello shared memory");
        drop(rd);
        assert_eq!(r.state(slot).unwrap(), SlotState::Free);
    }

    #[test]
    fn round_robin_cycles_slots() {
        let r = ring(3, 64, Dir::ToTarget);
        let mut order = Vec::new();
        for _ in 0..3 {
            let g = r.begin_write().unwrap();
            order.push(g.slot());
            let (slot, _) = g.publish();
            drop(r.begin_read(slot, 0).unwrap());
        }
        assert_eq!(order, vec![0, 1, 2]);
        // Wraps around.
        assert_eq!(r.begin_write().unwrap().slot(), 0);
    }

    #[test]
    fn occupied_slot_rejects_writer() {
        let r = ring(1, 64, Dir::ToClient);
        let g = r.begin_write().unwrap();
        assert!(matches!(r.begin_write(), Err(ShmError::NoFreeSlot)));
        drop(g); // aborted, slot freed
        assert!(r.begin_write().is_ok());
    }

    #[test]
    fn reading_unpublished_slot_fails() {
        let r = ring(2, 64, Dir::ToTarget);
        assert!(matches!(
            r.begin_read(0, 0),
            Err(ShmError::WrongState {
                expected: SlotState::Ready,
                ..
            })
        ));
    }

    #[test]
    fn oversized_payload_rejected() {
        let r = ring(2, 16, Dir::ToTarget);
        let mut g = r.begin_write().unwrap();
        assert!(matches!(
            g.fill(&[0u8; 17]),
            Err(ShmError::PayloadTooLarge { .. })
        ));
        assert!(g.set_len(17).is_err());
        assert!(g.set_len(16).is_ok());
    }

    #[test]
    fn bad_slot_index_rejected() {
        let r = ring(2, 16, Dir::ToTarget);
        assert!(matches!(r.begin_write_slot(2), Err(ShmError::BadSlot(2))));
        assert!(matches!(r.begin_read(9, 0), Err(ShmError::BadSlot(9))));
        assert!(matches!(r.state(5), Err(ShmError::BadSlot(5))));
    }

    #[test]
    fn zero_copy_in_place_write() {
        let r = ring(2, 1024, Dir::ToClient);
        let mut g = r.begin_write().unwrap();
        g.as_mut_slice()[..5].copy_from_slice(b"01234");
        g.set_len(5).unwrap();
        let (slot, len) = g.publish();
        let rd = r.begin_read(slot, len).unwrap();
        assert_eq!(rd.as_slice(), b"01234");
    }

    #[test]
    fn directions_are_independent() {
        let layout = DoubleBufferLayout::new(2, 64);
        let region = Arc::new(ShmRegion::new(layout.total()));
        let to_t = SlotRing::new(region.clone(), layout, Dir::ToTarget).unwrap();
        let to_c = SlotRing::new(region, layout, Dir::ToClient).unwrap();
        let mut a = to_t.begin_write().unwrap();
        let mut b = to_c.begin_write().unwrap();
        a.fill(b"tgt").unwrap();
        b.fill(b"cli").unwrap();
        let (sa, la) = a.publish();
        let (sb, lb) = b.publish();
        assert_eq!(to_t.begin_read(sa, la).unwrap().as_slice(), b"tgt");
        assert_eq!(to_c.begin_read(sb, lb).unwrap().as_slice(), b"cli");
    }

    #[test]
    fn producer_consumer_stress_no_torn_payloads() {
        // Producer publishes seqnum-stamped payloads; consumer checks every
        // byte. Any torn read or missed release/acquire edge fails.
        let depth = 8;
        let slot_size = 8 * 1024;
        let layout = DoubleBufferLayout::new(depth, slot_size);
        let region = Arc::new(ShmRegion::new(layout.total()));
        let ring = SlotRing::new(region, layout, Dir::ToTarget).unwrap();
        let (tx, rx) = std::sync::mpsc::channel::<(usize, usize, u8)>();

        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let stamp = (i % 251) as u8 + 1;
                    loop {
                        match ring.begin_write() {
                            Ok(mut g) => {
                                let body = vec![stamp; slot_size];
                                g.fill(&body).unwrap();
                                let (slot, len) = g.publish();
                                tx.send((slot, len, stamp)).unwrap();
                                break;
                            }
                            Err(ShmError::NoFreeSlot) => std::hint::spin_loop(),
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            })
        };

        let consumer = std::thread::spawn(move || {
            let mut buf = vec![0u8; slot_size];
            while let Ok((slot, len, stamp)) = rx.recv() {
                let g = loop {
                    match ring.begin_read(slot, len) {
                        Ok(g) => break g,
                        Err(ShmError::WrongState { .. }) => std::hint::spin_loop(),
                        Err(e) => panic!("unexpected: {e}"),
                    }
                };
                g.copy_to(&mut buf[..len]);
                assert!(
                    buf[..len].iter().all(|&b| b == stamp),
                    "torn payload at slot {slot}"
                );
            }
        });

        producer.join().unwrap();
        consumer.join().unwrap();
    }
}
