//! Lock-free SPSC notification ring living inside the shared region.
//!
//! The paper sends out-of-band notifications (slot index, payload length)
//! over the existing TCP connection. For deployments where even that hop is
//! undesirable — and for exercising the region with a second, independent
//! lock-free structure — this module provides a single-producer,
//! single-consumer ring of fixed 64-byte records carved out of the region,
//! following the classic head/tail design (producer owns `tail`, consumer
//! owns `head`; release/acquire pairs publish records).
//!
//! Like [`crate::byte_ring::ByteRing`], each endpoint handle keeps a
//! cached shadow of the peer's index and only re-Acquires it when the
//! ring looks full (producer) or empty (consumer), so steady-state
//! pushes and pops touch no remote cache line. [`NotifyRing::push_n`]
//! and [`NotifyRing::drain`] amortize the Release/Acquire pair over a
//! whole burst of records.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::region::{ShmRegion, CACHE_LINE};
use crate::stats::RingStats;
use crate::ShmError;

/// Bytes per record, including the 2-byte length prefix.
pub const RECORD_SIZE: usize = 64;
/// Maximum payload bytes per record.
pub const MAX_PAYLOAD: usize = RECORD_SIZE - 2;

/// One end of a SPSC notification ring. Clone freely; exactly one thread
/// may push and one may pop.
pub struct NotifyRing {
    region: Arc<ShmRegion>,
    base: usize,
    capacity: usize,
    /// Producer-side shadow of the consumer's `head`.
    cached_head: AtomicU64,
    /// Consumer-side shadow of the producer's `tail`.
    cached_tail: AtomicU64,
    /// Per-handle producer telemetry; not inherited by clones (see
    /// [`RingStats`]).
    stats: Option<Arc<RingStats>>,
}

impl Clone for NotifyRing {
    fn clone(&self) -> Self {
        let ring = NotifyRing {
            region: self.region.clone(),
            base: self.base,
            capacity: self.capacity,
            cached_head: AtomicU64::new(0),
            cached_tail: AtomicU64::new(0),
            stats: None,
        };
        ring.reseed_caches();
        ring
    }
}

impl NotifyRing {
    /// Region bytes needed for a ring of `capacity` records.
    pub fn required_len(capacity: usize) -> usize {
        2 * CACHE_LINE + capacity * RECORD_SIZE
    }

    /// Creates a ring of `capacity` records (a power of two) at `base`
    /// within `region`. `base` must be cache-line aligned. Both endpoints
    /// construct a `NotifyRing` over the same `(region, base)`.
    pub fn new(region: Arc<ShmRegion>, base: usize, capacity: usize) -> Result<Self, ShmError> {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        assert_eq!(base % CACHE_LINE, 0, "base must be cache-line aligned");
        let needed = base + Self::required_len(capacity);
        if needed > region.len() {
            return Err(ShmError::RegionTooSmall {
                needed,
                have: region.len(),
            });
        }
        let ring = NotifyRing {
            region,
            base,
            capacity,
            cached_head: AtomicU64::new(0),
            cached_tail: AtomicU64::new(0),
            stats: None,
        };
        ring.reseed_caches();
        Ok(ring)
    }

    /// Attaches producer-side telemetry to *this* handle (records
    /// published, `RingFull` events, occupancy high-water in records).
    /// Clones never inherit the bundle (see [`RingStats`]).
    pub fn set_stats(&mut self, stats: Arc<RingStats>) {
        self.stats = Some(stats);
    }

    /// Seeds both shadow indices from the live shared indices.
    fn reseed_caches(&self) {
        self.cached_head
            .store(self.head().load(Ordering::Acquire), Ordering::Relaxed);
        self.cached_tail
            .store(self.tail().load(Ordering::Acquire), Ordering::Relaxed);
    }

    /// Record capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn head(&self) -> &AtomicU64 {
        self.region.atomic_u64(self.base)
    }

    fn tail(&self) -> &AtomicU64 {
        self.region.atomic_u64(self.base + CACHE_LINE)
    }

    fn record_offset(&self, idx: u64) -> usize {
        self.base + 2 * CACHE_LINE + (idx as usize % self.capacity) * RECORD_SIZE
    }

    /// Producer: verifies a free record exists at `tail`, refreshing the
    /// shadow head from the shared index only when the ring looks full.
    fn ensure_space(&self, tail: u64) -> Result<(), ShmError> {
        let head = self.cached_head.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) < self.capacity as u64 {
            return Ok(());
        }
        let head = self.head().load(Ordering::Acquire);
        self.cached_head.store(head, Ordering::Relaxed);
        if tail.wrapping_sub(head) < self.capacity as u64 {
            Ok(())
        } else {
            Err(ShmError::RingFull)
        }
    }

    /// Writes one record at `tail` without publishing.
    fn write_record(&self, tail: u64, payload: &[u8]) {
        let off = self.record_offset(tail);
        let len_prefix = (payload.len() as u16).to_le_bytes();
        // SAFETY: records in [head, head+capacity) are producer-owned until
        // published via the tail store.
        unsafe {
            self.region.write_at(off, &len_prefix);
            self.region.write_at(off + 2, payload);
        }
    }

    /// Producer: appends a record. Fails with [`ShmError::RingFull`] when
    /// the consumer is `capacity` records behind.
    pub fn push(&self, payload: &[u8]) -> Result<(), ShmError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(ShmError::PayloadTooLarge {
                len: payload.len(),
                slot_size: MAX_PAYLOAD,
            });
        }
        let tail = self.tail().load(Ordering::Relaxed); // producer-owned
        if let Err(e) = self.ensure_space(tail) {
            if let Some(stats) = &self.stats {
                stats.on_full();
            }
            return Err(e);
        }
        self.write_record(tail, payload);
        let next = tail.wrapping_add(1);
        self.tail().store(next, Ordering::Release);
        if let Some(stats) = &self.stats {
            stats.on_publish(
                1,
                payload.len() as u64,
                next.wrapping_sub(self.cached_head.load(Ordering::Relaxed)),
            );
        }
        Ok(())
    }

    /// Producer: appends as many records as fit with a single Release
    /// publish for the whole burst. Returns how many records were
    /// pushed; stops early (without error) when the ring fills. An
    /// oversized payload is an error only if it is the first record not
    /// yet pushed.
    pub fn push_n<I, F>(&self, payloads: I) -> Result<usize, ShmError>
    where
        I: IntoIterator<Item = F>,
        F: AsRef<[u8]>,
    {
        let start = self.tail().load(Ordering::Relaxed); // producer-owned
        let mut tail = start;
        let mut pushed = 0usize;
        let mut bytes = 0u64;
        let mut hit_full = false;
        for payload in payloads {
            let payload = payload.as_ref();
            if payload.len() > MAX_PAYLOAD {
                if pushed == 0 {
                    return Err(ShmError::PayloadTooLarge {
                        len: payload.len(),
                        slot_size: MAX_PAYLOAD,
                    });
                }
                break;
            }
            if self.ensure_space(tail).is_err() {
                hit_full = true;
                break;
            }
            self.write_record(tail, payload);
            tail = tail.wrapping_add(1);
            pushed += 1;
            bytes += payload.len() as u64;
        }
        if tail != start {
            self.tail().store(tail, Ordering::Release);
        }
        if let Some(stats) = &self.stats {
            if pushed > 0 {
                stats.on_publish(
                    pushed as u64,
                    bytes,
                    tail.wrapping_sub(self.cached_head.load(Ordering::Relaxed)),
                );
            }
            if hit_full {
                stats.on_full();
            }
        }
        Ok(pushed)
    }

    /// Consumer: pops the oldest record into `buf`, returning the payload
    /// length, or `None` if the ring is empty.
    pub fn pop(&self, buf: &mut [u8; MAX_PAYLOAD]) -> Option<usize> {
        let head = self.head().load(Ordering::Relaxed); // consumer-owned
        let mut tail = self.cached_tail.load(Ordering::Relaxed);
        if head == tail {
            // Looks empty: pay the cross-core Acquire, which pairs with
            // the producer's Release store of `tail`.
            tail = self.tail().load(Ordering::Acquire);
            self.cached_tail.store(tail, Ordering::Relaxed);
            if head == tail {
                return None;
            }
        }
        let off = self.record_offset(head);
        let mut len_prefix = [0u8; 2];
        // SAFETY: the record was published by a Release store of `tail`
        // we Acquired; producer won't reuse it until `head` advances.
        unsafe {
            self.region.read_into(off, &mut len_prefix);
            let len = u16::from_le_bytes(len_prefix) as usize;
            debug_assert!(len <= MAX_PAYLOAD);
            self.region.read_into(off + 2, &mut buf[..len]);
            self.head().store(head.wrapping_add(1), Ordering::Release);
            Some(len)
        }
    }

    /// Consumer: processes every record published at entry with a single
    /// Acquire of `tail` and a single Release of `head`, handing each
    /// payload to `f` as a borrowed slice of the ring — no copies. `f`
    /// must not call back into this ring. Returns the record count.
    pub fn drain(&self, mut f: impl FnMut(&[u8])) -> usize {
        let mut head = self.head().load(Ordering::Relaxed); // consumer-owned
        let tail = self.tail().load(Ordering::Acquire);
        self.cached_tail.store(tail, Ordering::Relaxed);
        let mut n = 0usize;
        while head != tail {
            let off = self.record_offset(head);
            let mut len_prefix = [0u8; 2];
            // SAFETY: published by the Release store of `tail` we
            // Acquired; producer can't reuse records until `head` is
            // released below.
            let payload = unsafe {
                self.region.read_into(off, &mut len_prefix);
                let len = u16::from_le_bytes(len_prefix) as usize;
                debug_assert!(len <= MAX_PAYLOAD);
                self.region.slice(off + 2, len)
            };
            f(payload);
            head = head.wrapping_add(1);
            n += 1;
        }
        if n > 0 {
            self.head().store(head, Ordering::Release);
        }
        n
    }

    /// Records currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        let tail = self.tail().load(Ordering::Acquire);
        let head = self.head().load(Ordering::Acquire);
        tail.wrapping_sub(head) as usize
    }

    /// Whether the ring is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(cap: usize) -> NotifyRing {
        let region = Arc::new(ShmRegion::new(NotifyRing::required_len(cap)));
        NotifyRing::new(region, 0, cap).unwrap()
    }

    #[test]
    fn push_pop_fifo() {
        let r = ring(8);
        r.push(b"one").unwrap();
        r.push(b"two").unwrap();
        let mut buf = [0u8; MAX_PAYLOAD];
        assert_eq!(r.pop(&mut buf), Some(3));
        assert_eq!(&buf[..3], b"one");
        assert_eq!(r.pop(&mut buf), Some(3));
        assert_eq!(&buf[..3], b"two");
        assert_eq!(r.pop(&mut buf), None);
    }

    #[test]
    fn fills_up_at_capacity() {
        let r = ring(4);
        for i in 0..4u8 {
            r.push(&[i]).unwrap();
        }
        assert_eq!(r.push(&[9]), Err(ShmError::RingFull));
        let mut buf = [0u8; MAX_PAYLOAD];
        r.pop(&mut buf);
        assert!(r.push(&[9]).is_ok());
    }

    #[test]
    fn rejects_oversized_payload() {
        let r = ring(4);
        assert!(matches!(
            r.push(&[0u8; MAX_PAYLOAD + 1]),
            Err(ShmError::PayloadTooLarge { .. })
        ));
        assert!(r.push(&[0u8; MAX_PAYLOAD]).is_ok());
    }

    #[test]
    fn wraps_many_times() {
        let r = ring(4);
        let mut buf = [0u8; MAX_PAYLOAD];
        for round in 0..100u32 {
            let msg = round.to_le_bytes();
            r.push(&msg).unwrap();
            let n = r.pop(&mut buf).unwrap();
            assert_eq!(&buf[..n], &msg);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn push_n_then_drain_round_trips_in_order() {
        let r = ring(16);
        let records: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 1 + i as usize]).collect();
        assert_eq!(r.push_n(records.iter()).unwrap(), 10);
        let mut seen = Vec::new();
        assert_eq!(r.drain(|p| seen.push(p.to_vec())), 10);
        assert_eq!(seen, records);
        assert_eq!(r.drain(|_| panic!("empty")), 0);
    }

    #[test]
    fn push_n_stops_at_capacity() {
        let r = ring(4);
        let n = r.push_n((0..10u8).map(|i| [i])).unwrap();
        assert_eq!(n, 4);
        let mut buf = [0u8; MAX_PAYLOAD];
        for i in 0..4u8 {
            assert_eq!(r.pop(&mut buf), Some(1));
            assert_eq!(buf[0], i);
        }
    }

    #[test]
    fn too_small_region_rejected() {
        let region = Arc::new(ShmRegion::new(64));
        assert!(matches!(
            NotifyRing::new(region, 0, 8),
            Err(ShmError::RegionTooSmall { .. })
        ));
    }

    #[test]
    fn stats_track_records_and_fulls() {
        let mut r = ring(4);
        let stats = RingStats::new();
        r.set_stats(stats.clone());
        r.push(b"one").unwrap();
        assert_eq!(r.push_n((0..10u8).map(|i| [i])).unwrap(), 3);
        assert_eq!(stats.frames.get(), 4);
        assert_eq!(stats.bytes.get(), 6);
        // push_n was cut short by a full ring: one full event.
        assert_eq!(stats.full_events.get(), 1);
        assert_eq!(stats.occupancy.hwm(), 4);
        assert_eq!(r.push(b"x"), Err(ShmError::RingFull));
        assert_eq!(stats.full_events.get(), 2);
    }

    #[test]
    fn spsc_threads_preserve_order_and_content() {
        let r = ring(64);
        let producer = {
            let r = r.clone();
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    loop {
                        match r.push(&i.to_le_bytes()) {
                            Ok(()) => break,
                            Err(ShmError::RingFull) => std::thread::yield_now(),
                            Err(e) => panic!("{e}"),
                        }
                    }
                }
            })
        };
        let consumer = std::thread::spawn(move || {
            let mut buf = [0u8; MAX_PAYLOAD];
            let mut expected = 0u64;
            while expected < 50_000 {
                if let Some(n) = r.pop(&mut buf) {
                    assert_eq!(n, 8);
                    let got = u64::from_le_bytes(buf[..8].try_into().unwrap());
                    assert_eq!(got, expected, "out of order or torn");
                    expected += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    }
}
