//! Variable-size SPSC frame ring in shared memory.
//!
//! [`crate::ring::NotifyRing`] carries fixed 64-byte records — enough for
//! slot notifications. This ring carries *whole control PDUs* of
//! arbitrary size, enabling the §5.5 future-work configuration where even
//! the control path leaves kernel TCP: two byte rings (one per
//! direction) make a full duplex in-region transport.
//!
//! Layout: `[head u64 | pad][tail u64 | pad][data: capacity bytes]`.
//! Frames are `[len: u32][payload]`, written contiguously; a frame that
//! would straddle the wrap point writes a `len == u32::MAX` skip marker
//! and starts at offset 0. Producer owns `tail`, consumer owns `head`;
//! publication is the release-store of `tail`, consumption the
//! release-store of `head` — the same discipline as the slot ring.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::region::{ShmRegion, CACHE_LINE};
use crate::ShmError;

const SKIP: u32 = u32::MAX;
const HDR: u64 = 4;

/// Frames advance in 4-byte units so the length word (and the wrap
/// marker) never straddles the wrap point.
fn align4(n: u64) -> u64 {
    (n + 3) & !3
}

/// One end of a variable-size SPSC frame ring. Clone freely; exactly one
/// thread may push and one may pop.
#[derive(Clone)]
pub struct ByteRing {
    region: Arc<ShmRegion>,
    base: usize,
    capacity: u64,
}

impl ByteRing {
    /// Region bytes needed for a ring with `capacity` data bytes.
    pub fn required_len(capacity: u64) -> usize {
        2 * CACHE_LINE + capacity as usize
    }

    /// Creates a ring with `capacity` data bytes (a power of two) at
    /// `base` within `region` (cache-line aligned). Both endpoints
    /// construct a `ByteRing` over the same `(region, base)`.
    pub fn new(region: Arc<ShmRegion>, base: usize, capacity: u64) -> Result<Self, ShmError> {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        assert_eq!(base % CACHE_LINE, 0, "base must be cache-line aligned");
        let needed = base + Self::required_len(capacity);
        if needed > region.len() {
            return Err(ShmError::RegionTooSmall {
                needed,
                have: region.len(),
            });
        }
        Ok(ByteRing {
            region,
            base,
            capacity,
        })
    }

    /// Largest frame this ring can ever carry.
    pub fn max_frame(&self) -> usize {
        // A frame must fit contiguously: capacity minus header, and the
        // ring must never fill completely.
        (self.capacity - HDR - 1) as usize / 2
    }

    fn head(&self) -> &std::sync::atomic::AtomicU64 {
        self.region.atomic_u64(self.base)
    }

    fn tail(&self) -> &std::sync::atomic::AtomicU64 {
        self.region.atomic_u64(self.base + CACHE_LINE)
    }

    fn data_off(&self, pos: u64) -> usize {
        self.base + 2 * CACHE_LINE + (pos & (self.capacity - 1)) as usize
    }

    /// Contiguous bytes available at `pos` before the wrap point.
    fn contiguous(&self, pos: u64) -> u64 {
        self.capacity - (pos & (self.capacity - 1))
    }

    /// Producer: appends one frame. Fails with [`ShmError::RingFull`]
    /// when there is not enough free space (including wrap padding).
    pub fn push(&self, frame: &[u8]) -> Result<(), ShmError> {
        if frame.len() > self.max_frame() {
            return Err(ShmError::PayloadTooLarge {
                len: frame.len(),
                slot_size: self.max_frame(),
            });
        }
        let tail = self.tail().load(Ordering::Relaxed); // producer-owned
        let head = self.head().load(Ordering::Acquire);
        let used = tail.wrapping_sub(head);
        let need = align4(HDR + frame.len() as u64);
        let contig = self.contiguous(tail);
        // If the frame would straddle the wrap point, burn the remainder
        // with a skip marker (needs 4 bytes for the marker itself).
        let (write_at, total) = if contig < need {
            (tail + contig, need + contig)
        } else {
            (tail, need)
        };
        if used + total > self.capacity - 1 {
            return Err(ShmError::RingFull);
        }
        if write_at != tail {
            // SAFETY: producer owns [tail, head+capacity); in-bounds.
            unsafe {
                self.region
                    .write_at(self.data_off(tail), &SKIP.to_le_bytes());
            }
        }
        // SAFETY: producer-owned range, contiguous by construction.
        unsafe {
            self.region
                .write_at(self.data_off(write_at), &(frame.len() as u32).to_le_bytes());
            self.region
                .write_at(self.data_off(write_at) + HDR as usize, frame);
        }
        self.tail()
            .store(tail.wrapping_add(total), Ordering::Release);
        Ok(())
    }

    /// Consumer: pops the oldest frame, if any.
    pub fn pop(&self) -> Option<Vec<u8>> {
        let mut head = self.head().load(Ordering::Relaxed); // consumer-owned
        let tail = self.tail().load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let mut len_bytes = [0u8; 4];
        // SAFETY: published by the Release store of `tail` we Acquired.
        unsafe { self.region.read_into(self.data_off(head), &mut len_bytes) };
        let mut len = u32::from_le_bytes(len_bytes);
        if len == SKIP {
            // Wrap marker: skip to the start of the ring.
            head = head.wrapping_add(self.contiguous(head));
            debug_assert_ne!(head, tail, "skip marker with no frame behind it");
            unsafe { self.region.read_into(self.data_off(head), &mut len_bytes) };
            len = u32::from_le_bytes(len_bytes);
        }
        debug_assert!(len as usize <= self.max_frame(), "corrupt frame length");
        let mut out = vec![0u8; len as usize];
        // SAFETY: same publication argument.
        unsafe {
            self.region
                .read_into(self.data_off(head) + HDR as usize, &mut out);
        }
        self.head().store(
            head.wrapping_add(align4(HDR + u64::from(len))),
            Ordering::Release,
        );
        Some(out)
    }

    /// Whether the ring currently holds no frames (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.head().load(Ordering::Acquire) == self.tail().load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(cap: u64) -> ByteRing {
        let region = Arc::new(ShmRegion::new(ByteRing::required_len(cap)));
        ByteRing::new(region, 0, cap).unwrap()
    }

    #[test]
    fn push_pop_fifo_variable_sizes() {
        let r = ring(1024);
        r.push(b"a").unwrap();
        r.push(b"longer frame here").unwrap();
        r.push(&[7u8; 200]).unwrap();
        assert_eq!(r.pop().unwrap(), b"a");
        assert_eq!(r.pop().unwrap(), b"longer frame here");
        assert_eq!(r.pop().unwrap(), vec![7u8; 200]);
        assert!(r.pop().is_none());
    }

    #[test]
    fn wraps_cleanly_across_the_boundary() {
        let r = ring(256);
        // Fill and drain with frames that do not divide the capacity, so
        // every wrap alignment gets exercised.
        for i in 0..500u32 {
            let len = 1 + (i % 90) as usize;
            let frame = vec![(i % 251) as u8; len];
            r.push(&frame).unwrap();
            assert_eq!(r.pop().unwrap(), frame, "iteration {i}");
        }
        assert!(r.is_empty());
    }

    #[test]
    fn fills_up_and_recovers() {
        let r = ring(256);
        let mut pushed = 0;
        while r.push(&[9u8; 40]).is_ok() {
            pushed += 1;
        }
        assert!(pushed >= 4, "capacity too small: {pushed}");
        assert!(matches!(r.push(&[9u8; 40]), Err(ShmError::RingFull)));
        r.pop().unwrap();
        r.pop().unwrap();
        assert!(r.push(&[9u8; 40]).is_ok());
    }

    #[test]
    fn oversized_frame_rejected() {
        let r = ring(256);
        assert!(matches!(
            r.push(&vec![0u8; r.max_frame() + 1]),
            Err(ShmError::PayloadTooLarge { .. })
        ));
        assert!(r.push(&vec![0u8; r.max_frame()]).is_ok());
    }

    #[test]
    fn spsc_threads_preserve_order() {
        let r = ring(4096);
        let producer = {
            let r = r.clone();
            std::thread::spawn(move || {
                for i in 0..30_000u32 {
                    let len = 4 + (i % 64) as usize;
                    let mut frame = vec![0u8; len];
                    frame[..4].copy_from_slice(&i.to_le_bytes());
                    loop {
                        match r.push(&frame) {
                            Ok(()) => break,
                            Err(ShmError::RingFull) => std::hint::spin_loop(),
                            Err(e) => panic!("{e}"),
                        }
                    }
                }
            })
        };
        let mut expected = 0u32;
        while expected < 30_000 {
            if let Some(frame) = r.pop() {
                let got = u32::from_le_bytes(frame[..4].try_into().unwrap());
                assert_eq!(got, expected, "out of order");
                assert_eq!(frame.len(), 4 + (expected % 64) as usize);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }
}
