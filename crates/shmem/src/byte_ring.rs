//! Variable-size SPSC frame ring in shared memory.
//!
//! [`crate::ring::NotifyRing`] carries fixed 64-byte records — enough for
//! slot notifications. This ring carries *whole control PDUs* of
//! arbitrary size, enabling the §5.5 future-work configuration where even
//! the control path leaves kernel TCP: two byte rings (one per
//! direction) make a full duplex in-region transport.
//!
//! Layout: `[head u64 | pad][tail u64 | pad][data: capacity bytes]`.
//! Frames are `[len: u32][payload]`, written contiguously; a frame that
//! would straddle the wrap point writes a `len == u32::MAX` skip marker
//! and starts at offset 0. Producer owns `tail`, consumer owns `head`;
//! publication is the release-store of `tail`, consumption the
//! release-store of `head` — the same discipline as the slot ring.
//!
//! # Hot-path discipline
//!
//! Each endpoint handle keeps a *cached copy of the peer's index*
//! (the rtrb/crossbeam shadow-index idiom): the producer re-Acquires
//! `head` only when the ring looks full against its cache, the consumer
//! re-Acquires `tail` only when the ring looks empty. In the steady
//! state a push or pop therefore touches only the cache line it owns,
//! and cross-core traffic is amortized over many frames. The cached
//! values are always historical values of the peer index, so they are
//! conservative: a stale cache can only cause a spurious refresh, never
//! an unsafe read or write.
//!
//! Batched operation is available through [`ByteRing::push_n`] (one
//! Release publish for a whole burst) and [`ByteRing::drain`] /
//! [`ByteRing::pop_into`] (one Release consume for a whole burst, zero
//! allocations).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::region::{ShmRegion, CACHE_LINE};
use crate::stats::RingStats;
use crate::ShmError;

const SKIP: u32 = u32::MAX;
const HDR: u64 = 4;

/// Frames advance in 4-byte units so the length word (and the wrap
/// marker) never straddles the wrap point.
fn align4(n: u64) -> u64 {
    (n + 3) & !3
}

/// One end of a variable-size SPSC frame ring. Clone freely; exactly one
/// thread may push and one may pop.
pub struct ByteRing {
    region: Arc<ShmRegion>,
    base: usize,
    capacity: u64,
    /// Producer-side shadow of the consumer's `head` (always a
    /// historical value, i.e. `cached_head <= head`).
    cached_head: AtomicU64,
    /// Consumer-side shadow of the producer's `tail` (always a
    /// historical value, i.e. `head <= cached_tail <= tail`).
    cached_tail: AtomicU64,
    /// Per-handle producer telemetry; not inherited by clones so the
    /// `let peer = ring.clone()` pairing pattern cannot double-count.
    stats: Option<Arc<RingStats>>,
}

impl Clone for ByteRing {
    fn clone(&self) -> Self {
        // Fresh shadows, seeded from the live indices: the clone may be
        // handed to a different thread, and a shadow must never lag
        // behind the *consumer's own* progress (`cached_tail >= head`).
        let ring = ByteRing {
            region: self.region.clone(),
            base: self.base,
            capacity: self.capacity,
            cached_head: AtomicU64::new(0),
            cached_tail: AtomicU64::new(0),
            stats: None,
        };
        ring.reseed_caches();
        ring
    }
}

impl ByteRing {
    /// Region bytes needed for a ring with `capacity` data bytes.
    pub fn required_len(capacity: u64) -> usize {
        2 * CACHE_LINE + capacity as usize
    }

    /// Creates a ring with `capacity` data bytes (a power of two) at
    /// `base` within `region` (cache-line aligned). Both endpoints
    /// construct a `ByteRing` over the same `(region, base)`.
    pub fn new(region: Arc<ShmRegion>, base: usize, capacity: u64) -> Result<Self, ShmError> {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        assert_eq!(base % CACHE_LINE, 0, "base must be cache-line aligned");
        let needed = base + Self::required_len(capacity);
        if needed > region.len() {
            return Err(ShmError::RegionTooSmall {
                needed,
                have: region.len(),
            });
        }
        let ring = ByteRing {
            region,
            base,
            capacity,
            cached_head: AtomicU64::new(0),
            cached_tail: AtomicU64::new(0),
            stats: None,
        };
        ring.reseed_caches();
        Ok(ring)
    }

    /// Attaches producer-side telemetry to *this* handle. Pushes through
    /// this handle then record frames/bytes published, `RingFull`
    /// events, and the occupancy high-water mark. Clones never inherit
    /// the bundle (see [`RingStats`]).
    pub fn set_stats(&mut self, stats: Arc<RingStats>) {
        self.stats = Some(stats);
    }

    /// Seeds both shadow indices from the live shared indices. Acquire
    /// on `tail` also makes every already-published frame visible.
    fn reseed_caches(&self) {
        self.cached_head
            .store(self.head().load(Ordering::Acquire), Ordering::Relaxed);
        self.cached_tail
            .store(self.tail().load(Ordering::Acquire), Ordering::Relaxed);
    }

    /// Largest frame this ring can ever carry.
    pub fn max_frame(&self) -> usize {
        // A frame must fit contiguously: capacity minus header, and the
        // ring must never fill completely.
        (self.capacity - HDR - 1) as usize / 2
    }

    fn head(&self) -> &AtomicU64 {
        self.region.atomic_u64(self.base)
    }

    fn tail(&self) -> &AtomicU64 {
        self.region.atomic_u64(self.base + CACHE_LINE)
    }

    fn data_off(&self, pos: u64) -> usize {
        self.base + 2 * CACHE_LINE + (pos & (self.capacity - 1)) as usize
    }

    /// Contiguous bytes available at `pos` before the wrap point.
    fn contiguous(&self, pos: u64) -> u64 {
        self.capacity - (pos & (self.capacity - 1))
    }

    /// Producer: space check against the shadow head, refreshing it from
    /// the shared index only when the ring looks full. Returns the new
    /// (possibly refreshed) head on success.
    fn ensure_space(&self, tail: u64, total: u64) -> Result<(), ShmError> {
        let head = self.cached_head.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) + total < self.capacity {
            return Ok(());
        }
        // Looks full: pay the cross-core Acquire and retry once. The
        // Acquire pairs with the consumer's Release store of `head`, so
        // the freed bytes are safe to overwrite.
        let head = self.head().load(Ordering::Acquire);
        self.cached_head.store(head, Ordering::Relaxed);
        if tail.wrapping_sub(head) + total < self.capacity {
            Ok(())
        } else {
            Err(ShmError::RingFull)
        }
    }

    /// Writes one frame at `tail` without publishing. Returns the next
    /// tail position. Caller must have verified space.
    fn write_frame(&self, tail: u64, frame: &[u8], write_at: u64, total: u64) -> u64 {
        if write_at != tail {
            // SAFETY: producer owns [tail, head+capacity); in-bounds.
            unsafe {
                self.region
                    .write_at(self.data_off(tail), &SKIP.to_le_bytes());
            }
        }
        // SAFETY: producer-owned range, contiguous by construction.
        unsafe {
            self.region
                .write_at(self.data_off(write_at), &(frame.len() as u32).to_le_bytes());
            self.region
                .write_at(self.data_off(write_at) + HDR as usize, frame);
        }
        tail.wrapping_add(total)
    }

    /// Frame geometry at `tail`: `(write_at, total)` including wrap
    /// padding.
    fn placement(&self, tail: u64, frame_len: usize) -> (u64, u64) {
        let need = align4(HDR + frame_len as u64);
        let contig = self.contiguous(tail);
        // If the frame would straddle the wrap point, burn the remainder
        // with a skip marker (needs 4 bytes for the marker itself).
        if contig < need {
            (tail + contig, need + contig)
        } else {
            (tail, need)
        }
    }

    /// Producer: appends one frame. Fails with [`ShmError::RingFull`]
    /// when there is not enough free space (including wrap padding).
    pub fn push(&self, frame: &[u8]) -> Result<(), ShmError> {
        if frame.len() > self.max_frame() {
            return Err(ShmError::PayloadTooLarge {
                len: frame.len(),
                slot_size: self.max_frame(),
            });
        }
        let tail = self.tail().load(Ordering::Relaxed); // producer-owned
        let (write_at, total) = self.placement(tail, frame.len());
        if let Err(e) = self.ensure_space(tail, total) {
            if let Some(stats) = &self.stats {
                stats.on_full();
            }
            return Err(e);
        }
        let next = self.write_frame(tail, frame, write_at, total);
        self.tail().store(next, Ordering::Release);
        if let Some(stats) = &self.stats {
            stats.on_publish(
                1,
                frame.len() as u64,
                next.wrapping_sub(self.cached_head.load(Ordering::Relaxed)),
            );
        }
        Ok(())
    }

    /// Producer: appends as many whole frames as fit, in order, with a
    /// *single* Release publish for the whole burst. Returns how many
    /// frames were pushed; stops early (without error) at the first
    /// frame that does not currently fit. An oversized frame is an
    /// error only if it is the first frame not yet pushed — otherwise
    /// the caller sees the short count and hits the error on retry.
    pub fn push_n<I, F>(&self, frames: I) -> Result<usize, ShmError>
    where
        I: IntoIterator<Item = F>,
        F: AsRef<[u8]>,
    {
        let start = self.tail().load(Ordering::Relaxed); // producer-owned
        let mut tail = start;
        let mut pushed = 0usize;
        let mut bytes = 0u64;
        let mut hit_full = false;
        for frame in frames {
            let frame = frame.as_ref();
            if frame.len() > self.max_frame() {
                if pushed == 0 {
                    return Err(ShmError::PayloadTooLarge {
                        len: frame.len(),
                        slot_size: self.max_frame(),
                    });
                }
                break;
            }
            let (write_at, total) = self.placement(tail, frame.len());
            if self.ensure_space(tail, total).is_err() {
                hit_full = true;
                break;
            }
            tail = self.write_frame(tail, frame, write_at, total);
            pushed += 1;
            bytes += frame.len() as u64;
        }
        if tail != start {
            self.tail().store(tail, Ordering::Release);
        }
        if let Some(stats) = &self.stats {
            if pushed > 0 {
                stats.on_publish(
                    pushed as u64,
                    bytes,
                    tail.wrapping_sub(self.cached_head.load(Ordering::Relaxed)),
                );
            }
            if hit_full {
                stats.on_full();
            }
        }
        Ok(pushed)
    }

    /// Consumer: locates the next ready frame, refreshing the shadow
    /// tail only when the ring looks empty. Returns
    /// `(frame_start, len, next_head)`.
    fn next_frame(&self, head: u64) -> Option<(u64, usize, u64)> {
        let mut tail = self.cached_tail.load(Ordering::Relaxed);
        if tail == head {
            // Looks empty: pay the cross-core Acquire. Pairs with the
            // producer's Release store of `tail`, publishing the frames.
            tail = self.tail().load(Ordering::Acquire);
            self.cached_tail.store(tail, Ordering::Relaxed);
            if tail == head {
                return None;
            }
        }
        let mut pos = head;
        let mut len_bytes = [0u8; 4];
        // SAFETY: published by the Release store of `tail` we Acquired.
        unsafe { self.region.read_into(self.data_off(pos), &mut len_bytes) };
        let mut len = u32::from_le_bytes(len_bytes);
        if len == SKIP {
            // Wrap marker: skip to the start of the ring.
            pos = pos.wrapping_add(self.contiguous(pos));
            debug_assert_ne!(pos, tail, "skip marker with no frame behind it");
            unsafe { self.region.read_into(self.data_off(pos), &mut len_bytes) };
            len = u32::from_le_bytes(len_bytes);
        }
        debug_assert!(len as usize <= self.max_frame(), "corrupt frame length");
        let next = pos.wrapping_add(align4(HDR + u64::from(len)));
        Some((pos, len as usize, next))
    }

    /// Consumer: pops the oldest frame, if any.
    ///
    /// Allocates a fresh `Vec` per frame; hot paths should prefer
    /// [`ByteRing::pop_into`] or [`ByteRing::drain`].
    pub fn pop(&self) -> Option<Vec<u8>> {
        let head = self.head().load(Ordering::Relaxed); // consumer-owned
        let (pos, len, next) = self.next_frame(head)?;
        let mut out = vec![0u8; len];
        // SAFETY: same publication argument as `next_frame`.
        unsafe {
            self.region
                .read_into(self.data_off(pos) + HDR as usize, &mut out);
        }
        self.head().store(next, Ordering::Release);
        Some(out)
    }

    /// Consumer: pops the oldest frame into `out` (cleared first),
    /// reusing its capacity — zero allocations in the steady state.
    /// Returns the frame length.
    pub fn pop_into(&self, out: &mut Vec<u8>) -> Option<usize> {
        let head = self.head().load(Ordering::Relaxed); // consumer-owned
        let (pos, len, next) = self.next_frame(head)?;
        out.clear();
        out.resize(len, 0);
        // SAFETY: same publication argument as `next_frame`.
        unsafe {
            self.region
                .read_into(self.data_off(pos) + HDR as usize, out);
        }
        self.head().store(next, Ordering::Release);
        Some(len)
    }

    /// Consumer: processes every frame published at entry with a
    /// *single* Acquire of `tail` and a *single* Release of `head`,
    /// handing each frame to `f` as a borrowed slice of the ring — no
    /// copies, no allocations.
    ///
    /// The borrow is sound because the producer cannot reuse the bytes
    /// until `head` is published, which happens only after every
    /// callback returned. `f` must not call back into this ring (it
    /// only receives `&[u8]`, so that would require smuggling a second
    /// handle — don't).
    ///
    /// Returns the number of frames processed.
    pub fn drain(&self, mut f: impl FnMut(&[u8])) -> usize {
        let mut head = self.head().load(Ordering::Relaxed); // consumer-owned
                                                            // One Acquire for the whole burst.
        let tail = self.tail().load(Ordering::Acquire);
        self.cached_tail.store(tail, Ordering::Relaxed);
        if head == tail {
            return 0;
        }
        let mut n = 0usize;
        while head != tail {
            let mut pos = head;
            let mut len_bytes = [0u8; 4];
            // SAFETY: published by the Release store of `tail` we
            // Acquired above.
            unsafe { self.region.read_into(self.data_off(pos), &mut len_bytes) };
            let mut len = u32::from_le_bytes(len_bytes);
            if len == SKIP {
                pos = pos.wrapping_add(self.contiguous(pos));
                debug_assert_ne!(pos, tail, "skip marker with no frame behind it");
                unsafe { self.region.read_into(self.data_off(pos), &mut len_bytes) };
                len = u32::from_le_bytes(len_bytes);
            }
            debug_assert!(len as usize <= self.max_frame(), "corrupt frame length");
            // SAFETY: frame bytes are contiguous by construction and
            // producer-untouchable until `head` is released below.
            let frame = unsafe {
                self.region
                    .slice(self.data_off(pos) + HDR as usize, len as usize)
            };
            f(frame);
            head = pos.wrapping_add(align4(HDR + u64::from(len)));
            n += 1;
        }
        // One Release for the whole burst.
        self.head().store(head, Ordering::Release);
        n
    }

    /// Whether the ring currently holds no frames (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.head().load(Ordering::Acquire) == self.tail().load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(cap: u64) -> ByteRing {
        let region = Arc::new(ShmRegion::new(ByteRing::required_len(cap)));
        ByteRing::new(region, 0, cap).unwrap()
    }

    #[test]
    fn push_pop_fifo_variable_sizes() {
        let r = ring(1024);
        r.push(b"a").unwrap();
        r.push(b"longer frame here").unwrap();
        r.push(&[7u8; 200]).unwrap();
        assert_eq!(r.pop().unwrap(), b"a");
        assert_eq!(r.pop().unwrap(), b"longer frame here");
        assert_eq!(r.pop().unwrap(), vec![7u8; 200]);
        assert!(r.pop().is_none());
    }

    #[test]
    fn wraps_cleanly_across_the_boundary() {
        let r = ring(256);
        // Fill and drain with frames that do not divide the capacity, so
        // every wrap alignment gets exercised.
        for i in 0..500u32 {
            let len = 1 + (i % 90) as usize;
            let frame = vec![(i % 251) as u8; len];
            r.push(&frame).unwrap();
            assert_eq!(r.pop().unwrap(), frame, "iteration {i}");
        }
        assert!(r.is_empty());
    }

    #[test]
    fn fills_up_and_recovers() {
        let r = ring(256);
        let mut pushed = 0;
        while r.push(&[9u8; 40]).is_ok() {
            pushed += 1;
        }
        assert!(pushed >= 4, "capacity too small: {pushed}");
        assert!(matches!(r.push(&[9u8; 40]), Err(ShmError::RingFull)));
        r.pop().unwrap();
        r.pop().unwrap();
        assert!(r.push(&[9u8; 40]).is_ok());
    }

    #[test]
    fn oversized_frame_rejected() {
        let r = ring(256);
        assert!(matches!(
            r.push(&vec![0u8; r.max_frame() + 1]),
            Err(ShmError::PayloadTooLarge { .. })
        ));
        assert!(r.push(&vec![0u8; r.max_frame()]).is_ok());
    }

    #[test]
    fn pop_into_reuses_buffer_and_preserves_content() {
        let r = ring(1024);
        let mut buf = Vec::with_capacity(256);
        for round in 0..50u32 {
            let len = 1 + (round % 200) as usize;
            let frame = vec![(round % 251) as u8; len];
            r.push(&frame).unwrap();
            let cap_before = buf.capacity();
            assert_eq!(r.pop_into(&mut buf), Some(len), "round {round}");
            assert_eq!(&buf[..], &frame[..], "round {round}");
            if len <= cap_before {
                assert_eq!(buf.capacity(), cap_before, "pop_into reallocated");
            }
        }
        assert_eq!(r.pop_into(&mut buf), None);
    }

    #[test]
    fn push_n_publishes_whole_burst_in_order() {
        let r = ring(1024);
        let frames: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 3 + i as usize]).collect();
        assert_eq!(r.push_n(frames.iter()).unwrap(), 10);
        for f in &frames {
            assert_eq!(&r.pop().unwrap(), f);
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn push_n_stops_at_full_without_error() {
        let r = ring(256);
        let big = vec![1u8; 60];
        let n = r.push_n(std::iter::repeat_n(&big, 100)).unwrap();
        assert!((2..100).contains(&n), "pushed {n}");
        // Everything pushed is intact; the rest was simply not accepted.
        for _ in 0..n {
            assert_eq!(r.pop().unwrap(), big);
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn push_n_oversized_first_frame_errors() {
        let r = ring(256);
        let huge = vec![0u8; r.max_frame() + 1];
        assert!(matches!(
            r.push_n([&huge[..]]),
            Err(ShmError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn drain_sees_every_frame_in_order() {
        let r = ring(2048);
        let frames: Vec<Vec<u8>> = (0..32u8)
            .map(|i| vec![i; 1 + (i as usize * 7) % 48])
            .collect();
        for f in &frames {
            r.push(f).unwrap();
        }
        let mut seen = Vec::new();
        let n = r.drain(|frame| seen.push(frame.to_vec()));
        assert_eq!(n, frames.len());
        assert_eq!(seen, frames);
        assert_eq!(r.drain(|_| panic!("ring should be empty")), 0);
        // The ring is fully reusable afterwards.
        r.push(b"again").unwrap();
        assert_eq!(r.pop().unwrap(), b"again");
    }

    #[test]
    fn drain_handles_wrap_markers() {
        let r = ring(256);
        // Leave the indices near the wrap point, then drain a burst that
        // straddles it.
        for _ in 0..3 {
            r.push(&[0u8; 60]).unwrap();
            r.pop().unwrap();
        }
        let frames: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i + 1; 50]).collect();
        for f in &frames {
            r.push(f).unwrap();
        }
        let mut seen = Vec::new();
        r.drain(|frame| seen.push(frame.to_vec()));
        assert_eq!(seen, frames);
    }

    #[test]
    fn clone_mid_stream_continues_cleanly() {
        let r = ring(1024);
        r.push(b"one").unwrap();
        r.push(b"two").unwrap();
        assert_eq!(r.pop().unwrap(), b"one");
        // A clone taken mid-stream must see exactly the unconsumed data.
        let c = r.clone();
        assert_eq!(c.pop().unwrap(), b"two");
        assert!(c.pop().is_none());
    }

    #[test]
    fn spsc_batched_push_n_drain_stress() {
        // Two threads, batched APIs end to end: the producer publishes
        // bursts with one Release each, the consumer drains whole
        // batches with pop_into (reused buffer) and drain (borrowed
        // frames) alternately. Every frame must arrive intact, in order.
        const TOTAL: u32 = 30_000;
        let r = ring(4096);
        let producer = {
            let r = r.clone();
            std::thread::spawn(move || {
                let mut next = 0u32;
                while next < TOTAL {
                    let burst: Vec<Vec<u8>> = (next..(next + 8).min(TOTAL))
                        .map(|i| {
                            let len = 4 + (i % 64) as usize;
                            let mut frame = vec![(i % 251) as u8; len];
                            frame[..4].copy_from_slice(&i.to_le_bytes());
                            frame
                        })
                        .collect();
                    let mut sent = 0usize;
                    while sent < burst.len() {
                        match r.push_n(burst[sent..].iter()) {
                            Ok(0) => std::thread::yield_now(),
                            Ok(n) => sent += n,
                            Err(e) => panic!("{e}"),
                        }
                    }
                    next += burst.len() as u32;
                }
            })
        };
        let mut expected = 0u32;
        let mut scratch = Vec::new();
        let mut use_drain = false;
        while expected < TOTAL {
            let before = expected;
            if use_drain {
                r.drain(|frame| {
                    let got = u32::from_le_bytes(frame[..4].try_into().unwrap());
                    assert_eq!(got, expected, "out of order");
                    assert_eq!(frame.len(), 4 + (expected % 64) as usize);
                    assert!(frame[4..].iter().all(|&b| b == (expected % 251) as u8));
                    expected += 1;
                });
            } else if let Some(n) = r.pop_into(&mut scratch) {
                let got = u32::from_le_bytes(scratch[..4].try_into().unwrap());
                assert_eq!(got, expected, "out of order");
                assert_eq!(n, 4 + (expected % 64) as usize);
                expected += 1;
            }
            if expected == before {
                std::thread::yield_now();
            }
            use_drain = !use_drain;
        }
        producer.join().unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn random_ops_match_fifo_model() {
        // Single-threaded randomized equivalence against a VecDeque
        // model: any interleaving of push/push_n/pop/pop_into/drain must
        // preserve FIFO order and contents, and a RingFull push must
        // succeed after the ring drains (congestion, not corruption).
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x0af_5eed);
        let r = ring(4096);
        let mut model: std::collections::VecDeque<Vec<u8>> = Default::default();
        let mut seq = 0u32;
        let mk = |seq: &mut u32, rng: &mut SmallRng| {
            let len = rng.gen_range(4..200usize);
            let mut frame = vec![(*seq % 251) as u8; len];
            frame[..4].copy_from_slice(&seq.to_le_bytes());
            *seq += 1;
            frame
        };
        for _ in 0..20_000 {
            match rng.gen_range(0..5u32) {
                0 => {
                    let frame = mk(&mut seq, &mut rng);
                    match r.push(&frame) {
                        Ok(()) => model.push_back(frame),
                        Err(ShmError::RingFull) => {
                            // Retryable after draining.
                            while r.pop_into(&mut Vec::new()).is_some() {
                                model.pop_front().expect("model in sync");
                            }
                            r.push(&frame).unwrap();
                            model.push_back(frame);
                        }
                        Err(e) => panic!("{e}"),
                    }
                }
                1 => {
                    let burst: Vec<Vec<u8>> = (0..rng.gen_range(1..6))
                        .map(|_| mk(&mut seq, &mut rng))
                        .collect();
                    let n = r.push_n(burst.iter()).unwrap();
                    for frame in burst.into_iter().take(n) {
                        model.push_back(frame);
                    }
                }
                2 => assert_eq!(r.pop(), model.pop_front()),
                3 => {
                    let mut buf = Vec::new();
                    match r.pop_into(&mut buf) {
                        Some(n) => {
                            let want = model.pop_front().expect("model in sync");
                            assert_eq!(n, want.len());
                            assert_eq!(buf, want);
                        }
                        None => assert!(model.is_empty()),
                    }
                }
                _ => {
                    let drained = r.drain(|frame| {
                        let want = model.pop_front().expect("model in sync");
                        assert_eq!(frame, &want[..], "torn or reordered frame");
                    });
                    if drained == 0 {
                        assert!(model.is_empty());
                    }
                }
            }
        }
        // Final flush: ring and model agree to the end.
        r.drain(|frame| {
            let want = model.pop_front().expect("model in sync");
            assert_eq!(frame, &want[..]);
        });
        assert!(model.is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn stats_track_publishes_fulls_and_occupancy() {
        let mut r = ring(256);
        let stats = RingStats::new();
        r.set_stats(stats.clone());
        r.push(&[1u8; 40]).unwrap();
        assert_eq!(r.push_n([[2u8; 30], [3u8; 30]]).unwrap(), 2);
        assert_eq!(stats.frames.get(), 3);
        assert_eq!(stats.bytes.get(), 100);
        assert_eq!(stats.full_events.get(), 0);
        // Occupancy includes headers/padding, so it exceeds payload bytes.
        assert!(stats.occupancy.hwm() >= 100, "{}", stats.occupancy.hwm());
        // Fill it up: the rejected push must count as a full event.
        while r.push(&[9u8; 40]).is_ok() {}
        let fulls = stats.full_events.get();
        assert!(fulls >= 1);
        // A clone (the consumer handle) must not report into the bundle.
        let consumer = r.clone();
        let frames_before = stats.frames.get();
        consumer.pop().unwrap();
        assert_eq!(stats.frames.get(), frames_before);
    }

    #[test]
    fn spsc_threads_preserve_order() {
        let r = ring(4096);
        let producer = {
            let r = r.clone();
            std::thread::spawn(move || {
                for i in 0..30_000u32 {
                    let len = 4 + (i % 64) as usize;
                    let mut frame = vec![0u8; len];
                    frame[..4].copy_from_slice(&i.to_le_bytes());
                    loop {
                        match r.push(&frame) {
                            Ok(()) => break,
                            Err(ShmError::RingFull) => std::thread::yield_now(),
                            Err(e) => panic!("{e}"),
                        }
                    }
                }
            })
        };
        let mut expected = 0u32;
        while expected < 30_000 {
            if let Some(frame) = r.pop() {
                let got = u32::from_le_bytes(frame[..4].try_into().unwrap());
                assert_eq!(got, expected, "out of order");
                assert_eq!(frame.len(), 4 + (expected % 64) as usize);
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }
}
