//! Producer-side telemetry for the shared-memory rings.
//!
//! A [`RingStats`] bundle is attached to one *handle* of a
//! [`crate::byte_ring::ByteRing`] or [`crate::ring::NotifyRing`] (the
//! producer endpoint) via `set_stats`. Recording is a handful of relaxed
//! atomics per publish — cheap enough to leave on permanently — and a
//! detached handle (no stats attached) pays only one branch.
//!
//! Handles created by `Clone` intentionally do **not** inherit the
//! bundle: instrumentation is per-endpoint, and the common
//! `let peer = ring.clone()` pairing pattern must not double-count.

use oaf_telemetry::{Counter, Gauge, Scope};
use std::sync::Arc;

/// Counters and gauges describing one ring endpoint's producer side.
#[derive(Default, Debug)]
pub struct RingStats {
    /// Frames (ByteRing) or records (NotifyRing) successfully published.
    pub frames: Counter,
    /// Payload bytes successfully published.
    pub bytes: Counter,
    /// Push attempts rejected with [`crate::ShmError::RingFull`], plus
    /// batched pushes cut short by a full ring.
    pub full_events: Counter,
    /// Ring occupancy observed at publish time: `get()` is the
    /// last-published occupancy, `hwm()` the lifetime high-water mark.
    /// Units are bytes (ByteRing) or records (NotifyRing).
    pub occupancy: Gauge,
}

impl RingStats {
    /// Fresh, detached bundle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publish every metric of this bundle into `scope`.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("frames", &self.frames);
        scope.adopt_counter("bytes", &self.bytes);
        scope.adopt_counter("full_events", &self.full_events);
        scope.adopt_gauge("occupancy", &self.occupancy);
    }

    /// Record a successful publish of `frames` frames totalling `bytes`
    /// payload bytes, with `occupancy` ring units in flight afterwards.
    #[inline]
    pub fn on_publish(&self, frames: u64, bytes: u64, occupancy: u64) {
        self.frames.add(frames);
        self.bytes.add(bytes);
        self.occupancy.set(occupancy.min(i64::MAX as u64) as i64);
    }

    /// Record a push rejected (or a batch cut short) by a full ring.
    #[inline]
    pub fn on_full(&self) {
        self.full_events.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_telemetry::Registry;

    #[test]
    fn register_links_live_handles() {
        let stats = RingStats::new();
        let registry = Registry::new();
        stats.register(&registry.scope("ring_tx"));
        stats.on_publish(2, 128, 96);
        stats.on_full();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ring_tx", "frames"), 2);
        assert_eq!(snap.counter("ring_tx", "bytes"), 128);
        assert_eq!(snap.counter("ring_tx", "full_events"), 1);
        assert_eq!(snap.gauge("ring_tx", "occupancy"), Some((96, 96)));
    }
}
